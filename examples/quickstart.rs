//! Quickstart: collocate a latency-sensitive and a bandwidth-intensive
//! tenant on a simulated 16-channel SSD and watch per-window statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fleetio_suite::flash::addr::ChannelId;
use fleetio_suite::fleetio::driver::{Colocation, TenantSpec};
use fleetio_suite::fleetio::FleetIoConfig;
use fleetio_suite::vssd::vssd::{VssdConfig, VssdId};
use fleetio_suite::workloads::WorkloadKind;

fn main() {
    let cfg = FleetIoConfig::default();

    // Two hardware-isolated vSSDs, eight channels each (the paper's §4.1
    // default starting point).
    let lc_channels: Vec<ChannelId> = (0..8).map(ChannelId).collect();
    let bi_channels: Vec<ChannelId> = (8..16).map(ChannelId).collect();
    let tenants = vec![
        TenantSpec::new(
            VssdConfig::hardware(VssdId(0), lc_channels)
                .with_slo(fleetio_suite::des::SimDuration::from_millis(1)),
            WorkloadKind::Ycsb,
            1,
        ),
        TenantSpec::new(
            VssdConfig::hardware(VssdId(1), bi_channels),
            WorkloadKind::TeraSort,
            2,
        ),
    ];

    let mut coloc = Colocation::new(cfg.engine.clone(), tenants, cfg.decision_interval);
    // Warm the flash to 50 % as the paper does, so GC is live.
    coloc.warm_up(0.5);

    println!("window |   ycsb bw |  ycsb p99 | tera bw  | tera in_gc");
    for w in 0..8 {
        let summaries = coloc.run_window();
        let (ycsb_id, ycsb) = &summaries[0];
        let (tera_id, tera) = &summaries[1];
        let tera_gc = coloc.engine().snapshot(*tera_id).in_gc;
        println!(
            "{w:6} | {:6.1} MB | {:>9} | {:5.0} MB | {}",
            ycsb.avg_bandwidth / 1e6,
            format!("{}", ycsb.p99_latency),
            tera.avg_bandwidth / 1e6,
            tera_gc,
        );
        let _ = ycsb_id;
    }

    let stats = coloc.engine().device().stats();
    println!(
        "\ndevice: {} GC runs, write amplification {:.3}",
        stats.gc_runs,
        stats.waf().unwrap_or(1.0)
    );
}
