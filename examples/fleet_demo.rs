//! Fleet-scale hotspot consolidation, window by window.
//!
//! A 64-vSSD fleet (16 shard engines × 4 slots) starts with three
//! heavy batch tenants — rotated into their write phases, mid-job —
//! packed onto shard 0 next to one latency-sensitive victim, while the
//! rest of the fleet idles along on interactive workloads. The control
//! plane observes through its burn-in windows, then migrates the hot
//! shard's heavies to the coolest shards with free slots; the demo
//! prints the shard utilization spread and every migration as it
//! happens, checks the load spread actually shrank, then renders the
//! fleet-health report and checks the SLO story it tells: violations
//! on the packed hot shard before the first migration boundary,
//! attainment recovery after the heavies are gone. The report and the
//! windowed time-series are also written to `target/fleet/` for CI
//! artifact upload.
//!
//! ```sh
//! cargo run --release --example fleet_demo
//! ```

use fleetio_suite::fleet::{default_model, FleetRuntime, FleetSpec};
use fleetio_suite::store::StoreSink;

fn main() {
    let spec = FleetSpec::hotspot(17);
    println!(
        "fleet: {} shards x {} slots = {} vSSDs, {} tenants, {} windows of {}",
        spec.shards,
        spec.slots_per_shard,
        spec.total_slots(),
        spec.tenants.len(),
        spec.windows,
        spec.window,
    );
    let mut rt = FleetRuntime::new(&spec, default_model(1), 4);

    // Record every shard's obs stream into a run store so the offline
    // dashboard (`fleetio-obs report target/fleet/store/shard-*`)
    // reproduces the live health report from stored bytes alone.
    let store_root = std::path::Path::new("target/fleet/store");
    for s in 0..spec.shards as usize {
        let dir = store_root.join(format!("shard-{s:02}"));
        std::fs::remove_dir_all(&dir).ok();
        let sink = StoreSink::create(
            &dir,
            spec.encode(),
            spec.fingerprint(),
            spec.seed,
            spec.window.as_nanos(),
            64 * 1024,
        )
        .expect("create shard store");
        rt.set_shard_sink(s, Box::new(sink));
    }

    let report = rt.run();

    for s in 0..spec.shards as usize {
        let sink = rt
            .take_shard_sink(s)
            .into_any()
            .downcast::<StoreSink>()
            .expect("shard sink is a StoreSink");
        let manifest = sink.finish().expect("seal shard store");
        assert!(manifest.sealed && manifest.total_events > 0);
    }

    println!();
    println!("window  min util  mean util  max util  spread  migrations");
    for w in &report.windows {
        let min = w.shard_utils.iter().fold(f64::MAX, |a, &b| a.min(b));
        let max = w.shard_utils.iter().fold(f64::MIN, |a, &b| a.max(b));
        let mean = w.shard_utils.iter().sum::<f64>() / w.shard_utils.len() as f64;
        println!(
            "{:>6}  {:>8.3}  {:>9.3}  {:>8.3}  {:>6.3}  {:>10}",
            w.window,
            min,
            mean,
            max,
            w.util_spread(),
            w.executed.len(),
        );
        for m in &w.executed {
            println!(
                "        tenant {:>2}: {} -> {}  (src util {:.2}, dst util {:.2})",
                m.tenant, m.from, m.to, m.src_util, m.dst_util,
            );
        }
    }

    let first = report.windows.first().expect("windows ran").util_spread();
    let last = report.windows.last().expect("windows ran").util_spread();
    println!();
    println!(
        "migrations: {}   load spread: {:.3} -> {:.3}   events: {}   ops: {}",
        report.migrations.len(),
        first,
        last,
        report.events_processed,
        report.total_ops,
    );
    assert!(
        !report.migrations.is_empty(),
        "the packed hot shard must shed at least one tenant"
    );
    assert!(
        last < first,
        "consolidation must shrink the load spread ({first:.3} -> {last:.3})"
    );

    // The fleet-health surface: SLO attainment per tenant, worst
    // windows, and the annotated migration timeline.
    let health = rt.health_report();
    println!();
    println!("{health}");

    // CI artifacts first — the health report plus the windowed
    // time-series stay inspectable even when an assertion below trips.
    std::fs::create_dir_all("target/fleet").expect("create target/fleet");
    std::fs::write("target/fleet/health.txt", &health).expect("write health report");
    std::fs::write("target/fleet/series.csv", rt.series().to_csv()).expect("write series CSV");
    std::fs::write("target/fleet/series.jsonl", rt.series().to_jsonl()).expect("write series");

    // The story the report must tell: tenant 3, the latency-sensitive
    // victim packed onto shard 0 with the three heavies, violates its
    // SLO while they crush the shard and recovers once they migrate
    // away.
    let victim = 3u32;
    let first_boundary = report.migrations[0].window;
    let verdicts = rt.slo_verdicts(victim);
    let pre_violations = verdicts
        .iter()
        .filter(|v| v.window <= first_boundary && !v.attained())
        .count();
    assert!(
        pre_violations > 0,
        "the victim must violate its SLO before the first migration: {verdicts:?}"
    );
    let last = verdicts.last().expect("victim observed every window");
    assert!(
        last.attained(),
        "the victim must attain its SLO in the final window: {last:?}"
    );

    println!("OK: hotspot consolidated deterministically; SLO attainment recovered");
    println!("artifacts: target/fleet/health.txt, series.csv, series.jsonl, store/shard-*/");
}
