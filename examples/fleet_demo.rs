//! Fleet-scale hotspot consolidation, window by window.
//!
//! A 64-vSSD fleet (16 shard engines × 4 slots) starts with four heavy
//! batch tenants packed onto shard 0 while the rest of the fleet idles
//! along on interactive workloads. The control plane detects the hot
//! shard at the first window merge and migrates its heaviest tenants to
//! the coolest shards with free slots; the demo prints the shard
//! utilization spread and every migration as it happens, then checks
//! the load spread actually shrank.
//!
//! ```sh
//! cargo run --release --example fleet_demo
//! ```

use fleetio_suite::fleet::{default_model, FleetRuntime, FleetSpec};

fn main() {
    let spec = FleetSpec::hotspot(17);
    println!(
        "fleet: {} shards x {} slots = {} vSSDs, {} tenants, {} windows of {}",
        spec.shards,
        spec.slots_per_shard,
        spec.total_slots(),
        spec.tenants.len(),
        spec.windows,
        spec.window,
    );
    let mut rt = FleetRuntime::new(&spec, default_model(1), 4);
    let report = rt.run();

    println!();
    println!("window  min util  mean util  max util  spread  migrations");
    for w in &report.windows {
        let min = w.shard_utils.iter().fold(f64::MAX, |a, &b| a.min(b));
        let max = w.shard_utils.iter().fold(f64::MIN, |a, &b| a.max(b));
        let mean = w.shard_utils.iter().sum::<f64>() / w.shard_utils.len() as f64;
        println!(
            "{:>6}  {:>8.3}  {:>9.3}  {:>8.3}  {:>6.3}  {:>10}",
            w.window,
            min,
            mean,
            max,
            w.util_spread(),
            w.executed.len(),
        );
        for m in &w.executed {
            println!(
                "        tenant {:>2}: {} -> {}  (src util {:.2}, dst util {:.2})",
                m.tenant, m.from, m.to, m.src_util, m.dst_util,
            );
        }
    }

    let first = report.windows.first().expect("windows ran").util_spread();
    let last = report.windows.last().expect("windows ran").util_spread();
    println!();
    println!(
        "migrations: {}   load spread: {:.3} -> {:.3}   events: {}   ops: {}",
        report.migrations.len(),
        first,
        last,
        report.events_processed,
        report.total_ops,
    );
    assert!(
        !report.migrations.is_empty(),
        "the packed hot shard must shed at least one tenant"
    );
    assert!(
        last < first,
        "consolidation must shrink the load spread ({first:.3} -> {last:.3})"
    );
    println!("OK: hotspot consolidated deterministically");
}
