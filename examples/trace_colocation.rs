//! Traced colocation: run four tenants on a small device with a recording
//! observability sink, then export the run as JSONL events, a Chrome
//! `trace_event` file, and a plain-text metrics snapshot.
//!
//! ```sh
//! cargo run --release --example trace_colocation
//! ```
//!
//! Outputs land in `target/obs/`:
//!
//! * `events.jsonl` — one structured event per line (see
//!   `fleetio-obs summarize target/obs/events.jsonl`).
//! * `trace.json` — load in `chrome://tracing` or <https://ui.perfetto.dev>;
//!   one track per channel/chip plus GC and per-request tracks.
//! * `metrics.txt` — final counter/gauge/histogram snapshot.
//!
//! The example double-checks the trace against the engine: the number of
//! `request_complete` events must equal the engine's own cumulative
//! completed-request count across all tenants.

use fleetio_suite::des::SimDuration;
use fleetio_suite::flash::config::FlashConfig;
use fleetio_suite::fleetio::driver::Colocation;
use fleetio_suite::fleetio::experiment::hardware_layout;
use fleetio_suite::fleetio::FleetIoConfig;
use fleetio_suite::obs::RecordingSink;
use fleetio_suite::workloads::WorkloadKind;

fn main() {
    let mut cfg = FleetIoConfig::default();
    cfg.engine.flash = FlashConfig::training_test();
    cfg.decision_interval = SimDuration::from_millis(500);

    // Four tenants, one channel each on the 4-channel test device: two
    // latency-sensitive services and two bandwidth-intensive batch jobs.
    let kinds = [
        WorkloadKind::Ycsb,
        WorkloadKind::Tpce,
        WorkloadKind::TeraSort,
        WorkloadKind::MlPrep,
    ];
    let tenants = hardware_layout(&cfg, &kinds, &[None, None, None, None], 7);

    let mut coloc = Colocation::new(cfg.engine.clone(), tenants, cfg.decision_interval);
    // Recording sink sized to keep the full run (no ring eviction).
    coloc.set_obs_sink(Box::new(RecordingSink::with_capacity(1 << 22)));
    // Warm the flash well past the GC threshold so the trace shows GC
    // activity alongside foreground I/O.
    coloc.warm_up(0.9);
    coloc.run_windows(6);

    let sink = coloc
        .take_obs_sink()
        .into_any()
        .downcast::<RecordingSink>()
        .expect("the sink installed above is a RecordingSink");

    // Cross-check: the trace must account for every completed request.
    let completed_in_engine: u64 = coloc
        .engine()
        .vssd_ids()
        .iter()
        .map(|&id| coloc.engine().cumulative(id).requests)
        .sum();
    assert_eq!(sink.dropped(), 0, "ring evicted events; raise the capacity");
    assert_eq!(
        sink.completed_requests(),
        completed_in_engine,
        "trace disagrees with the engine's completed-request count"
    );

    let dir = std::path::Path::new("target/obs");
    std::fs::create_dir_all(dir).expect("create target/obs");
    std::fs::write(dir.join("events.jsonl"), sink.to_jsonl()).expect("write events.jsonl");
    std::fs::write(dir.join("trace.json"), sink.chrome_trace()).expect("write trace.json");
    std::fs::write(dir.join("metrics.txt"), sink.metrics_text()).expect("write metrics.txt");

    println!(
        "traced {} events ({} request completions, engine agrees)",
        sink.events().len(),
        sink.completed_requests()
    );
    println!("  target/obs/events.jsonl — fleetio-obs summarize target/obs/events.jsonl");
    println!("  target/obs/trace.json   — load in chrome://tracing or ui.perfetto.dev");
    println!("  target/obs/metrics.txt  — final metrics snapshot");
}
