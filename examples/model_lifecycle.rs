//! Model lifecycle (§3.7): pre-train → registry → warm-start → guarded
//! online fine-tuning, all through the on-disk checkpoint format.
//!
//! ```sh
//! # Build target/model-registry/: typing index + one checkpoint per
//! # workload type, then demo warm-start, fine-tuning, and corruption
//! # fallback in-process.
//! cargo run --release --example model_lifecycle
//!
//! # Reopen the registry and load the `bi` model through the last-good
//! # fallback path (CI corrupts the primary between the two runs).
//! cargo run --release --example model_lifecycle resume
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fleetio_suite::des::{SimDuration, SimTime};
use fleetio_suite::flash::addr::ChannelId;
use fleetio_suite::flash::config::FlashConfig;
use fleetio_suite::fleetio::agent::{pretrain_trainer, PretrainOptions};
use fleetio_suite::fleetio::driver::TenantSpec;
use fleetio_suite::fleetio::env::FleetIoEnv;
use fleetio_suite::fleetio::experiment::{hardware_layout, workload_feature_windows};
use fleetio_suite::fleetio::typing::TypingModel;
use fleetio_suite::fleetio::warmstart::{checkpoint_from_trainer, typing_index, warm_start};
use fleetio_suite::fleetio::FleetIoConfig;
use fleetio_suite::model::{
    decode_container, DecodeError, FineTuneConfig, FineTuneManager, ModelRegistry,
};
use fleetio_suite::obs::{ObsEvent, RecordingSink};
use fleetio_suite::vssd::vssd::{VssdConfig, VssdId};
use fleetio_suite::workloads::WorkloadKind;

const REGISTRY_DIR: &str = "target/model-registry";
const SEED: u64 = 31;

fn small_cfg() -> FleetIoConfig {
    let mut cfg = FleetIoConfig::default();
    cfg.engine.flash = FlashConfig::training_test();
    cfg.decision_interval = SimDuration::from_millis(250);
    cfg
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        None => build(),
        Some("resume") => resume(),
        Some(other) => {
            eprintln!("usage: model_lifecycle [resume]  (got {other:?})");
            ExitCode::from(2)
        }
    }
}

/// Builds the registry from scratch and demos the full lifecycle.
fn build() -> ExitCode {
    let dir = PathBuf::from(REGISTRY_DIR);
    let _ = std::fs::remove_dir_all(&dir);
    let registry = ModelRegistry::open(&dir).expect("registry dir creatable");

    // 1. Typing index: per-window I/O features from solo runs of one
    //    workload per Figure-6 type, clustered with k-means.
    println!("collecting solo-run feature windows (3 workloads x 3 windows)…");
    let feat_cfg = FleetIoConfig::default();
    let kinds = [
        WorkloadKind::Tpce,
        WorkloadKind::Ycsb,
        WorkloadKind::TeraSort,
    ];
    let mut samples = Vec::new();
    let mut probe_windows = Vec::new();
    for kind in kinds {
        let feats = workload_feature_windows(&feat_cfg, kind, 8, 3, 1500, 99);
        println!(
            "  {:10} read {:6.1} MB/s  write {:6.1} MB/s  LPA entropy {:4.2}",
            kind.name(),
            feats[0].read_bw / 1e6,
            feats[0].write_bw / 1e6,
            feats[0].lpa_entropy,
        );
        probe_windows.push((kind, feats[0]));
        samples.extend(feats.into_iter().map(|f| (kind, f)));
    }
    let typing = TypingModel::fit(&samples, 6);
    registry
        .save_typing(&typing_index(&typing))
        .expect("typing index saves");
    println!(
        "typing index saved (held-out accuracy {:.1}%)",
        typing.test_accuracy() * 100.0
    );

    // 2. Pre-train one small agent and file it under every type tag with a
    //    last-good copy (a fresh fleet starts from the unified model).
    println!("\npre-training a small shared policy…");
    let cfg = small_cfg();
    let scenario = vec![
        TenantSpec::new(
            VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1)])
                .with_slo(SimDuration::from_millis(2)),
            WorkloadKind::Tpce,
            1,
        ),
        TenantSpec::new(
            VssdConfig::hardware(VssdId(1), vec![ChannelId(2), ChannelId(3)]),
            WorkloadKind::BatchAnalytics,
            2,
        ),
    ];
    let opts = PretrainOptions {
        iterations: 3,
        windows_per_rollout: 4,
        warmup_iterations: 1,
        parallel: false,
        lr_override: None,
        bc_rounds: 0,
        bc_epsilon: 0.0,
        progress: None,
    };
    let trainer = pretrain_trainer(&cfg, &[scenario], 0.0, opts, SEED);
    for tag in ["lc1", "lc2", "bi"] {
        registry
            .save_model(&checkpoint_from_trainer(&trainer, SEED, tag))
            .expect("checkpoint saves");
        registry.promote_last_good(tag).expect("last-good promotes");
    }
    println!("registry files:");
    for p in registry.ls().expect("registry listable") {
        println!("  {}", p.display());
    }

    // 3. Warm-start: classify a fresh window of each probe workload and
    //    load the matching checkpoint as a frozen deployment agent.
    println!("\nwarm-start at vSSD attach:");
    for (kind, f) in &probe_windows {
        match warm_start(&registry, f, cfg.history_windows).expect("warm start runs") {
            Some((tag, _agent, fell_back)) => println!(
                "  {:10} -> model {tag:4} (fell back: {fell_back})",
                kind.name()
            ),
            None => println!("  {:10} -> unknown type, no warm start", kind.name()),
        }
    }

    // 4. Guarded online fine-tuning: resume PPO on a live environment,
    //    routing every lifecycle decision through the manager.
    println!("\nguarded fine-tuning (3 updates):");
    let ft_cfg = FineTuneConfig {
        autosave_interval: SimDuration::from_secs(2),
        reward_window: 2,
        regression_threshold: 0.2,
    };
    let (mut mgr, fell_back) = FineTuneManager::resume(
        ModelRegistry::open(&dir).expect("registry reopens"),
        "bi",
        ft_cfg,
        SimTime::ZERO,
        Box::new(RecordingSink::with_capacity(64)),
    )
    .expect("resume from registry");
    assert!(!fell_back, "pristine registry must not fall back");
    let tenants = hardware_layout(
        &cfg,
        &[WorkloadKind::Tpce, WorkloadKind::TeraSort],
        &[None, None],
        SEED,
    );
    let rewards = FleetIoEnv::default_rewards(&cfg, &tenants);
    let mut env =
        FleetIoEnv::new(cfg.clone(), tenants, rewards, 0.3, 4, SEED).with_fresh_episodes();
    let mut now = SimTime::ZERO;
    for i in 0..3 {
        let stats = mgr.trainer_mut().train_iteration(&mut env, 4);
        now += SimDuration::from_secs(1);
        let action = mgr.observe(now, &stats).expect("lifecycle action applies");
        println!(
            "  update {i}: mean reward {:8.4} -> {action:?} (baseline {:?})",
            stats.mean_reward,
            mgr.baseline()
        );
    }
    let sink = mgr
        .take_sink()
        .into_any()
        .downcast::<RecordingSink>()
        .expect("a RecordingSink was installed above");
    println!("  lifecycle events emitted: {}", sink.events().len());

    // 5. Corruption is detected and falls back to last-good — proven here
    //    in-process against a scratch registry (CI repeats it against the
    //    real one via `fleetio-model verify` + the `resume` mode).
    println!("\ncorruption drill (scratch registry):");
    let scratch = PathBuf::from("target/model-registry-scratch");
    let _ = std::fs::remove_dir_all(&scratch);
    let sreg = ModelRegistry::open(&scratch).expect("scratch registry opens");
    sreg.save_model(&checkpoint_from_trainer(&trainer, SEED, "bi"))
        .expect("checkpoint saves");
    sreg.promote_last_good("bi").expect("last-good promotes");
    let path = sreg.model_path("bi");
    let mut bytes = std::fs::read(&path).expect("checkpoint readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    assert!(
        matches!(
            decode_container(&bytes),
            Err(DecodeError::CrcMismatch { .. })
        ),
        "bit flip must trip the checksum"
    );
    std::fs::write(&path, &bytes).expect("corrupt checkpoint writable");
    let (_ckpt, fell_back) = sreg
        .load_model_or_last_good("bi")
        .expect("last-good fallback");
    assert!(fell_back, "corrupt primary must fall back to last-good");
    println!("  flipped bit 6 of byte {mid}: CRC caught it, last-good served the load");

    println!("\nregistry ready at {REGISTRY_DIR}/");
    ExitCode::SUCCESS
}

/// Reopens the registry and loads the `bi` model through the fallback
/// path, reporting (for CI to grep) whether the fallback fired.
fn resume() -> ExitCode {
    let registry = match ModelRegistry::open(REGISTRY_DIR) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("model_lifecycle resume: {e}");
            return ExitCode::from(2);
        }
    };
    let (mgr, fell_back) = match FineTuneManager::resume(
        registry,
        "bi",
        FineTuneConfig::default(),
        SimTime::ZERO,
        Box::new(RecordingSink::with_capacity(16)),
    ) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("model_lifecycle resume: no usable checkpoint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut mgr = mgr;
    println!(
        "resumed tag {:?} at update {} (seed {})",
        mgr.meta().tag,
        mgr.trainer().updates(),
        mgr.meta().seed,
    );
    let sink = mgr
        .take_sink()
        .into_any()
        .downcast::<RecordingSink>()
        .expect("a RecordingSink was installed above");
    for ev in sink.events() {
        if let ObsEvent::ModelLifecycle { kind, tag, .. } = ev {
            println!("  event: {} ({tag})", kind.tag());
        }
    }
    println!("fell back to last-good: {fell_back}");
    ExitCode::SUCCESS
}
