//! Ghost-superblock harvesting, step by step.
//!
//! A VDI-Web tenant offers idle bandwidth through ghost superblocks; a
//! TeraSort tenant harvests it. The demo drives the scripted heuristic
//! policy (the same rules FleetIO's agents are warm-started from) and
//! prints the harvest state every decision window: offered channels,
//! harvested channels, both tenants' bandwidth and the VDI tail latency.
//!
//! ```sh
//! cargo run --release --example harvesting_demo
//! ```

use fleetio_suite::flash::addr::ChannelId;
use fleetio_suite::fleetio::baselines::{HeuristicPolicy, WindowPolicy};
use fleetio_suite::fleetio::driver::{Colocation, TenantSpec};
use fleetio_suite::fleetio::experiment::calibrate_slo;
use fleetio_suite::fleetio::FleetIoConfig;
use fleetio_suite::vssd::vssd::{VssdConfig, VssdId};
use fleetio_suite::workloads::WorkloadKind;

fn main() {
    let cfg = FleetIoConfig::default();

    println!("calibrating the VDI-Web SLO (P99 alone on 8 channels)…");
    let slo = calibrate_slo(&cfg, WorkloadKind::VdiWeb, 8, 5, 7);
    println!("SLO = {slo}\n");

    let lc: Vec<ChannelId> = (0..8).map(ChannelId).collect();
    let bi: Vec<ChannelId> = (8..16).map(ChannelId).collect();
    let tenants = vec![
        TenantSpec::new(
            VssdConfig::hardware(VssdId(0), lc).with_slo(slo),
            WorkloadKind::VdiWeb,
            11,
        ),
        TenantSpec::new(
            VssdConfig::hardware(VssdId(1), bi),
            WorkloadKind::TeraSort,
            12,
        ),
    ];
    let mut coloc = Colocation::new(cfg.engine.clone(), tenants, cfg.decision_interval);
    coloc.warm_up(0.5);

    let mut policy = HeuristicPolicy::new(
        cfg.clone(),
        &[(8, WorkloadKind::VdiWeb), (8, WorkloadKind::TeraSort)],
    );

    println!("window | vdi offers | tera holds | vdi p99   | vdi vio% | tera MB/s");
    for w in 0..15 {
        let summaries = coloc.run_window();
        let vdi = coloc.engine().snapshot(VssdId(0));
        let tera = coloc.engine().snapshot(VssdId(1));
        println!(
            "{w:6} | {:10} | {:10} | {:>9} | {:8.2} | {:9.1}",
            vdi.harvestable_channels,
            tera.harvested_channels,
            format!("{}", summaries[0].1.p99_latency),
            summaries[0].1.slo_violation_rate * 100.0,
            summaries[1].1.avg_bandwidth / 1e6,
        );
        policy.on_window(&mut coloc, &summaries);
    }

    let stats = coloc.engine().device().stats();
    println!(
        "\nGC reclaimed {:.1} MB of loaned blocks back to their homes ({} GC runs)",
        stats.gc_migrated_bytes as f64 / 1e6,
        stats.gc_runs
    );
}
