//! End-to-end FleetIO: pre-train the multi-agent PPO policy offline, then
//! compare it against the paper's baselines on one evaluation pair
//! (a miniature of Figures 10-13).
//!
//! ```sh
//! cargo run --release --example train_and_compare
//! ```

use fleetio_suite::fleetio::agent::{pretrain, PretrainOptions};
use fleetio_suite::fleetio::baselines::{FleetIoPolicy, StaticPolicy};
use fleetio_suite::fleetio::experiment::{
    calibrate_slo, hardware_layout, measure_device_peak, run_collocation, software_layout,
    ExperimentOptions,
};
use fleetio_suite::fleetio::FleetIoConfig;
use fleetio_suite::workloads::WorkloadKind;

fn main() {
    let cfg = FleetIoConfig::default();
    let lc = WorkloadKind::VdiWeb;
    let bi = WorkloadKind::TeraSort;

    println!("calibrating device peak and SLO…");
    let peak = measure_device_peak(&cfg, 1);
    let slo = calibrate_slo(&cfg, lc, 8, 5, 2);
    println!("  peak = {:.0} MB/s, VDI SLO = {slo}", peak / 1e6);

    // Pre-train on the §3.8 pre-training workloads (never the evaluation
    // pair), behaviour-cloning warm start + PPO fine-tuning.
    println!("pre-training the shared policy (this takes a couple of minutes)…");
    let slo_pre = calibrate_slo(&cfg, WorkloadKind::Tpce, 8, 4, 3);
    let scenarios = vec![
        hardware_layout(
            &cfg,
            &[WorkloadKind::Tpce, WorkloadKind::BatchAnalytics],
            &[Some(slo_pre), None],
            11,
        ),
        hardware_layout(
            &cfg,
            &[WorkloadKind::LiveMaps, WorkloadKind::BatchAnalytics],
            &[Some(slo_pre), None],
            12,
        ),
    ];
    let opts = PretrainOptions {
        iterations: 6,
        windows_per_rollout: 12,
        warmup_iterations: 2,
        bc_rounds: 5,
        ..Default::default()
    };
    let model = pretrain(&cfg, &scenarios, 0.5, opts, 0xF1EE7);
    println!(
        "  model: {} parameters (~{} KB)",
        model.policy.n_params(),
        model.approx_size_bytes() / 1024
    );

    let run_opts = ExperimentOptions {
        cfg: cfg.clone(),
        measure_windows: 10,
        ramp_windows: 2,
        warm_fraction: 0.5,
        seed: 42,
    };
    println!("\npolicy            | util%  | TeraSort MB/s | VDI p99    | VDI vio%");
    let mut hw = StaticPolicy::hardware();
    let tenants = hardware_layout(&cfg, &[lc, bi], &[Some(slo), None], 42);
    let m = run_collocation(&mut hw, tenants, &run_opts, peak, None);
    print_row("hardware-iso", &m);

    let model_policy_tenants = hardware_layout(&cfg, &[lc, bi], &[Some(slo), None], 42);
    let mut fio = FleetIoPolicy::new(cfg.clone(), &model, 2);
    let m = run_collocation(&mut fio, model_policy_tenants, &run_opts, peak, None);
    print_row("fleetio", &m);

    let mut sw = StaticPolicy::software();
    let tenants = software_layout(&cfg, &[lc, bi], &[Some(slo), None], 42);
    let m = run_collocation(&mut sw, tenants, &run_opts, peak, None);
    print_row("software-iso", &m);

    println!("\nexpect: FleetIO between the two baselines on utilization, near");
    println!("hardware isolation on P99 — the paper's headline trade-off.");
}

fn print_row(name: &str, m: &fleetio_suite::fleetio::experiment::RunMetrics) {
    println!(
        "{name:17} | {:5.1}  | {:13.1} | {:>10} | {:7.2}",
        m.avg_utilization * 100.0,
        m.bi_bandwidth().unwrap_or(0.0) / 1e6,
        format!(
            "{}",
            m.lc_p99().unwrap_or(fleetio_suite::des::SimDuration::ZERO)
        ),
        m.tenants[0].slo_violation_rate * 100.0,
    );
}
