//! Workload typing (§3.4 / Figure 6): cluster per-window I/O features with
//! k-means, project to 2-D with PCA, and pick reward coefficients.
//!
//! ```sh
//! cargo run --release --example workload_clustering
//! ```

use fleetio_des::rng::SmallRng;
use fleetio_suite::fleetio::experiment::workload_feature_windows;
use fleetio_suite::fleetio::typing::TypingModel;
use fleetio_suite::fleetio::FleetIoConfig;
use fleetio_suite::ml::Pca;
use fleetio_suite::workloads::WorkloadKind;

fn main() {
    let cfg = FleetIoConfig::default();
    use WorkloadKind::*;
    let kinds = [
        MlPrep,
        PageRank,
        TeraSort,
        Ycsb,
        LiveMaps,
        SearchEngine,
        Tpce,
        VdiWeb,
    ];

    println!("collecting solo-run traces (4 windows x 3000 requests each)…");
    let mut samples = Vec::new();
    for kind in kinds {
        let feats = workload_feature_windows(&cfg, kind, 8, 4, 3000, 99);
        println!(
            "  {:14} read {:6.1} MB/s  write {:6.1} MB/s  LPA entropy {:4.2}  avg I/O {:6.0} B",
            kind.name(),
            feats[0].read_bw / 1e6,
            feats[0].write_bw / 1e6,
            feats[0].lpa_entropy,
            feats[0].avg_io_size,
        );
        samples.extend(feats.into_iter().map(|f| (kind, f)));
    }

    let model = TypingModel::fit(&samples, 6);
    println!(
        "\nk-means (k=3, 70/30 split) held-out accuracy: {:.1}%  (paper: 98.4%)",
        model.test_accuracy() * 100.0
    );

    // 2-D PCA view, one centroid per workload (the paper's Figure 6).
    let scaled = model.scaled_features(&samples);
    let mut rng = SmallRng::seed_from_u64(0xFCA);
    let pca = Pca::fit(&scaled, 2, &mut rng);
    println!("\nworkload        |   pc1   |   pc2   | type      | alpha");
    for kind in kinds {
        let pts: Vec<Vec<f64>> = samples
            .iter()
            .zip(&scaled)
            .filter(|((k, _), _)| *k == kind)
            .map(|(_, s)| pca.transform(s))
            .collect();
        let n = pts.len() as f64;
        let (x, y) = pts.iter().fold((0.0, 0.0), |a, p| (a.0 + p[0], a.1 + p[1]));
        let f = samples.iter().find(|(k, _)| *k == kind).expect("sampled").1;
        let t = model.classify(f);
        println!(
            "{:15} | {:7.2} | {:7.2} | {:9} | {}",
            kind.name(),
            x / n,
            y / n,
            t.map_or("unknown".to_string(), |t| format!("{t:?}")),
            model.alpha(&cfg, f),
        );
    }
}
