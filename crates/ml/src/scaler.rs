//! Feature standardization (zero mean, unit variance per feature).

/// A fitted standard scaler.
///
/// Features with zero variance transform to zero rather than dividing by
/// zero.
///
/// # Example
///
/// ```
/// use fleetio_ml::StandardScaler;
///
/// let data = vec![vec![1.0, 10.0], vec![3.0, 10.0]];
/// let s = StandardScaler::fit(&data);
/// assert_eq!(s.transform(&[2.0, 10.0]), vec![0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits per-feature mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows have inconsistent dimensions.
    pub fn fit(data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "scaler needs data");
        let dim = data[0].len();
        assert!(
            data.iter().all(|p| p.len() == dim),
            "inconsistent dimensions"
        );
        let n = data.len() as f64;
        let mean: Vec<f64> = (0..dim)
            .map(|j| data.iter().map(|p| p[j]).sum::<f64>() / n)
            .collect();
        let std: Vec<f64> = (0..dim)
            .map(|j| {
                let var = data.iter().map(|p| (p[j] - mean[j]).powi(2)).sum::<f64>() / n;
                var.sqrt()
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Rebuilds a fitted scaler from saved parameters (its entire state).
    ///
    /// # Errors
    ///
    /// Returns a message when the vectors are empty, disagree in length,
    /// or contain non-finite or negative-std entries.
    pub fn from_params(mean: Vec<f64>, std: Vec<f64>) -> Result<Self, String> {
        if mean.is_empty() {
            return Err("scaler state has no features".to_string());
        }
        if mean.len() != std.len() {
            return Err(format!(
                "mean/std length mismatch: {} vs {}",
                mean.len(),
                std.len()
            ));
        }
        if mean.iter().any(|x| !x.is_finite()) {
            return Err("non-finite mean entry".to_string());
        }
        if std.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err("std entries must be finite and non-negative".to_string());
        }
        Ok(StandardScaler { mean, std })
    }

    /// Per-feature means (for serialization).
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Per-feature standard deviations (for serialization).
    pub fn std(&self) -> &[f64] {
        &self.std
    }

    /// Standardizes one point.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match.
    pub fn transform(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.mean.len(), "dimension mismatch");
        point
            .iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(x, (m, s))| if *s > 1e-12 { (x - m) / s } else { 0.0 })
            .collect()
    }

    /// Standardizes a whole dataset.
    pub fn transform_all(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter().map(|p| self.transform(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_mean_and_variance() {
        let data = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let s = StandardScaler::fit(&data);
        let t = s.transform_all(&data);
        let mean: f64 = t.iter().map(|p| p[0]).sum::<f64>() / 4.0;
        let var: f64 = t.iter().map(|p| p[0] * p[0]).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_features_map_to_zero() {
        let data = vec![vec![5.0], vec![5.0]];
        let s = StandardScaler::fit(&data);
        assert_eq!(s.transform(&[5.0]), vec![0.0]);
        assert_eq!(s.transform(&[99.0]), vec![0.0]);
    }

    #[test]
    fn params_roundtrip_is_exact() {
        let data = vec![vec![1.0, 10.0], vec![3.0, 14.0], vec![7.0, 12.0]];
        let s = StandardScaler::fit(&data);
        let back =
            StandardScaler::from_params(s.mean().to_vec(), s.std().to_vec()).expect("valid params");
        assert_eq!(s, back);
        assert_eq!(s.transform(&[2.5, 11.0]), back.transform(&[2.5, 11.0]));
    }

    #[test]
    fn from_params_rejects_bad_state() {
        assert!(StandardScaler::from_params(vec![], vec![]).is_err());
        assert!(StandardScaler::from_params(vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(StandardScaler::from_params(vec![f64::INFINITY], vec![1.0]).is_err());
        assert!(StandardScaler::from_params(vec![0.0], vec![-1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let s = StandardScaler::fit(&[vec![1.0, 2.0]]);
        let _ = s.transform(&[1.0]);
    }
}
