//! Minimal machine-learning substrate for the FleetIO reproduction.
//!
//! The paper builds its RL policy on RLlib/PyTorch and its workload typing
//! on scikit-learn-style k-means + PCA. The models involved are tiny (an
//! MLP with two 50-unit hidden layers, ~9 K parameters; k-means over
//! 4-dimensional I/O features), so this crate implements exactly what is
//! needed, from scratch:
//!
//! * [`mlp`] — dense multi-layer perceptrons with manual backprop,
//! * [`adam`] — the Adam optimizer,
//! * [`kmeans`] — k-means clustering with k-means++ initialization,
//! * [`pca`] — principal component analysis via power iteration (used only
//!   for the 2-D visualization of Figure 6),
//! * [`scaler`] — feature standardization,
//! * [`dataset`] — deterministic train/test splitting.

pub mod adam;
pub mod dataset;
pub mod kmeans;
pub mod mlp;
pub mod pca;
pub mod scaler;

pub use adam::{Adam, AdamState};
pub use kmeans::KMeans;
pub use mlp::{Activation, DenseState, Mlp, MlpGrads, MlpState};
pub use pca::Pca;
pub use scaler::StandardScaler;
