//! K-means clustering with k-means++ initialization.
//!
//! FleetIO clusters 10 K-request trace windows by four I/O features to
//! learn workload types (§3.4, Figure 6). K-means with k-means++ seeding
//! and Lloyd iterations is exactly what the paper uses.

use fleetio_des::rng::Rng;

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Fits `k` clusters to `data` with at most `max_iters` Lloyd
    /// iterations (stops early on convergence).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, has fewer points than `k`, `k` is zero,
    /// or rows have inconsistent dimensions.
    pub fn fit<R: Rng>(data: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut R) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(data.len() >= k, "need at least k points");
        let dim = data[0].len();
        assert!(
            data.iter().all(|p| p.len() == dim),
            "inconsistent dimensions"
        );

        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(data[rng.gen_range(0..data.len())].clone());
        while centroids.len() < k {
            let dists: Vec<f64> = data
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| sq_dist(p, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = dists.iter().sum();
            if total <= 0.0 {
                // All points coincide with centroids; duplicate one.
                centroids.push(data[rng.gen_range(0..data.len())].clone());
                continue;
            }
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = data.len() - 1;
            for (i, d) in dists.iter().enumerate() {
                if target < *d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            centroids.push(data[chosen].clone());
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; data.len()];
        for _ in 0..max_iters {
            let mut changed = false;
            for (i, p) in data.iter().enumerate() {
                let best = (0..k)
                    .min_by(|&a, &b| {
                        sq_dist(p, &centroids[a])
                            .partial_cmp(&sq_dist(p, &centroids[b]))
                            .expect("finite distances")
                    })
                    .expect("k > 0");
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            let mut sums = vec![vec![0.0f64; dim]; k];
            let mut counts = vec![0usize; k];
            for (p, &a) in data.iter().zip(&assignment) {
                counts[a] += 1;
                for (s, x) in sums[a].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count > 0 {
                    for (cv, s) in c.iter_mut().zip(sum) {
                        *cv = s / *count as f64;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        KMeans { centroids }
    }

    /// Fits `k` clusters with `restarts` independent k-means++ seedings,
    /// keeping the fit with the lowest inertia. Small feature sets cluster
    /// much more reliably this way.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`KMeans::fit`], or when
    /// `restarts` is zero.
    pub fn fit_restarts<R: Rng>(
        data: &[Vec<f64>],
        k: usize,
        max_iters: usize,
        restarts: usize,
        rng: &mut R,
    ) -> Self {
        assert!(restarts > 0, "need at least one restart");
        let mut best: Option<(f64, KMeans)> = None;
        for _ in 0..restarts {
            let m = KMeans::fit(data, k, max_iters, rng);
            let inertia = m.inertia(data);
            if best.as_ref().is_none_or(|(i, _)| inertia < *i) {
                best = Some((inertia, m));
            }
        }
        best.expect("at least one fit").1
    }

    /// Rebuilds a fitted model from saved centroids (the model's entire
    /// state), so workload-typing fingerprints survive restarts.
    ///
    /// # Errors
    ///
    /// Returns a message when `centroids` is empty, dimensions are
    /// inconsistent, or any coordinate is non-finite.
    pub fn from_centroids(centroids: Vec<Vec<f64>>) -> Result<Self, String> {
        let Some(first) = centroids.first() else {
            return Err("k-means state has no centroids".to_string());
        };
        if first.is_empty() {
            return Err("zero-dimensional centroids".to_string());
        }
        let dim = first.len();
        for (i, c) in centroids.iter().enumerate() {
            if c.len() != dim {
                return Err(format!("centroid {i}: dim {} != {dim}", c.len()));
            }
            if c.iter().any(|x| !x.is_finite()) {
                return Err(format!("centroid {i} has a non-finite coordinate"));
            }
        }
        Ok(KMeans { centroids })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// The fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Index of the nearest centroid to `point`.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match.
    pub fn predict(&self, point: &[f64]) -> usize {
        assert_eq!(point.len(), self.centroids[0].len(), "dimension mismatch");
        (0..self.centroids.len())
            .min_by(|&a, &b| {
                sq_dist(point, &self.centroids[a])
                    .partial_cmp(&sq_dist(point, &self.centroids[b]))
                    .expect("finite distances")
            })
            .expect("non-empty centroids")
    }

    /// Squared distance from `point` to its nearest centroid.
    pub fn distance_to_nearest(&self, point: &[f64]) -> f64 {
        let c = self.predict(point);
        sq_dist(point, &self.centroids[c])
    }

    /// Sum of squared distances of all points to their centroids.
    pub fn inertia(&self, data: &[Vec<f64>]) -> f64 {
        data.iter().map(|p| self.distance_to_nearest(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::rng::SmallRng;

    fn blob<R: Rng>(center: &[f64], n: usize, spread: f64, rng: &mut R) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                center
                    .iter()
                    .map(|c| c + rng.gen_range(-spread..spread))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn separates_well_spaced_blobs() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut data = blob(&[0.0, 0.0], 50, 0.5, &mut rng);
        data.extend(blob(&[10.0, 10.0], 50, 0.5, &mut rng));
        data.extend(blob(&[-10.0, 10.0], 50, 0.5, &mut rng));
        let km = KMeans::fit(&data, 3, 50, &mut rng);
        // All points of a blob share a label; blobs get distinct labels.
        let l0 = km.predict(&data[0]);
        let l1 = km.predict(&data[50]);
        let l2 = km.predict(&data[100]);
        assert!(l0 != l1 && l1 != l2 && l0 != l2);
        for (i, p) in data.iter().enumerate() {
            let want = [l0, l1, l2][i / 50];
            assert_eq!(km.predict(p), want, "point {i}");
        }
    }

    #[test]
    fn inertia_decreases_with_k() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut data = blob(&[0.0, 0.0], 40, 1.0, &mut rng);
        data.extend(blob(&[5.0, 5.0], 40, 1.0, &mut rng));
        let k1 = KMeans::fit(&data, 1, 30, &mut rng).inertia(&data);
        let k2 = KMeans::fit(&data, 2, 30, &mut rng).inertia(&data);
        assert!(k2 < k1 * 0.5, "k1 {k1}, k2 {k2}");
    }

    #[test]
    fn restarts_pick_lowest_inertia() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut data = blob(&[0.0, 0.0], 30, 1.0, &mut rng);
        data.extend(blob(&[8.0, 0.0], 30, 1.0, &mut rng));
        data.extend(blob(&[0.0, 8.0], 30, 1.0, &mut rng));
        let single = KMeans::fit(&data, 3, 30, &mut SmallRng::seed_from_u64(1));
        let multi = KMeans::fit_restarts(&data, 3, 30, 10, &mut SmallRng::seed_from_u64(1));
        assert!(multi.inertia(&data) <= single.inertia(&data) + 1e-9);
    }

    #[test]
    fn handles_duplicate_points() {
        let mut rng = SmallRng::seed_from_u64(3);
        let data = vec![vec![1.0, 1.0]; 10];
        let km = KMeans::fit(&data, 2, 10, &mut rng);
        assert_eq!(km.k(), 2);
        assert_eq!(km.inertia(&data), 0.0);
    }

    #[test]
    fn centroid_roundtrip_preserves_predictions() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut data = blob(&[0.0, 0.0], 30, 0.5, &mut rng);
        data.extend(blob(&[9.0, 9.0], 30, 0.5, &mut rng));
        let km = KMeans::fit(&data, 2, 30, &mut rng);
        let back = KMeans::from_centroids(km.centroids().to_vec()).expect("valid centroids");
        for p in &data {
            assert_eq!(km.predict(p), back.predict(p));
            assert_eq!(km.distance_to_nearest(p), back.distance_to_nearest(p));
        }
    }

    #[test]
    fn from_centroids_rejects_bad_state() {
        assert!(KMeans::from_centroids(vec![]).is_err());
        assert!(KMeans::from_centroids(vec![vec![]]).is_err());
        assert!(KMeans::from_centroids(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(KMeans::from_centroids(vec![vec![f64::NAN]]).is_err());
    }

    #[test]
    #[should_panic(expected = "need at least k points")]
    fn too_few_points_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = KMeans::fit(&[vec![0.0]], 2, 5, &mut rng);
    }
}
