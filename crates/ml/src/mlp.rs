//! Dense multi-layer perceptrons with manual backpropagation.
//!
//! The networks in FleetIO are small enough (≈9 K parameters) that plain
//! per-sample forward/backward passes over `Vec<f32>` weights are both
//! simple and fast; there is no tensor machinery here on purpose.

use fleetio_des::rng::Rng;

/// Activation function applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Hyperbolic tangent (the default PPO hidden activation).
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Identity (for output layers producing logits/values).
    Linear,
}

impl Activation {
    /// Stable small integer tag used by checkpoint serialization.
    pub fn tag(self) -> u8 {
        match self {
            Activation::Tanh => 0,
            Activation::Relu => 1,
            Activation::Linear => 2,
        }
    }

    /// Inverse of [`Activation::tag`].
    ///
    /// # Errors
    ///
    /// Returns the unknown tag back.
    pub fn from_tag(tag: u8) -> Result<Self, u8> {
        match tag {
            0 => Ok(Activation::Tanh),
            1 => Ok(Activation::Relu),
            2 => Ok(Activation::Linear),
            t => Err(t),
        }
    }

    fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`.
    fn grad_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Linear => 1.0,
        }
    }
}

/// One dense layer: `y = act(W x + b)`, with `W` stored row-major
/// (`out_dim × in_dim`).
#[derive(Debug, Clone)]
struct Dense {
    w: Vec<f32>,
    b: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
    act: Activation,
}

impl Dense {
    fn new<R: Rng>(in_dim: usize, out_dim: usize, act: Activation, rng: &mut R) -> Self {
        // Xavier/Glorot uniform initialization.
        let limit = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Dense {
            w,
            b: vec![0.0; out_dim],
            in_dim,
            out_dim,
            act,
        }
    }

    fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        out.clear();
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let z: f32 = row.iter().zip(x).map(|(w, x)| w * x).sum::<f32>() + self.b[o];
            out.push(self.act.apply(z));
        }
    }

    /// Forward pass over `rows` row-major inputs at once. Each row's
    /// accumulation is the exact expression [`Dense::forward`] uses, so
    /// every output bit-matches the per-row pass; the batch form only
    /// amortizes buffer management and keeps the weight matrix hot
    /// across consecutive rows.
    fn forward_batch(&self, xs: &[f32], rows: usize, out: &mut Vec<f32>) {
        out.clear();
        out.resize(rows * self.out_dim, 0.0);
        for (r, x) in xs.chunks_exact(self.in_dim).enumerate() {
            let y = &mut out[r * self.out_dim..(r + 1) * self.out_dim];
            for (o, yo) in y.iter_mut().enumerate() {
                let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
                let z: f32 = row.iter().zip(x).map(|(w, x)| w * x).sum::<f32>() + self.b[o];
                *yo = self.act.apply(z);
            }
        }
    }
}

/// A multi-layer perceptron.
///
/// # Example
///
/// ```
/// use fleetio_ml::{Activation, Mlp};
///
/// let mut rng = fleetio_des::rng::SmallRng::seed_from_u64(0);
/// let net = Mlp::new(&[4, 8, 2], Activation::Tanh, Activation::Linear, &mut rng);
/// let out = net.forward(&[0.1, -0.2, 0.3, 0.0]);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Cached per-layer activations from a forward pass (input first, output
/// last), needed by [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct MlpCache {
    acts: Vec<Vec<f32>>,
}

impl MlpCache {
    /// The network output of the cached pass.
    pub fn output(&self) -> &[f32] {
        self.acts.last().expect("cache has output")
    }
}

/// Accumulated parameter gradients, shaped like an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpGrads {
    dw: Vec<Vec<f32>>,
    db: Vec<Vec<f32>>,
    /// Number of accumulated samples (for averaging).
    pub count: usize,
}

impl MlpGrads {
    /// Sets all gradients to zero.
    pub fn zero(&mut self) {
        for g in &mut self.dw {
            g.fill(0.0);
        }
        for g in &mut self.db {
            g.fill(0.0);
        }
        self.count = 0;
    }

    /// Scales all gradients by `s` (e.g. `1 / batch_size`).
    pub fn scale(&mut self, s: f32) {
        for g in &mut self.dw {
            for v in g {
                *v *= s;
            }
        }
        for g in &mut self.db {
            for v in g {
                *v *= s;
            }
        }
    }

    /// Global L2 norm of all gradients.
    pub fn l2_norm(&self) -> f32 {
        let mut sum = 0.0f32;
        for g in self.dw.iter().chain(self.db.iter()) {
            for v in g {
                sum += v * v;
            }
        }
        sum.sqrt()
    }

    /// Clips the global gradient norm to `max_norm`.
    pub fn clip_norm(&mut self, max_norm: f32) {
        let norm = self.l2_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }
}

/// Serializable parameters of one dense layer.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseState {
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    /// Activation applied after the affine map.
    pub act: Activation,
    /// Row-major weights (`out_dim × in_dim`).
    pub w: Vec<f32>,
    /// Biases (`out_dim`).
    pub b: Vec<f32>,
}

/// The full serializable state of an [`Mlp`]: architecture + parameters.
/// Produced by [`Mlp::export_state`], consumed by [`Mlp::from_state`];
/// the round trip is bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpState {
    /// Per-layer states, input side first.
    pub layers: Vec<DenseState>,
}

impl Mlp {
    /// Builds an MLP with layer sizes `dims` (input first), `hidden_act`
    /// between hidden layers and `out_act` on the final layer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given or any dim is zero.
    pub fn new<R: Rng>(
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "an MLP needs input and output dims");
        assert!(dims.iter().all(|d| *d > 0), "zero-width layer");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == dims.len() {
                    out_act
                } else {
                    hidden_act
                };
                Dense::new(w[0], w[1], act, rng)
            })
            .collect();
        Mlp { layers }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }

    /// Total trainable parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Runs a forward pass, returning the output.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the input dimension.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim(), "input dimension mismatch");
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.forward(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Runs one forward pass over a whole batch: `xs` holds `rows`
    /// observations row-major (`rows × in_dim`), the result is row-major
    /// `rows × out_dim`. Bit-identical per row to calling
    /// [`Mlp::forward`] on each row — the batch form exists so N small
    /// per-agent inferences collapse into one matrix-shaped pass (one
    /// buffer round trip per *layer* instead of per *sample*).
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != rows * in_dim`.
    pub fn forward_batch(&self, xs: &[f32], rows: usize) -> Vec<f32> {
        assert_eq!(
            xs.len(),
            rows * self.in_dim(),
            "batch input dimension mismatch"
        );
        let mut cur = xs.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.forward_batch(&cur, rows, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Runs a forward pass keeping per-layer activations for backprop.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the input dimension.
    pub fn forward_cached(&self, x: &[f32]) -> MlpCache {
        assert_eq!(x.len(), self.in_dim(), "input dimension mismatch");
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.forward(acts.last().expect("non-empty"), &mut next);
            acts.push(next.clone());
        }
        MlpCache { acts }
    }

    /// Allocates a zeroed gradient accumulator shaped like this network.
    pub fn zero_grads(&self) -> MlpGrads {
        MlpGrads {
            dw: self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            db: self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            count: 0,
        }
    }

    /// Backpropagates `dloss_dout` (gradient of the loss w.r.t. the network
    /// output) through the cached pass, accumulating into `grads`.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the cache/network.
    // Index math over flat row-major weights; iterators obscure the layout.
    #[allow(clippy::needless_range_loop)]
    pub fn backward(&self, cache: &MlpCache, dloss_dout: &[f32], grads: &mut MlpGrads) {
        assert_eq!(
            dloss_dout.len(),
            self.out_dim(),
            "output grad dimension mismatch"
        );
        let mut delta: Vec<f32> = dloss_dout.to_vec();
        for (li, layer) in self.layers.iter().enumerate().rev() {
            let y = &cache.acts[li + 1];
            let x = &cache.acts[li];
            // d z = d out ∘ act'(y)
            for (d, yv) in delta.iter_mut().zip(y) {
                *d *= layer.act.grad_from_output(*yv);
            }
            // Accumulate dW, db; compute next delta = Wᵀ dz.
            let mut next_delta = vec![0.0f32; layer.in_dim];
            for o in 0..layer.out_dim {
                let dz = delta[o];
                grads.db[li][o] += dz;
                let row = o * layer.in_dim;
                for i in 0..layer.in_dim {
                    grads.dw[li][row + i] += dz * x[i];
                    next_delta[i] += layer.w[row + i] * dz;
                }
            }
            delta = next_delta;
        }
        grads.count += 1;
    }

    /// Applies a gradient step `p ← p − update(p, g)` where `update` is
    /// provided per parameter in network order (weights then biases, layer
    /// by layer). Used by [`crate::Adam`].
    pub(crate) fn visit_params_mut(&mut self, mut f: impl FnMut(usize, &mut f32)) {
        let mut idx = 0;
        for layer in &mut self.layers {
            for w in &mut layer.w {
                f(idx, w);
                idx += 1;
            }
            for b in &mut layer.b {
                f(idx, b);
                idx += 1;
            }
        }
    }

    /// Visits the gradients in the same order as
    /// [`Mlp::visit_params_mut`].
    pub(crate) fn visit_grads(grads: &MlpGrads, mut f: impl FnMut(usize, f32)) {
        let mut idx = 0;
        for (dw, db) in grads.dw.iter().zip(&grads.db) {
            for g in dw {
                f(idx, *g);
                idx += 1;
            }
            for g in db {
                f(idx, *g);
                idx += 1;
            }
        }
    }

    /// Copies all parameters from `other` (same architecture).
    ///
    /// # Panics
    ///
    /// Panics if the architectures differ.
    pub fn copy_from(&mut self, other: &Mlp) {
        assert_eq!(self.n_params(), other.n_params(), "architecture mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.w.copy_from_slice(&b.w);
            a.b.copy_from_slice(&b.b);
        }
    }

    /// Snapshots architecture and parameters for checkpointing.
    pub fn export_state(&self) -> MlpState {
        MlpState {
            layers: self
                .layers
                .iter()
                .map(|l| DenseState {
                    in_dim: l.in_dim,
                    out_dim: l.out_dim,
                    act: l.act,
                    w: l.w.clone(),
                    b: l.b.clone(),
                })
                .collect(),
        }
    }

    /// Rebuilds a network from an exported state, validating shapes.
    ///
    /// # Errors
    ///
    /// Returns a message when the state is internally inconsistent
    /// (mismatched layer widths or parameter vector lengths).
    pub fn from_state(state: MlpState) -> Result<Mlp, String> {
        if state.layers.is_empty() {
            return Err("MLP state has no layers".to_string());
        }
        let mut layers = Vec::with_capacity(state.layers.len());
        let mut prev_out: Option<usize> = None;
        for (i, l) in state.layers.into_iter().enumerate() {
            if l.in_dim == 0 || l.out_dim == 0 {
                return Err(format!("layer {i}: zero-width layer"));
            }
            if let Some(p) = prev_out {
                if p != l.in_dim {
                    return Err(format!(
                        "layer {i}: in_dim {} does not match previous out_dim {p}",
                        l.in_dim
                    ));
                }
            }
            if l.w.len() != l.in_dim * l.out_dim {
                return Err(format!(
                    "layer {i}: {} weights for {}x{}",
                    l.w.len(),
                    l.out_dim,
                    l.in_dim
                ));
            }
            if l.b.len() != l.out_dim {
                return Err(format!(
                    "layer {i}: {} biases for out_dim {}",
                    l.b.len(),
                    l.out_dim
                ));
            }
            prev_out = Some(l.out_dim);
            layers.push(Dense {
                w: l.w,
                b: l.b,
                in_dim: l.in_dim,
                out_dim: l.out_dim,
                act: l.act,
            });
        }
        Ok(Mlp { layers })
    }
}

/// Softmax over `logits`, numerically stabilized.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Natural log of softmax probabilities.
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits.iter().map(|l| (l - max).exp()).sum::<f32>().ln();
    logits.iter().map(|l| l - max - log_sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::rng::SmallRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let net = Mlp::new(&[3, 5, 2], Activation::Tanh, Activation::Linear, &mut rng());
        let a = net.forward(&[0.1, 0.2, 0.3]);
        let b = net.forward(&[0.1, 0.2, 0.3]);
        assert_eq!(a.len(), 2);
        assert_eq!(a, b);
        assert_eq!(net.n_params(), 3 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn paper_policy_size_is_about_9k_params() {
        // 33 inputs, [50, 50] hidden, 13 logits + separate value net ≈ 9 K.
        let policy = Mlp::new(
            &[33, 50, 50, 13],
            Activation::Tanh,
            Activation::Linear,
            &mut rng(),
        );
        let value = Mlp::new(
            &[33, 50, 50, 1],
            Activation::Tanh,
            Activation::Linear,
            &mut rng(),
        );
        let total = policy.n_params() + value.n_params();
        assert!((7_000..12_000).contains(&total), "total params {total}");
    }

    #[test]
    fn cached_forward_matches_plain() {
        let net = Mlp::new(&[4, 6, 3], Activation::Relu, Activation::Linear, &mut rng());
        let x = [0.5, -0.5, 0.25, 1.0];
        assert_eq!(net.forward(&x), net.forward_cached(&x).output());
    }

    #[test]
    fn numerical_gradient_check() {
        let mut r = rng();
        let net = Mlp::new(&[3, 4, 2], Activation::Tanh, Activation::Linear, &mut r);
        let x = [0.3f32, -0.7, 0.5];
        // Loss = sum of outputs → dL/dout = [1, 1].
        let cache = net.forward_cached(&x);
        let mut grads = net.zero_grads();
        net.backward(&cache, &[1.0, 1.0], &mut grads);

        // Numerically perturb a few parameters and compare.
        let eps = 1e-3f32;
        let loss = |n: &Mlp| -> f32 { n.forward(&x).iter().sum() };
        let mut checked = 0;
        for probe in [0usize, 5, 11, 16] {
            let mut plus = net.clone();
            let mut minus = net.clone();
            plus.visit_params_mut(|i, p| {
                if i == probe {
                    *p += eps;
                }
            });
            minus.visit_params_mut(|i, p| {
                if i == probe {
                    *p -= eps;
                }
            });
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let mut analytic = 0.0;
            Mlp::visit_grads(&grads, |i, g| {
                if i == probe {
                    analytic = g;
                }
            });
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "param {probe}: numeric {numeric} vs analytic {analytic}"
            );
            checked += 1;
        }
        assert_eq!(checked, 4);
    }

    #[test]
    fn grads_accumulate_scale_and_clip() {
        let net = Mlp::new(&[2, 3, 1], Activation::Tanh, Activation::Linear, &mut rng());
        let mut grads = net.zero_grads();
        let c = net.forward_cached(&[1.0, -1.0]);
        net.backward(&c, &[1.0], &mut grads);
        net.backward(&c, &[1.0], &mut grads);
        assert_eq!(grads.count, 2);
        let norm2 = grads.l2_norm();
        grads.scale(0.5);
        assert!((grads.l2_norm() - norm2 * 0.5).abs() < 1e-5);
        grads.clip_norm(0.01);
        assert!(grads.l2_norm() <= 0.011);
        grads.zero();
        assert_eq!(grads.l2_norm(), 0.0);
    }

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Log-softmax consistency.
        let lp = log_softmax(&[1.0, 2.0, 3.0]);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn copy_from_clones_behaviour() {
        let mut r = rng();
        let a = Mlp::new(&[2, 4, 2], Activation::Tanh, Activation::Linear, &mut r);
        let mut b = Mlp::new(&[2, 4, 2], Activation::Tanh, Activation::Linear, &mut r);
        assert_ne!(a.forward(&[0.5, 0.5]), b.forward(&[0.5, 0.5]));
        b.copy_from(&a);
        assert_eq!(a.forward(&[0.5, 0.5]), b.forward(&[0.5, 0.5]));
    }

    #[test]
    fn state_roundtrip_is_bit_exact() {
        let net = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Linear, &mut rng());
        let state = net.export_state();
        let back = Mlp::from_state(state.clone()).expect("valid state");
        assert_eq!(back.export_state(), state);
        let x = [0.3, -0.9, 0.1];
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn from_state_rejects_inconsistent_shapes() {
        let net = Mlp::new(&[3, 5, 2], Activation::Tanh, Activation::Linear, &mut rng());
        let mut bad = net.export_state();
        bad.layers[0].w.pop();
        assert!(Mlp::from_state(bad).is_err());
        let mut bad = net.export_state();
        bad.layers[1].in_dim = 4;
        assert!(Mlp::from_state(bad).is_err());
        assert!(Mlp::from_state(MlpState { layers: vec![] }).is_err());
    }

    #[test]
    fn activation_tags_roundtrip() {
        for act in [Activation::Tanh, Activation::Relu, Activation::Linear] {
            assert_eq!(Activation::from_tag(act.tag()), Ok(act));
        }
        assert_eq!(Activation::from_tag(9), Err(9));
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_panics() {
        let net = Mlp::new(&[3, 2], Activation::Tanh, Activation::Linear, &mut rng());
        let _ = net.forward(&[1.0]);
    }

    /// Property: over seeded random shapes, activations and inputs, the
    /// batched pass is bit-exact against the per-row pass — compared on
    /// the raw bit patterns, not float equality, so a "harmless"
    /// reassociation of the accumulation would fail here.
    #[test]
    fn forward_batch_is_bit_exact_per_row() {
        let mut r = SmallRng::seed_from_u64(0xBA7C);
        for case in 0..40u64 {
            let n_layers = 2 + (r.next_u64() % 3) as usize;
            let dims: Vec<usize> = (0..n_layers)
                .map(|_| 1 + (r.next_u64() % 9) as usize)
                .collect();
            let acts = [Activation::Tanh, Activation::Relu, Activation::Linear];
            let hidden = acts[(r.next_u64() % 3) as usize];
            let out = acts[(r.next_u64() % 3) as usize];
            let net = Mlp::new(&dims, hidden, out, &mut r);
            let rows = (r.next_u64() % 17) as usize;
            let xs: Vec<f32> = (0..rows * net.in_dim())
                .map(|_| r.gen_range(-3.0f32..3.0))
                .collect();
            let batched = net.forward_batch(&xs, rows);
            assert_eq!(batched.len(), rows * net.out_dim(), "case {case}");
            for (row, x) in xs.chunks_exact(net.in_dim().max(1)).enumerate() {
                let single = net.forward(x);
                let b = &batched[row * net.out_dim()..(row + 1) * net.out_dim()];
                for (i, (a, e)) in b.iter().zip(&single).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        e.to_bits(),
                        "case {case} row {row} out {i}: batched {a} vs single {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn forward_batch_empty_batch_is_empty() {
        let net = Mlp::new(&[3, 5, 2], Activation::Tanh, Activation::Linear, &mut rng());
        assert!(net.forward_batch(&[], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch input dimension mismatch")]
    fn forward_batch_wrong_input_panics() {
        let net = Mlp::new(&[3, 2], Activation::Tanh, Activation::Linear, &mut rng());
        let _ = net.forward_batch(&[1.0, 2.0], 1);
    }
}
