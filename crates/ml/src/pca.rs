//! Principal component analysis via power iteration with deflation.
//!
//! Figure 6 of the paper projects 4-dimensional I/O feature windows onto
//! two principal components for visualization. The feature dimensionality
//! is tiny, so power iteration on the covariance matrix is plenty.

use fleetio_des::rng::Rng;

/// A fitted PCA projection.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    components: Vec<Vec<f64>>,
    explained: Vec<f64>,
}

impl Pca {
    /// Fits the top `n_components` principal components of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, rows have inconsistent dimensions, or
    /// `n_components` exceeds the dimensionality or is zero.
    // Symmetric-matrix index math; iterators obscure the (i, j) symmetry.
    #[allow(clippy::needless_range_loop)]
    pub fn fit<R: Rng>(data: &[Vec<f64>], n_components: usize, rng: &mut R) -> Self {
        assert!(!data.is_empty(), "PCA needs data");
        let dim = data[0].len();
        assert!(
            data.iter().all(|p| p.len() == dim),
            "inconsistent dimensions"
        );
        assert!(
            n_components > 0 && n_components <= dim,
            "bad component count"
        );

        let n = data.len() as f64;
        let mean: Vec<f64> = (0..dim)
            .map(|j| data.iter().map(|p| p[j]).sum::<f64>() / n)
            .collect();
        // Covariance matrix (dim × dim).
        let mut cov = vec![vec![0.0f64; dim]; dim];
        for p in data {
            for i in 0..dim {
                let di = p[i] - mean[i];
                for j in i..dim {
                    cov[i][j] += di * (p[j] - mean[j]);
                }
            }
        }
        for i in 0..dim {
            for j in i..dim {
                cov[i][j] /= n.max(2.0) - 1.0;
                cov[j][i] = cov[i][j];
            }
        }

        let mut components = Vec::with_capacity(n_components);
        let mut explained = Vec::with_capacity(n_components);
        let mut work = cov;
        for _ in 0..n_components {
            let (vec_, val) = power_iteration(&work, rng);
            // Deflate: cov ← cov − λ v vᵀ.
            for i in 0..dim {
                for j in 0..dim {
                    work[i][j] -= val * vec_[i] * vec_[j];
                }
            }
            components.push(vec_);
            explained.push(val.max(0.0));
        }
        Pca {
            mean,
            components,
            explained,
        }
    }

    /// Per-component explained variance (eigenvalues), largest first.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained
    }

    /// The fitted component directions (unit vectors).
    pub fn components(&self) -> &[Vec<f64>] {
        &self.components
    }

    /// Projects `point` into component space.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match.
    pub fn transform(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|c| {
                c.iter()
                    .zip(point.iter().zip(&self.mean))
                    .map(|(cv, (x, m))| cv * (x - m))
                    .sum()
            })
            .collect()
    }
}

/// Returns the dominant (eigenvector, eigenvalue) of symmetric `m`.
fn power_iteration<R: Rng>(m: &[Vec<f64>], rng: &mut R) -> (Vec<f64>, f64) {
    let dim = m.len();
    let mut v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    normalize(&mut v);
    let mut val = 0.0;
    for _ in 0..200 {
        let mut next = vec![0.0f64; dim];
        for i in 0..dim {
            for j in 0..dim {
                next[i] += m[i][j] * v[j];
            }
        }
        let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            // Matrix is (numerically) zero in the remaining subspace.
            return (v, 0.0);
        }
        for x in &mut next {
            *x /= norm;
        }
        let delta: f64 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
        v = next;
        val = norm;
        if delta < 1e-12 {
            break;
        }
    }
    (v, val)
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::rng::SmallRng;

    #[test]
    fn finds_dominant_direction() {
        let mut rng = SmallRng::seed_from_u64(5);
        // Points along y = 2x with small noise: first component ≈ (1, 2)/√5.
        let data: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let x = (i as f64 - 100.0) / 10.0;
                vec![
                    x + rng.gen_range(-0.01..0.01),
                    2.0 * x + rng.gen_range(-0.01..0.01),
                ]
            })
            .collect();
        let pca = Pca::fit(&data, 2, &mut rng);
        let c0 = &pca.components()[0];
        let slope = (c0[1] / c0[0]).abs();
        assert!((slope - 2.0).abs() < 0.05, "slope {slope}");
        // First component explains almost everything.
        let ev = pca.explained_variance();
        assert!(ev[0] > 100.0 * ev[1].max(1e-12), "{ev:?}");
    }

    #[test]
    fn transform_centers_data() {
        let mut rng = SmallRng::seed_from_u64(6);
        let data = vec![vec![1.0, 1.0], vec![3.0, 3.0], vec![2.0, 2.0]];
        let pca = Pca::fit(&data, 1, &mut rng);
        let proj: Vec<f64> = data.iter().map(|p| pca.transform(p)[0]).collect();
        let mean: f64 = proj.iter().sum::<f64>() / proj.len() as f64;
        assert!(mean.abs() < 1e-9);
        // Endpoints map symmetrically.
        assert!((proj[0] + proj[1]).abs() < 1e-9);
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = SmallRng::seed_from_u64(7);
        let data: Vec<Vec<f64>> = (0..100)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let pca = Pca::fit(&data, 3, &mut rng);
        for (i, a) in pca.components().iter().enumerate() {
            let norm: f64 = a.iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-6, "component {i} norm {norm}");
            for b in pca.components().iter().skip(i + 1) {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                assert!(dot.abs() < 1e-3, "components not orthogonal: {dot}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad component count")]
    fn too_many_components_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = Pca::fit(&[vec![1.0, 2.0]], 3, &mut rng);
    }
}
