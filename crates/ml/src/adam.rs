//! The Adam optimizer (Kingma & Ba, 2015).

use crate::mlp::{Mlp, MlpGrads};

/// Adam state for one network's parameters.
///
/// # Example
///
/// ```
/// use fleetio_ml::{Activation, Adam, Mlp};
///
/// let mut rng = fleetio_des::rng::SmallRng::seed_from_u64(7);
/// let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Linear, &mut rng);
/// let mut opt = Adam::new(net.n_params(), 1e-2);
/// // Minimize (out − 1)² at a fixed input.
/// for _ in 0..300 {
///     let cache = net.forward_cached(&[0.5, -0.5]);
///     let err = cache.output()[0] - 1.0;
///     let mut grads = net.zero_grads();
///     net.backward(&cache, &[2.0 * err], &mut grads);
///     opt.step(&mut net, &grads);
/// }
/// assert!((net.forward(&[0.5, -0.5])[0] - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates Adam state for `n_params` parameters with learning rate
    /// `lr` and the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics unless `lr` is strictly positive and finite.
    pub fn new(n_params: usize, lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (e.g. for schedules).
    ///
    /// # Panics
    ///
    /// Panics unless `lr` is strictly positive and finite.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one Adam step to `net` using accumulated `grads`.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the network this
    /// optimizer was sized for.
    pub fn step(&mut self, net: &mut Mlp, grads: &MlpGrads) {
        assert_eq!(
            self.m.len(),
            net.n_params(),
            "optimizer/network size mismatch"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        // First pass: update moments from gradients.
        let (beta1, beta2) = (self.beta1, self.beta2);
        let (m, v) = (&mut self.m, &mut self.v);
        Mlp::visit_grads(grads, |i, g| {
            m[i] = beta1 * m[i] + (1.0 - beta1) * g;
            v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
        });
        // Second pass: apply bias-corrected update.
        let (lr, eps) = (self.lr, self.eps);
        let (m, v) = (&self.m, &self.v);
        net.visit_params_mut(|i, p| {
            let m_hat = m[i] / b1t;
            let v_hat = v[i] / b2t;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Activation;
    use fleetio_des::rng::SmallRng;

    #[test]
    fn converges_on_regression_task() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, Activation::Linear, &mut rng);
        let mut opt = Adam::new(net.n_params(), 5e-3);
        // Fit y = 2x on x ∈ {-1, -0.5, 0, 0.5, 1}.
        let data: Vec<(f32, f32)> = [-1.0f32, -0.5, 0.0, 0.5, 1.0]
            .iter()
            .map(|x| (*x, 2.0 * x))
            .collect();
        for _ in 0..2000 {
            let mut grads = net.zero_grads();
            for (x, y) in &data {
                let cache = net.forward_cached(&[*x]);
                let err = cache.output()[0] - y;
                net.backward(&cache, &[2.0 * err], &mut grads);
            }
            grads.scale(1.0 / data.len() as f32);
            opt.step(&mut net, &grads);
        }
        let mse: f32 = data
            .iter()
            .map(|(x, y)| {
                let p = net.forward(&[*x])[0];
                (p - y) * (p - y)
            })
            .sum::<f32>()
            / data.len() as f32;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_size_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut net = Mlp::new(&[2, 2], Activation::Tanh, Activation::Linear, &mut rng);
        let grads = net.zero_grads();
        let mut opt = Adam::new(3, 1e-3);
        opt.step(&mut net, &grads);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn bad_lr_panics() {
        let _ = Adam::new(10, -1.0);
    }
}
