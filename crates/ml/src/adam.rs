//! The Adam optimizer (Kingma & Ba, 2015).

use crate::mlp::{Mlp, MlpGrads};

/// The full serializable state of an [`Adam`] optimizer: hyper-parameters,
/// both moment vectors and the step count. Produced by
/// [`Adam::export_state`], consumed by [`Adam::from_state`]; resuming from
/// the round trip continues optimization bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Denominator fuzz ε.
    pub eps: f32,
    /// First moments, one per parameter.
    pub m: Vec<f32>,
    /// Second moments, one per parameter.
    pub v: Vec<f32>,
    /// Steps taken (drives bias correction).
    pub t: u64,
}

/// Adam state for one network's parameters.
///
/// # Example
///
/// ```
/// use fleetio_ml::{Activation, Adam, Mlp};
///
/// let mut rng = fleetio_des::rng::SmallRng::seed_from_u64(7);
/// let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Linear, &mut rng);
/// let mut opt = Adam::new(net.n_params(), 1e-2);
/// // Minimize (out − 1)² at a fixed input.
/// for _ in 0..300 {
///     let cache = net.forward_cached(&[0.5, -0.5]);
///     let err = cache.output()[0] - 1.0;
///     let mut grads = net.zero_grads();
///     net.backward(&cache, &[2.0 * err], &mut grads);
///     opt.step(&mut net, &grads);
/// }
/// assert!((net.forward(&[0.5, -0.5])[0] - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates Adam state for `n_params` parameters with learning rate
    /// `lr` and the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics unless `lr` is strictly positive and finite.
    pub fn new(n_params: usize, lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Number of parameters this optimizer is sized for.
    pub fn n_params(&self) -> usize {
        self.m.len()
    }

    /// Updates the learning rate (e.g. for schedules).
    ///
    /// # Panics
    ///
    /// Panics unless `lr` is strictly positive and finite.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Snapshots the optimizer for checkpointing.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
        }
    }

    /// Rebuilds an optimizer from an exported state.
    ///
    /// # Errors
    ///
    /// Returns a message when the state is inconsistent (moment vectors of
    /// different lengths, non-positive learning rate, β outside [0, 1)).
    pub fn from_state(state: AdamState) -> Result<Adam, String> {
        if state.m.len() != state.v.len() {
            return Err(format!(
                "moment vectors disagree: {} vs {}",
                state.m.len(),
                state.v.len()
            ));
        }
        if !(state.lr.is_finite() && state.lr > 0.0) {
            return Err("learning rate must be positive".to_string());
        }
        for (name, b) in [("beta1", state.beta1), ("beta2", state.beta2)] {
            if !(0.0..1.0).contains(&b) {
                return Err(format!("{name} {b} outside [0, 1)"));
            }
        }
        Ok(Adam {
            lr: state.lr,
            beta1: state.beta1,
            beta2: state.beta2,
            eps: state.eps,
            m: state.m,
            v: state.v,
            t: state.t,
        })
    }

    /// Applies one Adam step to `net` using accumulated `grads`.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the network this
    /// optimizer was sized for.
    pub fn step(&mut self, net: &mut Mlp, grads: &MlpGrads) {
        assert_eq!(
            self.m.len(),
            net.n_params(),
            "optimizer/network size mismatch"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        // First pass: update moments from gradients.
        let (beta1, beta2) = (self.beta1, self.beta2);
        let (m, v) = (&mut self.m, &mut self.v);
        Mlp::visit_grads(grads, |i, g| {
            m[i] = beta1 * m[i] + (1.0 - beta1) * g;
            v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
        });
        // Second pass: apply bias-corrected update.
        let (lr, eps) = (self.lr, self.eps);
        let (m, v) = (&self.m, &self.v);
        net.visit_params_mut(|i, p| {
            let m_hat = m[i] / b1t;
            let v_hat = v[i] / b2t;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Activation;
    use fleetio_des::rng::SmallRng;

    #[test]
    fn converges_on_regression_task() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, Activation::Linear, &mut rng);
        let mut opt = Adam::new(net.n_params(), 5e-3);
        // Fit y = 2x on x ∈ {-1, -0.5, 0, 0.5, 1}.
        let data: Vec<(f32, f32)> = [-1.0f32, -0.5, 0.0, 0.5, 1.0]
            .iter()
            .map(|x| (*x, 2.0 * x))
            .collect();
        for _ in 0..2000 {
            let mut grads = net.zero_grads();
            for (x, y) in &data {
                let cache = net.forward_cached(&[*x]);
                let err = cache.output()[0] - y;
                net.backward(&cache, &[2.0 * err], &mut grads);
            }
            grads.scale(1.0 / data.len() as f32);
            opt.step(&mut net, &grads);
        }
        let mse: f32 = data
            .iter()
            .map(|(x, y)| {
                let p = net.forward(&[*x])[0];
                (p - y) * (p - y)
            })
            .sum::<f32>()
            / data.len() as f32;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn state_roundtrip_continues_identically() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Linear, &mut rng);
        let mut opt = Adam::new(net.n_params(), 1e-2);
        let step = |net: &mut Mlp, opt: &mut Adam| {
            let cache = net.forward_cached(&[0.4, -0.2]);
            let err = cache.output()[0] - 1.0;
            let mut grads = net.zero_grads();
            net.backward(&cache, &[2.0 * err], &mut grads);
            opt.step(net, &grads);
        };
        for _ in 0..5 {
            step(&mut net, &mut opt);
        }
        let mut net2 = Mlp::from_state(net.export_state()).expect("valid");
        let mut opt2 = Adam::from_state(opt.export_state()).expect("valid");
        for _ in 0..5 {
            step(&mut net, &mut opt);
            step(&mut net2, &mut opt2);
        }
        assert_eq!(net.export_state(), net2.export_state());
        assert_eq!(opt.export_state(), opt2.export_state());
    }

    #[test]
    fn from_state_rejects_bad_fields() {
        let opt = Adam::new(4, 1e-3);
        let mut bad = opt.export_state();
        bad.v.pop();
        assert!(Adam::from_state(bad).is_err());
        let mut bad = opt.export_state();
        bad.lr = -1.0;
        assert!(Adam::from_state(bad).is_err());
        let mut bad = opt.export_state();
        bad.beta2 = 1.0;
        assert!(Adam::from_state(bad).is_err());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_size_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut net = Mlp::new(&[2, 2], Activation::Tanh, Activation::Linear, &mut rng);
        let grads = net.zero_grads();
        let mut opt = Adam::new(3, 1e-3);
        opt.step(&mut net, &grads);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn bad_lr_panics() {
        let _ = Adam::new(10, -1.0);
    }
}
