//! Deterministic dataset utilities.

use fleetio_des::rng::Rng;

/// Splits indices `0..n` into a shuffled (train, test) partition with the
/// given train fraction, as the paper's 70/30 split for clustering (§3.4).
///
/// # Panics
///
/// Panics unless `train_frac` is in `(0, 1)`.
pub fn train_test_split<R: Rng>(
    n: usize,
    train_frac: f64,
    rng: &mut R,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        train_frac > 0.0 && train_frac < 1.0,
        "train_frac must be in (0, 1)"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    let cut = ((n as f64) * train_frac).round() as usize;
    let cut = cut.clamp(1.min(n), n.saturating_sub(1).max(1));
    let test = idx.split_off(cut.min(idx.len()));
    (idx, test)
}

/// Selects rows of `data` by `indices`.
pub fn take<T: Clone>(data: &[T], indices: &[usize]) -> Vec<T> {
    indices.iter().map(|&i| data[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::rng::SmallRng;

    #[test]
    fn split_partitions_everything() {
        let mut rng = SmallRng::seed_from_u64(9);
        let (train, test) = train_test_split(100, 0.7, &mut rng);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let a = train_test_split(50, 0.7, &mut SmallRng::seed_from_u64(1));
        let b = train_test_split(50, 0.7, &mut SmallRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn take_selects_rows() {
        let data = vec!["a", "b", "c"];
        assert_eq!(take(&data, &[2, 0]), vec!["c", "a"]);
    }

    #[test]
    #[should_panic(expected = "train_frac")]
    fn bad_fraction_panics() {
        let _ = train_test_split(10, 1.5, &mut SmallRng::seed_from_u64(0));
    }
}
