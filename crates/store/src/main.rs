//! `fleetio-store` CLI: record, inspect and interrogate run stores.
//!
//! ```text
//! fleetio-store record <dir> [--seed N] [--windows N] [--checkpoint-every N] [--segment-bytes N]
//! fleetio-store info   <dir>
//! fleetio-store query  <dir> [--tenant N] [--from NS] [--to NS] [--kind TAG] [--windows]
//! fleetio-store diff   <dir-a> <dir-b>
//! fleetio-store replay <dir> <target-ns>
//! fleetio-store verify <dir>
//! ```
//!
//! Exit codes: 0 = OK; 1 = a *finding* (streams diverge, replay
//! mismatch, store damage); 2 = usage or I/O error. `query` prints
//! matching events as JSONL on stdout and a scan summary on stderr, so
//! results pipe cleanly into `fleetio-obs summarize`.

use std::path::Path;
use std::process::ExitCode;

use fleetio::RunSpec;
use fleetio_obs::ObsEvent;
use fleetio_store::{
    aggregate_windows, diff_stores, query, record_run, replay_run, DiffOutcome, EventFilter,
    RunStore, DEFAULT_SEGMENT_BYTES,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("record") => cmd_record(&args[2..]),
        Some("info") => cmd_info(&args[2..]),
        Some("query") => cmd_query(&args[2..]),
        Some("diff") => cmd_diff(&args[2..]),
        Some("replay") => cmd_replay(&args[2..]),
        Some("verify") => cmd_verify(&args[2..]),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: fleetio-store record <dir> [--seed N] [--windows N] [--checkpoint-every N] [--segment-bytes N]\n       \
         fleetio-store info   <dir>\n       \
         fleetio-store query  <dir> [--tenant N] [--from NS] [--to NS] [--kind TAG] [--windows]\n       \
         fleetio-store diff   <dir-a> <dir-b>\n       \
         fleetio-store replay <dir> <target-ns>\n       \
         fleetio-store verify <dir>\n\n       \
         event kinds: {}",
        ObsEvent::KIND_TAGS.join(" ")
    );
    ExitCode::from(2)
}

/// Parses `--flag value` pairs after the positional arguments.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v)),
            None => Err(format!("{flag} needs a value")),
        },
        None => Ok(None),
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad {what}: {s:?}"))
}

fn open(dir: &str) -> Result<RunStore, ExitCode> {
    RunStore::open(Path::new(dir)).map_err(|e| {
        eprintln!("fleetio-store: {e}");
        ExitCode::from(2)
    })
}

fn cmd_record(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return usage();
    };
    let parsed = (|| -> Result<(u64, u64, u64, u64), String> {
        let seed = flag_value(args, "--seed")?.map_or(Ok(42), |v| parse_u64(v, "--seed"))?;
        let windows =
            flag_value(args, "--windows")?.map_or(Ok(6), |v| parse_u64(v, "--windows"))?;
        let every = flag_value(args, "--checkpoint-every")?
            .map_or(Ok(2), |v| parse_u64(v, "--checkpoint-every"))?;
        let seg = flag_value(args, "--segment-bytes")?
            .map_or(Ok(DEFAULT_SEGMENT_BYTES as u64), |v| {
                parse_u64(v, "--segment-bytes")
            })?;
        Ok((seed, windows, every, seg))
    })();
    let (seed, windows, every, seg) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fleetio-store: {e}");
            return usage();
        }
    };
    let spec = RunSpec::demo(seed, windows as u32, every as u32);
    match record_run(&spec, Path::new(dir.as_str()), seg as usize) {
        Ok(report) => {
            println!(
                "recorded {} events in {} segments over {} windows ({} anchors) -> {dir}",
                report.manifest.total_events,
                report.manifest.segments.len(),
                report.windows,
                report.anchors,
            );
            println!(
                "seed {} spec {:#010x} stream fingerprint {:#018x}",
                report.manifest.seed,
                report.manifest.spec_fingerprint,
                report.manifest.stream_fingerprint,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fleetio-store: record: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return usage();
    };
    let store = match open(dir) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let m = store.manifest();
    println!("store     {dir}");
    println!(
        "run       seed {} window {} ns spec {:#010x} sealed {}",
        m.seed, m.window_ns, m.spec_fingerprint, m.sealed
    );
    println!(
        "stream    {} events, fingerprint {:#018x}",
        m.total_events, m.stream_fingerprint
    );
    println!("segments  {}", m.segments.len());
    for s in &m.segments {
        println!(
            "  {}  {:>8} events  {:>10} bytes  t=[{}..{}] ns  tenants {:#x} kinds {:#x}",
            s.file_name(),
            s.events,
            s.bytes,
            s.min_at_ns,
            s.max_at_ns,
            s.tenant_bits,
            s.kind_bits
        );
    }
    println!("anchors   {}", m.anchors.len());
    for a in &m.anchors {
        println!(
            "  window {:>4}  t={} ns  {} events before",
            a.window, a.at_ns, a.event_count
        );
    }
    ExitCode::SUCCESS
}

fn cmd_query(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return usage();
    };
    let filter = (|| -> Result<EventFilter, String> {
        let tenant = flag_value(args, "--tenant")?
            .map(|v| parse_u64(v, "--tenant").map(|t| t as u32))
            .transpose()?;
        let from_ns = flag_value(args, "--from")?
            .map(|v| parse_u64(v, "--from"))
            .transpose()?;
        let to_ns = flag_value(args, "--to")?
            .map(|v| parse_u64(v, "--to"))
            .transpose()?;
        let kind = match flag_value(args, "--kind")? {
            Some(tag) => Some(
                ObsEvent::kind_index_of_tag(tag)
                    .ok_or_else(|| format!("unknown event kind {tag:?}"))?,
            ),
            None => None,
        };
        Ok(EventFilter {
            tenant,
            from_ns,
            to_ns,
            kind,
        })
    })();
    let filter = match filter {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fleetio-store: {e}");
            return usage();
        }
    };
    let store = match open(dir) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let result = match query(&store, &filter) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleetio-store: query: {e}");
            return ExitCode::from(2);
        }
    };
    if args.iter().any(|a| a == "--windows") {
        for w in aggregate_windows(&result.events, store.manifest().window_ns) {
            println!(
                "{{\"window\":{},\"events\":{},\"bytes\":{}}}",
                w.window, w.events, w.bytes
            );
        }
    } else {
        let mut line = String::new();
        for ev in &result.events {
            line.clear();
            ev.write_json(&mut line);
            println!("{line}");
        }
    }
    eprintln!(
        "fleetio-store: {} events matched; scanned {}/{} segments",
        result.events.len(),
        result.segments_scanned,
        result.segments_total
    );
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let (Some(a), Some(b)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let (sa, sb) = match (open(a), open(b)) {
        (Ok(sa), Ok(sb)) => (sa, sb),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    match diff_stores(&sa, &sb) {
        Ok(DiffOutcome::Identical { events }) => {
            println!("identical: {events} events match byte-for-byte");
            ExitCode::SUCCESS
        }
        Ok(DiffOutcome::Diverged(d)) => {
            println!(
                "diverged at event {} (a has {} events, b has {})",
                d.index, d.a_total, d.b_total
            );
            for (i, ev) in d.context.iter().enumerate() {
                println!("  shared[-{}] {ev}", d.context.len() - i);
            }
            println!("  a: {}", d.a_event.as_deref().unwrap_or("<end of stream>"));
            println!("  b: {}", d.b_event.as_deref().unwrap_or("<end of stream>"));
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("fleetio-store: diff: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let (Some(dir), Some(target)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let target_ns = match parse_u64(target, "target sim-time") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fleetio-store: {e}");
            return usage();
        }
    };
    match replay_run(Path::new(dir.as_str()), target_ns) {
        Ok(report) => {
            match report.anchor_window {
                Some(w) => println!(
                    "anchor: window {w} ({} events fingerprint-verified)",
                    report.anchor_event_count
                ),
                None => println!("anchor: none before target; full byte comparison"),
            }
            println!(
                "replayed {} windows, {} events ({} byte-compared) to t={} ns",
                report.windows_replayed, report.events_replayed, report.compared, report.target_ns
            );
            if report.ok() {
                println!("replay matches the stored stream exactly");
                ExitCode::SUCCESS
            } else {
                if !report.prefix_ok {
                    println!("MISMATCH: prefix fingerprint differs from anchor");
                }
                if let Some(i) = report.mismatch {
                    println!("MISMATCH: first divergent event at stream index {i}");
                }
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("fleetio-store: replay: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let Some(dir) = args.first() else {
        return usage();
    };
    let store = match open(dir) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let report = store.verify();
    for s in &report.segments {
        match &s.damage {
            None if s.events_read == s.events_expected => {
                println!("seg {:05}  OK        {} events", s.seq, s.events_read);
            }
            None => println!(
                "seg {:05}  SHORT     {} of {} events",
                s.seq, s.events_read, s.events_expected
            ),
            Some(d) => println!(
                "seg {:05}  DAMAGED   {} of {} events recovered ({d})",
                s.seq, s.events_read, s.events_expected
            ),
        }
    }
    println!(
        "sealed {}  fingerprint {}",
        report.sealed,
        match report.fingerprint_ok {
            Some(true) => "OK",
            Some(false) => "MISMATCH",
            None => "unverifiable (damage)",
        }
    );
    if !report.recoverable_ns.is_empty() {
        let ranges: Vec<String> = report
            .recoverable_ns
            .iter()
            .map(|(lo, hi)| format!("[{lo}..{hi}]"))
            .collect();
        println!("recoverable sim-time ranges (ns): {}", ranges.join(" "));
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
