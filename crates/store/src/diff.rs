//! Same-seed run diff: lockstep byte comparison of two stored streams.
//!
//! Determinism makes equality checkable at the byte level: two runs of
//! the same spec and seed must produce *identical* encoded event
//! streams. The diff walks both stores' payloads in stream order and
//! reports the first index where they disagree, with the decoded event
//! from each side and a ring of the last few shared events for context.
//! Anything weaker (field-by-field tolerance, reordering) would paper
//! over exactly the bugs the store exists to catch.

use fleetio_obs::wire;

use crate::read::{RunStore, StoreError};

/// Shared events kept as context before a divergence.
pub const CONTEXT_EVENTS: usize = 5;

/// Where and how two streams diverged.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Stream index of the first differing event.
    pub index: u64,
    /// The event at `index` on side A, rendered (`None` past A's end).
    pub a_event: Option<String>,
    /// The event at `index` on side B, rendered (`None` past B's end).
    pub b_event: Option<String>,
    /// The last up-to-[`CONTEXT_EVENTS`] events both sides shared,
    /// rendered, oldest first.
    pub context: Vec<String>,
    /// Total events on side A.
    pub a_total: u64,
    /// Total events on side B.
    pub b_total: u64,
}

/// Outcome of [`diff_stores`].
#[derive(Debug, Clone)]
pub enum DiffOutcome {
    /// Streams are byte-identical.
    Identical {
        /// Events compared.
        events: u64,
    },
    /// Streams differ; first divergence reported.
    Diverged(Box<Divergence>),
}

fn render_payload(payload: &[u8]) -> String {
    match wire::decode_event(payload) {
        Ok(ev) => format!("{ev:?}"),
        Err(e) => format!("<undecodable: {e}>"),
    }
}

/// Compares two stores' event streams byte-for-byte, in stream order.
///
/// # Errors
///
/// Damage or I/O failure in either store — a diff over corrupt inputs
/// would be meaningless.
pub fn diff_stores(a: &RunStore, b: &RunStore) -> Result<DiffOutcome, StoreError> {
    let pa = a.payloads()?;
    let pb = b.payloads()?;
    let shared = pa.len().min(pb.len());
    let mut context: Vec<&[u8]> = Vec::with_capacity(CONTEXT_EVENTS);
    for i in 0..shared {
        if pa[i] != pb[i] {
            return Ok(DiffOutcome::Diverged(Box::new(Divergence {
                index: i as u64,
                a_event: Some(render_payload(&pa[i])),
                b_event: Some(render_payload(&pb[i])),
                context: context.iter().map(|p| render_payload(p)).collect(),
                a_total: pa.len() as u64,
                b_total: pb.len() as u64,
            })));
        }
        if context.len() == CONTEXT_EVENTS {
            context.remove(0);
        }
        context.push(&pa[i]);
    }
    if pa.len() != pb.len() {
        return Ok(DiffOutcome::Diverged(Box::new(Divergence {
            index: shared as u64,
            a_event: pa.get(shared).map(|p| render_payload(p)),
            b_event: pb.get(shared).map(|p| render_payload(p)),
            context: context.iter().map(|p| render_payload(p)).collect(),
            a_total: pa.len() as u64,
            b_total: pb.len() as u64,
        })));
    }
    Ok(DiffOutcome::Identical {
        events: shared as u64,
    })
}
