//! Recording a run into a store, and checkpoint-anchored replay.
//!
//! `record_run` drives a [`fleetio::RunSpec`] end-to-end with a
//! [`StoreSink`] installed, writing a replay anchor (a
//! `fleetio-model` `RunAnchor` container) at every
//! `checkpoint_every`-window boundary.
//!
//! `replay_run` is time travel with an honesty clause. FleetIO's
//! engine state is deliberately not snapshotable (event calendar,
//! slab request state and per-chip timing are live DES structures), so
//! replay re-simulates from `t = 0` — what the anchor buys is *trust*,
//! not wall-clock: the regenerated stream's FNV-1a fingerprint is
//! checked against the anchor at its event boundary (proving the
//! replayed prefix is the recorded prefix without holding both in
//! memory), and from the anchor on every regenerated event is
//! byte-compared against the stored stream up to the target sim-time.
//! Any divergence — nondeterminism, store damage, a changed binary —
//! is reported with its stream index.

use std::any::Any;
use std::io;
use std::path::Path;

use fleetio::RunSpec;
use fleetio_des::hash::Fnv64;
use fleetio_obs::{wire, ObsEvent, ObsSink};

use crate::manifest::Manifest;
use crate::read::{RunStore, StoreError};
use crate::sink::StoreSink;

/// Outcome of [`record_run`].
#[derive(Debug, Clone)]
pub struct RecordReport {
    /// The sealed manifest.
    pub manifest: Manifest,
    /// Decision windows simulated.
    pub windows: u32,
    /// Replay anchors written.
    pub anchors: usize,
}

/// Runs `spec` to completion, streaming every event into a new store at
/// `dir`. Anchors are written after every `spec.checkpoint_every`
/// completed windows (0 disables anchoring).
///
/// # Errors
///
/// Store I/O failure (latched sink errors surface at seal/finish).
pub fn record_run(spec: &RunSpec, dir: &Path, segment_bytes: usize) -> io::Result<RecordReport> {
    let sink = StoreSink::create(
        dir,
        spec.encode(),
        spec.fingerprint(),
        spec.seed,
        spec.window.as_nanos(),
        segment_bytes,
    )?;
    let mut colo = spec.build();
    colo.set_obs_sink(Box::new(sink));
    colo.warm_up(spec.warm_fraction);
    let mut anchors = 0usize;
    for w in 0..spec.windows {
        colo.run_window();
        let completed = w + 1;
        if spec.checkpoint_every > 0
            && completed % spec.checkpoint_every == 0
            && completed < spec.windows
        {
            let at_ns = colo.engine().now().as_nanos();
            let mut sink = downcast_store(colo.take_obs_sink())?;
            sink.anchor(u64::from(completed), at_ns, "")?;
            colo.set_obs_sink(sink);
            anchors += 1;
        }
    }
    let sink = downcast_store(colo.take_obs_sink())?;
    let manifest = sink.finish()?;
    Ok(RecordReport {
        manifest,
        windows: spec.windows,
        anchors,
    })
}

fn downcast_store(sink: Box<dyn ObsSink>) -> io::Result<Box<StoreSink>> {
    sink.into_any()
        .downcast::<StoreSink>()
        .map_err(|_| io::Error::other("engine returned a foreign sink"))
}

/// Outcome of [`replay_run`].
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The requested target sim-time, nanoseconds.
    pub target_ns: u64,
    /// Window of the anchor used (`None`: replayed from the start with
    /// no anchor to check against).
    pub anchor_window: Option<u64>,
    /// Events before the anchor (prefix verified by fingerprint only).
    pub anchor_event_count: u64,
    /// Decision windows re-simulated.
    pub windows_replayed: u32,
    /// Events the replay regenerated.
    pub events_replayed: u64,
    /// Whether the regenerated prefix fingerprint matched the anchor
    /// (vacuously true without an anchor).
    pub prefix_ok: bool,
    /// Events byte-compared against the store from the anchor on.
    pub compared: u64,
    /// Stream index of the first regenerated event that differs from
    /// the stored one, if any.
    pub mismatch: Option<u64>,
}

impl ReplayReport {
    /// Whether the replay reproduced the stored stream exactly.
    pub fn ok(&self) -> bool {
        self.prefix_ok && self.mismatch.is_none()
    }
}

/// Verification sink installed during replay: fingerprints the
/// pre-anchor prefix, byte-compares everything after.
#[derive(Debug)]
struct CheckSink {
    stored: Vec<Vec<u8>>,
    anchor_count: u64,
    anchor_fp: u64,
    fp: Fnv64,
    index: u64,
    prefix_ok: bool,
    compared: u64,
    mismatch: Option<u64>,
    scratch: Vec<u8>,
}

impl ObsSink for CheckSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: ObsEvent) {
        self.scratch.clear();
        wire::encode_event(&ev, &mut self.scratch);
        if self.index < self.anchor_count {
            self.fp.update(&self.scratch);
            if self.index + 1 == self.anchor_count && self.fp.finish() != self.anchor_fp {
                self.prefix_ok = false;
            }
        } else if let Some(stored) = self.stored.get(self.index as usize) {
            self.compared += 1;
            if self.mismatch.is_none() && *stored != self.scratch {
                self.mismatch = Some(self.index);
            }
        }
        self.index += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Replays the stored run up to `target_ns` sim-time and verifies the
/// regenerated stream against the store.
///
/// The nearest anchor at-or-before the target is loaded and
/// cross-checked against the manifest (spec fingerprint, seed, event
/// count); replay then re-simulates windows from a fresh engine until
/// the sim clock covers the target (clamped to the run's length).
///
/// # Errors
///
/// Unsealed or damaged stores, a spec that no longer decodes, or an
/// anchor that contradicts the manifest. A *mismatching stream* is not
/// an error — it is the report's payload.
pub fn replay_run(dir: &Path, target_ns: u64) -> Result<ReplayReport, StoreError> {
    let store = RunStore::open(dir)?;
    let manifest = store.manifest();
    if !manifest.sealed {
        return Err(StoreError::Unusable(
            "store is not sealed (crashed or still recording); replay needs a finished run".into(),
        ));
    }
    let spec = store.spec()?;
    let stored = store.payloads()?;

    let (anchor_window, anchor_count, anchor_fp) = match manifest.nearest_anchor(target_ns) {
        Some(meta) => {
            let path = dir.join(crate::manifest::anchor_file_name(meta.window));
            let anchor = fleetio_model::RunAnchor::load(&path)
                .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
            if anchor.spec_fingerprint != manifest.spec_fingerprint
                || anchor.seed != manifest.seed
                || anchor.event_count != meta.event_count
                || anchor.window != meta.window
                || anchor.at_ns != meta.at_ns
            {
                return Err(StoreError::Corrupt(format!(
                    "anchor {} contradicts the manifest",
                    path.display()
                )));
            }
            (
                Some(anchor.window),
                anchor.event_count,
                anchor.stream_fingerprint,
            )
        }
        None => (None, 0, Fnv64::new().finish()),
    };

    let mut colo = spec.build();
    colo.set_obs_sink(Box::new(CheckSink {
        stored,
        anchor_count,
        anchor_fp,
        fp: Fnv64::new(),
        index: 0,
        prefix_ok: true,
        compared: 0,
        mismatch: None,
        scratch: Vec::with_capacity(128),
    }));
    colo.warm_up(spec.warm_fraction);
    // Warm-up advances the sim clock, so the window count covering the
    // target is not `target / window`; run until the clock reaches it.
    let mut windows_replayed = 0u32;
    while windows_replayed < spec.windows {
        colo.run_window();
        windows_replayed += 1;
        if colo.engine().now().as_nanos() >= target_ns {
            break;
        }
    }
    let check = colo
        .take_obs_sink()
        .into_any()
        .downcast::<CheckSink>()
        .map_err(|_| StoreError::Io("engine returned a foreign sink".into()))?;

    Ok(ReplayReport {
        target_ns,
        anchor_window,
        anchor_event_count: anchor_count,
        windows_replayed,
        events_replayed: check.index,
        prefix_ok: check.prefix_ok,
        compared: check.compared,
        mismatch: check.mismatch,
    })
}
