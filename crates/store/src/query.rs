//! Indexed queries over a run store.
//!
//! A query is an [`EventFilter`] evaluated against the whole stream;
//! the sparse per-segment index lets whole segments be skipped when
//! their sim-time range, tenant bitmap or kind bitmap proves no event
//! inside can match. Skip decisions are conservative by construction —
//! [`EventFilter::may_match_segment`] errs toward reading — so a query
//! always returns exactly the events a full linear scan would.

use std::collections::BTreeMap;

use fleetio_obs::ObsEvent;

use crate::manifest::SegmentMeta;
use crate::read::{RunStore, StoreError};
use crate::sink::tenant_of;

/// Which events a query selects. Empty filter selects everything.
#[derive(Debug, Clone, Default)]
pub struct EventFilter {
    /// Only events attributed to this vSSD id.
    pub tenant: Option<u32>,
    /// Only events with `at >= from_ns`.
    pub from_ns: Option<u64>,
    /// Only events with `at < to_ns` (half-open).
    pub to_ns: Option<u64>,
    /// Only events of this kind ([`ObsEvent::kind_index`]).
    pub kind: Option<u8>,
}

impl EventFilter {
    /// Whether `ev` passes the filter.
    pub fn matches(&self, ev: &ObsEvent) -> bool {
        let at = ev.at().as_nanos();
        if let Some(from) = self.from_ns {
            if at < from {
                return false;
            }
        }
        if let Some(to) = self.to_ns {
            if at >= to {
                return false;
            }
        }
        if let Some(kind) = self.kind {
            if ev.kind_index() != kind {
                return false;
            }
        }
        if let Some(tenant) = self.tenant {
            if tenant_of(ev) != Some(tenant) {
                return false;
            }
        }
        true
    }

    /// Whether the segment described by `meta` could hold a matching
    /// event. `false` is a proof (safe to skip); `true` is a maybe.
    pub fn may_match_segment(&self, meta: &SegmentMeta) -> bool {
        if meta.events == 0 {
            return false;
        }
        if let Some(from) = self.from_ns {
            if meta.max_at_ns < from {
                return false;
            }
        }
        if let Some(to) = self.to_ns {
            if meta.min_at_ns >= to {
                return false;
            }
        }
        if let Some(kind) = self.kind {
            if meta.kind_bits & (1u32 << kind) == 0 {
                return false;
            }
        }
        if let Some(tenant) = self.tenant {
            // Bit collisions (ids ≥ 64) widen the filter, never narrow it.
            if meta.tenant_bits & (1u64 << (tenant % 64)) == 0 {
                return false;
            }
        }
        true
    }
}

/// Events selected by a query, plus how much index skipping helped.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Matching events, in stream order.
    pub events: Vec<ObsEvent>,
    /// Segments actually read and decoded.
    pub segments_scanned: usize,
    /// Segments in the manifest.
    pub segments_total: usize,
}

/// Per-window aggregate of a query's events.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAggregate {
    /// Window index (`at / window_ns`).
    pub window: u64,
    /// Events in the window.
    pub events: u64,
    /// Sum of `bytes` across byte-carrying events in the window.
    pub bytes: u64,
}

/// Runs `filter` over the store, skipping segments the index rules out.
///
/// # Errors
///
/// I/O failure or damage in a segment the query had to read.
pub fn query(store: &RunStore, filter: &EventFilter) -> Result<QueryResult, StoreError> {
    let manifest = store.manifest();
    let mut events = Vec::new();
    let mut segments_scanned = 0usize;
    for meta in &manifest.segments {
        if !filter.may_match_segment(meta) {
            continue;
        }
        segments_scanned += 1;
        for ev in store.segment_events(meta)? {
            if filter.matches(&ev) {
                events.push(ev);
            }
        }
    }
    Ok(QueryResult {
        events,
        segments_scanned,
        segments_total: manifest.segments.len(),
    })
}

/// The payload bytes an event accounts for, for window aggregation.
fn bytes_of(ev: &ObsEvent) -> u64 {
    match *ev {
        ObsEvent::RequestSubmit { bytes, .. }
        | ObsEvent::RequestComplete { bytes, .. }
        | ObsEvent::NandOp { bytes, .. } => bytes,
        ObsEvent::WindowFlush { total_bytes, .. } => total_bytes,
        _ => 0,
    }
}

/// Buckets events into decision windows of `window_ns`.
pub fn aggregate_windows(events: &[ObsEvent], window_ns: u64) -> Vec<WindowAggregate> {
    let window_ns = window_ns.max(1);
    let mut buckets: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for ev in events {
        let w = ev.at().as_nanos() / window_ns;
        let slot = buckets.entry(w).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += bytes_of(ev);
    }
    buckets
        .into_iter()
        .map(|(window, (events, bytes))| WindowAggregate {
            window,
            events,
            bytes,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(min: u64, max: u64, tenants: u64, kinds: u32) -> SegmentMeta {
        SegmentMeta {
            seq: 0,
            events: 10,
            bytes: 100,
            first_event: 0,
            min_at_ns: min,
            max_at_ns: max,
            tenant_bits: tenants,
            kind_bits: kinds,
        }
    }

    #[test]
    fn skip_logic_is_conservative() {
        let m = meta(100, 200, 0b0110, 1 << 8);
        let all = EventFilter::default();
        assert!(all.may_match_segment(&m));
        // Time window misses entirely.
        assert!(!EventFilter {
            to_ns: Some(100),
            ..Default::default()
        }
        .may_match_segment(&m));
        assert!(!EventFilter {
            from_ns: Some(201),
            ..Default::default()
        }
        .may_match_segment(&m));
        // Boundary inclusion: max == from, min < to.
        assert!(EventFilter {
            from_ns: Some(200),
            ..Default::default()
        }
        .may_match_segment(&m));
        assert!(EventFilter {
            to_ns: Some(101),
            ..Default::default()
        }
        .may_match_segment(&m));
        // Tenant and kind bitmaps.
        assert!(!EventFilter {
            tenant: Some(0),
            ..Default::default()
        }
        .may_match_segment(&m));
        assert!(EventFilter {
            tenant: Some(2),
            ..Default::default()
        }
        .may_match_segment(&m));
        assert!(!EventFilter {
            kind: Some(0),
            ..Default::default()
        }
        .may_match_segment(&m));
        assert!(EventFilter {
            kind: Some(8),
            ..Default::default()
        }
        .may_match_segment(&m));
        // Empty segments never match.
        let mut empty = meta(0, u64::MAX, u64::MAX, u32::MAX);
        empty.events = 0;
        assert!(!all.may_match_segment(&empty));
    }

    #[test]
    fn window_aggregation_buckets_by_sim_time() {
        use fleetio_des::SimTime;
        let evs: Vec<ObsEvent> = (0..6u64)
            .map(|i| ObsEvent::Throttle {
                at: SimTime::from_nanos(i * 50),
                channel: 0,
                until: SimTime::from_nanos(i * 50 + 1),
            })
            .collect();
        let agg = aggregate_windows(&evs, 100);
        assert_eq!(agg.len(), 3);
        assert!(agg.iter().all(|w| w.events == 2));
        assert_eq!(agg[0].window, 0);
        assert_eq!(agg[2].window, 2);
    }
}
