//! The run manifest: the store directory's index and provenance record.
//!
//! One `manifest.fiom` per store directory, a `FIOM` container of kind
//! [`PayloadKind::StoreManifest`] so the container framing + CRC are
//! shared with model checkpoints (`fleetio-model verify` can sanity-check
//! a manifest without understanding its payload). The payload carries:
//!
//! * provenance — seed, decision-window length, the serialized
//!   [`fleetio::RunSpec`] blob and its CRC-32 fingerprint,
//! * the per-segment sparse index ([`SegmentMeta`]: event count, byte
//!   size, running first-event index, min/max sim-time, tenant bitmap,
//!   event-kind bitmap) that lets `query` skip segments wholesale,
//! * every replay anchor written during the run ([`AnchorMeta`], the
//!   sim-times of `fleetio-model` checkpoints), and
//! * stream totals (`total_events`, FNV-1a `stream_fingerprint`) plus a
//!   `sealed` flag distinguishing a finished run from a crashed one.
//!
//! The manifest is rewritten via [`fleetio_model::atomic_write`] at every
//! segment seal and anchor, so the on-disk index is never torn and at
//! worst trails the newest (still unsealed) segment.

use std::io;
use std::path::{Path, PathBuf};

use fleetio_model::atomic_write;
use fleetio_model::codec::{
    decode_container, encode_container, Dec, DecodeError, Enc, PayloadKind,
};

/// Store format version carried in the manifest payload.
pub const STORE_VERSION: u32 = 1;

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.fiom";

/// Sparse index entry for one sealed segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment sequence number (also in the segment file's header).
    pub seq: u32,
    /// Events in the segment.
    pub events: u64,
    /// Segment file size in bytes (header + records).
    pub bytes: u64,
    /// Index of the segment's first event in the whole run stream.
    pub first_event: u64,
    /// Minimum event timestamp in the segment, nanoseconds.
    pub min_at_ns: u64,
    /// Maximum event timestamp in the segment, nanoseconds.
    pub max_at_ns: u64,
    /// Tenant bitmap: bit `vssd % 64` is set for every event that names
    /// a vSSD. Collisions (ids ≥ 64) only widen the filter — a query
    /// may read a segment needlessly, never skip one wrongly.
    pub tenant_bits: u64,
    /// Event-kind bitmap: bit [`fleetio_obs::ObsEvent::kind_index`].
    pub kind_bits: u32,
}

impl SegmentMeta {
    /// The segment's file name (`seg-<seq:05>.seg`).
    pub fn file_name(&self) -> String {
        segment_file_name(self.seq)
    }
}

/// The deterministic file name of segment `seq`.
pub fn segment_file_name(seq: u32) -> String {
    format!("seg-{seq:05}.seg")
}

/// The deterministic file name of the anchor taken after `window`.
pub fn anchor_file_name(window: u64) -> String {
    format!("anchor-{window:05}.fiom")
}

/// Manifest entry for one replay anchor written during the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnchorMeta {
    /// Decision windows completed at the anchor.
    pub window: u64,
    /// Simulation time of the anchor, nanoseconds.
    pub at_ns: u64,
    /// Events emitted strictly before the anchor.
    pub event_count: u64,
}

/// The decoded manifest payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Store format version ([`STORE_VERSION`]).
    pub version: u32,
    /// Top-level run seed (from the spec; inlined for `info` output).
    pub seed: u64,
    /// Decision-window length in nanoseconds (window aggregation).
    pub window_ns: u64,
    /// CRC-32 fingerprint of `spec`.
    pub spec_fingerprint: u32,
    /// The serialized [`fleetio::RunSpec`] (opaque at this layer).
    pub spec: Vec<u8>,
    /// Whether the recording finished cleanly (`StoreSink::finish`).
    pub sealed: bool,
    /// Total events across all sealed segments.
    pub total_events: u64,
    /// FNV-1a 64 over every encoded event payload, in stream order.
    pub stream_fingerprint: u64,
    /// Sealed segments, in sequence order.
    pub segments: Vec<SegmentMeta>,
    /// Replay anchors, in window order.
    pub anchors: Vec<AnchorMeta>,
}

impl Manifest {
    /// Encodes the manifest payload (no container framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u32(self.version);
        enc.u64(self.seed);
        enc.u64(self.window_ns);
        enc.u32(self.spec_fingerprint);
        enc.usize(self.spec.len());
        for &b in &self.spec {
            enc.u8(b);
        }
        enc.bool(self.sealed);
        enc.u64(self.total_events);
        enc.u64(self.stream_fingerprint);
        enc.usize(self.segments.len());
        for s in &self.segments {
            enc.u32(s.seq);
            enc.u64(s.events);
            enc.u64(s.bytes);
            enc.u64(s.first_event);
            enc.u64(s.min_at_ns);
            enc.u64(s.max_at_ns);
            enc.u64(s.tenant_bits);
            enc.u32(s.kind_bits);
        }
        enc.usize(self.anchors.len());
        for a in &self.anchors {
            enc.u64(a.window);
            enc.u64(a.at_ns);
            enc.u64(a.event_count);
        }
        enc.into_bytes()
    }

    /// Decodes a payload written by [`Manifest::encode`].
    ///
    /// # Errors
    ///
    /// Truncation, trailing bytes, an unsupported store version or
    /// implausible lengths.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Dec::new(payload);
        let version = dec.u32()?;
        if version != STORE_VERSION {
            return Err(DecodeError::Malformed(format!("store version {version}")));
        }
        let seed = dec.u64()?;
        let window_ns = dec.u64()?;
        let spec_fingerprint = dec.u32()?;
        let spec_len = dec.len(1)?;
        let mut spec = Vec::with_capacity(spec_len);
        for _ in 0..spec_len {
            spec.push(dec.u8()?);
        }
        let sealed = dec.bool()?;
        let total_events = dec.u64()?;
        let stream_fingerprint = dec.u64()?;
        let n_segments = dec.len(8)?;
        let mut segments = Vec::with_capacity(n_segments);
        for _ in 0..n_segments {
            segments.push(SegmentMeta {
                seq: dec.u32()?,
                events: dec.u64()?,
                bytes: dec.u64()?,
                first_event: dec.u64()?,
                min_at_ns: dec.u64()?,
                max_at_ns: dec.u64()?,
                tenant_bits: dec.u64()?,
                kind_bits: dec.u32()?,
            });
        }
        let n_anchors = dec.len(8)?;
        let mut anchors = Vec::with_capacity(n_anchors);
        for _ in 0..n_anchors {
            anchors.push(AnchorMeta {
                window: dec.u64()?,
                at_ns: dec.u64()?,
                event_count: dec.u64()?,
            });
        }
        dec.finish()?;
        Ok(Manifest {
            version,
            seed,
            window_ns,
            spec_fingerprint,
            spec,
            sealed,
            total_events,
            stream_fingerprint,
            segments,
            anchors,
        })
    }

    /// The manifest wrapped in its `FIOM` container.
    pub fn to_container(&self) -> Vec<u8> {
        encode_container(PayloadKind::StoreManifest, &self.encode())
    }

    /// Parses a `FIOM` container holding a manifest.
    ///
    /// # Errors
    ///
    /// Container corruption or a payload of a different kind.
    pub fn from_container(bytes: &[u8]) -> Result<Self, DecodeError> {
        let (kind, payload) = decode_container(bytes)?;
        if kind != PayloadKind::StoreManifest {
            return Err(DecodeError::Malformed(format!(
                "expected store-manifest container, found {}",
                kind.name()
            )));
        }
        Manifest::decode(payload)
    }

    /// Atomically writes the manifest into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failure.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        atomic_write(&dir.join(MANIFEST_FILE), &self.to_container())
    }

    /// Reads and verifies the manifest of the store at `dir`.
    ///
    /// # Errors
    ///
    /// A missing/unreadable file surfaces as `Malformed` with the OS
    /// message; corruption as the underlying decode error.
    pub fn load(dir: &Path) -> Result<Self, DecodeError> {
        let path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&path)
            .map_err(|e| DecodeError::Malformed(format!("cannot read {}: {e}", path.display())))?;
        Manifest::from_container(&bytes)
    }

    /// Path of segment `seq` under `dir`.
    pub fn segment_path(&self, dir: &Path, seq: u32) -> PathBuf {
        dir.join(segment_file_name(seq))
    }

    /// The nearest anchor at-or-before `target_ns`, if any.
    pub fn nearest_anchor(&self, target_ns: u64) -> Option<&AnchorMeta> {
        self.anchors
            .iter()
            .filter(|a| a.at_ns <= target_ns)
            .max_by_key(|a| a.at_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            version: STORE_VERSION,
            seed: 42,
            window_ns: 500_000_000,
            spec_fingerprint: 0xABCD_EF01,
            spec: vec![1, 2, 3, 4, 5],
            sealed: true,
            total_events: 1000,
            stream_fingerprint: 0x1122_3344_5566_7788,
            segments: vec![
                SegmentMeta {
                    seq: 0,
                    events: 600,
                    bytes: 40_000,
                    first_event: 0,
                    min_at_ns: 0,
                    max_at_ns: 900_000_000,
                    tenant_bits: 0b1111,
                    kind_bits: 0b111_1111_1111,
                },
                SegmentMeta {
                    seq: 1,
                    events: 400,
                    bytes: 27_000,
                    first_event: 600,
                    min_at_ns: 900_000_001,
                    max_at_ns: 3_000_000_000,
                    tenant_bits: 0b0011,
                    kind_bits: 0b000_0000_1111,
                },
            ],
            anchors: vec![
                AnchorMeta {
                    window: 2,
                    at_ns: 1_000_000_000,
                    event_count: 640,
                },
                AnchorMeta {
                    window: 4,
                    at_ns: 2_000_000_000,
                    event_count: 800,
                },
            ],
        }
    }

    #[test]
    fn container_round_trip() {
        let m = sample();
        let back = Manifest::from_container(&m.to_container()).expect("fresh manifest decodes");
        assert_eq!(back, m);
    }

    #[test]
    fn nearest_anchor_picks_latest_at_or_before() {
        let m = sample();
        assert_eq!(m.nearest_anchor(999_999_999), None);
        assert_eq!(m.nearest_anchor(1_000_000_000).map(|a| a.window), Some(2));
        assert_eq!(m.nearest_anchor(1_999_999_999).map(|a| a.window), Some(2));
        assert_eq!(m.nearest_anchor(u64::MAX).map(|a| a.window), Some(4));
    }

    #[test]
    fn corruption_never_panics_and_is_rejected() {
        let bytes = sample().to_container();
        for cut in 0..bytes.len() {
            assert!(Manifest::from_container(&bytes[..cut]).is_err());
        }
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x08;
            // The container CRC catches payload flips; header flips are
            // caught by field checks or re-tag to a non-manifest kind.
            assert!(
                Manifest::from_container(&bad).is_err(),
                "flip at byte {byte} decoded"
            );
        }
    }

    #[test]
    fn file_names_are_stable() {
        assert_eq!(segment_file_name(0), "seg-00000.seg");
        assert_eq!(segment_file_name(42), "seg-00042.seg");
        assert_eq!(anchor_file_name(3), "anchor-00003.fiom");
    }
}
