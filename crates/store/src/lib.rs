//! `fleetio-store`: an indexed, deterministic run store for FleetIO.
//!
//! A *run store* is a directory holding one simulation run's complete
//! observability stream as append-only, CRC-framed binary segments,
//! plus a `FIOM` manifest carrying provenance (seed, serialized
//! [`fleetio::RunSpec`], its fingerprint), a sparse per-segment index
//! (min/max sim-time, tenant bitmap, event-kind bitmap) and the
//! sim-time of every replay anchor written during the run.
//!
//! Because the engine is deterministic, the stored byte stream is a
//! *complete, checkable* record:
//!
//! * [`query`](query::query) answers tenant/time-range/kind filters
//!   while skipping whole segments the index rules out — with the
//!   guarantee (conservative bitmaps, closed time ranges) that the
//!   result equals a full linear scan;
//! * [`diff_stores`](diff::diff_stores) compares two same-seed runs
//!   byte-for-byte and pinpoints the first divergent event;
//! * [`replay_run`](run::replay_run) re-simulates to a target sim-time
//!   and proves the regenerated stream is the stored one, using the
//!   nearest anchor's fingerprint for the prefix and byte equality for
//!   the suffix;
//! * [`RunStore::verify`](read::RunStore::verify) survives truncated
//!   or bit-flipped segments, isolating damage and reporting the
//!   sim-time ranges that remain recoverable.
//!
//! Layout: `manifest.fiom`, `seg-<seq:05>.seg`, `anchor-<w:05>.fiom`.
//! All writes go through `fleetio_model::atomic_write`.

pub mod diff;
pub mod manifest;
pub mod query;
pub mod read;
pub mod run;
pub mod sink;

pub use diff::{diff_stores, DiffOutcome, Divergence};
pub use manifest::{
    anchor_file_name, segment_file_name, AnchorMeta, Manifest, SegmentMeta, MANIFEST_FILE,
    STORE_VERSION,
};
pub use query::{aggregate_windows, query, EventFilter, QueryResult, WindowAggregate};
pub use read::{RunStore, SegmentVerify, StoreError, VerifyReport};
pub use run::{record_run, replay_run, RecordReport, ReplayReport};
pub use sink::{tenant_of, StoreSink, DEFAULT_SEGMENT_BYTES};
