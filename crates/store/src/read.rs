//! Reading a run store: open, linear scan, damage-isolating verify.
//!
//! The reader trusts nothing: the manifest container is CRC-verified on
//! open, every segment record is CRC-verified on scan, and damage is
//! *isolated* — a truncated or bit-flipped segment yields its intact
//! prefix plus a damage report, and never hides the other segments or
//! panics. [`RunStore::verify`] cross-checks the scanned reality
//! against the manifest index (event counts, stream fingerprint) and
//! reports the sim-time ranges that remain recoverable.

use std::fmt;
use std::path::{Path, PathBuf};

use fleetio::RunSpec;
use fleetio_des::hash::Fnv64;
use fleetio_obs::wire;
use fleetio_obs::ObsEvent;

use crate::manifest::{Manifest, SegmentMeta, MANIFEST_FILE};

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Host I/O failed.
    Io(String),
    /// A manifest/spec/segment failed validation.
    Corrupt(String),
    /// The operation needs an undamaged (or sealed) store and this one
    /// is not.
    Unusable(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(e) => write!(f, "corrupt store: {e}"),
            StoreError::Unusable(e) => write!(f, "unusable store: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// An opened run store.
#[derive(Debug, Clone)]
pub struct RunStore {
    dir: PathBuf,
    manifest: Manifest,
}

/// Scan outcome of one segment during [`RunStore::verify`].
#[derive(Debug, Clone)]
pub struct SegmentVerify {
    /// Segment sequence number (from the manifest).
    pub seq: u32,
    /// Events recovered from the file.
    pub events_read: u64,
    /// Events the manifest says the segment holds.
    pub events_expected: u64,
    /// Damage found in the file, if any.
    pub damage: Option<String>,
}

impl SegmentVerify {
    /// Whether the segment is fully intact.
    pub fn ok(&self) -> bool {
        self.damage.is_none() && self.events_read == self.events_expected
    }
}

/// Result of [`RunStore::verify`].
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Per-segment outcomes, in sequence order.
    pub segments: Vec<SegmentVerify>,
    /// Sim-time ranges `[min_ns, max_ns]` still fully readable, merged
    /// across runs of consecutive intact segments.
    pub recoverable_ns: Vec<(u64, u64)>,
    /// Whether the manifest says the run finished cleanly.
    pub sealed: bool,
    /// Whole-stream fingerprint check: `Some(true)` when every segment
    /// is intact and the recomputed FNV-1a matches the manifest,
    /// `Some(false)` on mismatch, `None` when damage made the check
    /// impossible.
    pub fingerprint_ok: Option<bool>,
}

impl VerifyReport {
    /// Whether the store is fully intact.
    pub fn clean(&self) -> bool {
        self.sealed && self.fingerprint_ok == Some(true) && self.segments.iter().all(|s| s.ok())
    }
}

impl RunStore {
    /// Opens the store at `dir`, verifying the manifest container.
    ///
    /// # Errors
    ///
    /// Missing/unreadable/corrupt manifest.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let manifest = Manifest::load(dir)
            .map_err(|e| StoreError::Corrupt(format!("{}/{MANIFEST_FILE}: {e}", dir.display())))?;
        Ok(RunStore {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The verified manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Decodes the embedded run spec.
    ///
    /// # Errors
    ///
    /// A spec blob that fails to decode or whose fingerprint disagrees
    /// with the manifest.
    pub fn spec(&self) -> Result<RunSpec, StoreError> {
        let spec = RunSpec::decode(&self.manifest.spec)
            .map_err(|e| StoreError::Corrupt(format!("embedded run spec: {e}")))?;
        if spec.fingerprint() != self.manifest.spec_fingerprint {
            return Err(StoreError::Corrupt(format!(
                "spec fingerprint mismatch: manifest {:#010x}, spec {:#010x}",
                self.manifest.spec_fingerprint,
                spec.fingerprint()
            )));
        }
        Ok(spec)
    }

    /// Reads one segment's raw bytes.
    fn segment_bytes(&self, seq: u32) -> Result<Vec<u8>, StoreError> {
        let path = self.manifest.segment_path(&self.dir, seq);
        std::fs::read(&path).map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))
    }

    /// Decodes one segment strictly: any damage is an error.
    pub fn segment_events(&self, meta: &SegmentMeta) -> Result<Vec<ObsEvent>, StoreError> {
        let bytes = self.segment_bytes(meta.seq)?;
        let (events, damage) = wire::events_in_segment(&bytes);
        match damage {
            Some(d) => Err(StoreError::Corrupt(format!("{}: {d}", meta.file_name()))),
            None => {
                if events.len() as u64 != meta.events {
                    return Err(StoreError::Corrupt(format!(
                        "{}: {} events on disk, manifest says {}",
                        meta.file_name(),
                        events.len(),
                        meta.events
                    )));
                }
                Ok(events)
            }
        }
    }

    /// Every encoded event payload of the whole run, in stream order.
    /// Strict: damage anywhere is an error. This is the byte-exact view
    /// `diff` and `replay` compare against.
    ///
    /// # Errors
    ///
    /// I/O failure, damage, or a segment disagreeing with its index
    /// entry.
    pub fn payloads(&self) -> Result<Vec<Vec<u8>>, StoreError> {
        let mut out = Vec::with_capacity(self.manifest.total_events as usize);
        for meta in &self.manifest.segments {
            let bytes = self.segment_bytes(meta.seq)?;
            let scan = wire::scan_segment(&bytes);
            if let Some(d) = scan.damage {
                return Err(StoreError::Corrupt(format!("{}: {d}", meta.file_name())));
            }
            if scan.records.len() as u64 != meta.events {
                return Err(StoreError::Corrupt(format!(
                    "{}: {} records on disk, manifest says {}",
                    meta.file_name(),
                    scan.records.len(),
                    meta.events
                )));
            }
            for r in scan.records {
                out.push(bytes[r].to_vec());
            }
        }
        Ok(out)
    }

    /// Every event of the whole run, decoded, in stream order. Strict.
    ///
    /// # Errors
    ///
    /// As [`RunStore::payloads`], plus undecodable records.
    pub fn events(&self) -> Result<Vec<ObsEvent>, StoreError> {
        let mut out = Vec::with_capacity(self.manifest.total_events as usize);
        for meta in &self.manifest.segments {
            out.extend(self.segment_events(meta)?);
        }
        Ok(out)
    }

    /// Scans every segment tolerantly, cross-checking the manifest:
    /// never fails on damage, reports it instead.
    pub fn verify(&self) -> VerifyReport {
        let mut segments = Vec::with_capacity(self.manifest.segments.len());
        let mut fp = Fnv64::new();
        let mut all_intact = true;
        for meta in &self.manifest.segments {
            let (events_read, damage) = match self.segment_bytes(meta.seq) {
                Ok(bytes) => {
                    let scan = wire::scan_segment(&bytes);
                    let mut damage = scan.damage.map(|d| d.to_string());
                    if damage.is_none() && scan.seq != Some(meta.seq) {
                        damage = Some(format!(
                            "header sequence {:?} != manifest {}",
                            scan.seq, meta.seq
                        ));
                    }
                    if damage.is_none() {
                        for r in &scan.records {
                            fp.update(&bytes[r.clone()]);
                        }
                    }
                    (scan.records.len() as u64, damage)
                }
                Err(e) => (0, Some(e.to_string())),
            };
            let sv = SegmentVerify {
                seq: meta.seq,
                events_read,
                events_expected: meta.events,
                damage,
            };
            all_intact &= sv.ok();
            segments.push(sv);
        }
        let fingerprint_ok = if all_intact {
            Some(fp.finish() == self.manifest.stream_fingerprint)
        } else {
            None
        };
        // Merge consecutive intact segments into recoverable ranges.
        let mut recoverable_ns = Vec::new();
        let mut open: Option<(u64, u64)> = None;
        for (sv, meta) in segments.iter().zip(&self.manifest.segments) {
            if sv.ok() && meta.events > 0 {
                open = Some(match open {
                    Some((lo, _)) => (lo, meta.max_at_ns),
                    None => (meta.min_at_ns, meta.max_at_ns),
                });
            } else if let Some(range) = open.take() {
                recoverable_ns.push(range);
            }
        }
        if let Some(range) = open {
            recoverable_ns.push(range);
        }
        VerifyReport {
            segments,
            recoverable_ns,
            sealed: self.manifest.sealed,
            fingerprint_ok,
        }
    }
}
