//! The streaming [`StoreSink`]: an [`ObsSink`] that appends a run's
//! event stream to an on-disk segmented store as the simulation runs.
//!
//! Events are binary-encoded ([`fleetio_obs::wire`]), CRC-framed and
//! buffered into a fixed-target-size segment; when the buffer reaches
//! the target the segment is sealed — written via
//! [`fleetio_model::atomic_write`] (tmp + fsync + rename, the only
//! sanctioned file-write path in sim crates) and indexed in the
//! manifest. Alongside the bytes the sink maintains the streaming
//! FNV-1a fingerprint and per-segment sparse-index facts (min/max
//! sim-time, tenant and kind bitmaps).
//!
//! Sinks must never influence the simulation, and `ObsSink::record`
//! returns nothing — so I/O errors are *latched*: the first failure
//! stops all further writes and is surfaced when the recorder calls
//! [`StoreSink::finish`]. A crashed or failed run leaves a manifest
//! with `sealed = false`, which `verify`/`replay` refuse to trust.

use std::any::Any;
use std::io;
use std::path::{Path, PathBuf};

use fleetio_des::hash::Fnv64;
use fleetio_model::RunAnchor;
use fleetio_obs::wire;
use fleetio_obs::{ObsEvent, ObsSink};

use crate::manifest::{anchor_file_name, AnchorMeta, Manifest, SegmentMeta, STORE_VERSION};

/// Default segment target size (256 KiB ≈ a few thousand events).
pub const DEFAULT_SEGMENT_BYTES: usize = 256 * 1024;

/// The vSSD an event is attributed to, if it names one. Shared by the
/// sink's tenant bitmap and the query filter so skip decisions and
/// match decisions can never disagree.
pub fn tenant_of(ev: &ObsEvent) -> Option<u32> {
    match *ev {
        ObsEvent::RequestSubmit { vssd, .. }
        | ObsEvent::RequestAdmit { vssd, .. }
        | ObsEvent::ChipIssue { vssd, .. }
        | ObsEvent::RequestComplete { vssd, .. }
        | ObsEvent::NandOp { vssd, .. }
        | ObsEvent::GcStart { vssd, .. }
        | ObsEvent::GcEnd { vssd, .. }
        | ObsEvent::WindowFlush { vssd, .. } => Some(vssd),
        ObsEvent::GsbTransition { home, .. } => Some(home),
        ObsEvent::SloWindow { tenant, .. } | ObsEvent::FleetMigration { tenant, .. } => {
            Some(tenant)
        }
        ObsEvent::Throttle { .. } | ObsEvent::ModelLifecycle { .. } => None,
    }
}

/// A streaming run-store writer.
#[derive(Debug)]
pub struct StoreSink {
    dir: PathBuf,
    manifest: Manifest,
    seg_target: usize,
    /// Current segment buffer, header included.
    seg_buf: Vec<u8>,
    seg_events: u64,
    seg_min_at: u64,
    seg_max_at: u64,
    seg_tenant_bits: u64,
    seg_kind_bits: u32,
    next_seq: u32,
    total_events: u64,
    fp: Fnv64,
    scratch: Vec<u8>,
    /// First I/O failure; latches the sink into a no-op.
    error: Option<String>,
}

impl StoreSink {
    /// Creates the store directory (if needed) and an empty, unsealed
    /// manifest, then returns a sink ready to record.
    ///
    /// `spec` is the serialized [`fleetio::RunSpec`] (its fingerprint
    /// and the run's seed/window ride into the manifest for provenance
    /// and replay).
    ///
    /// # Errors
    ///
    /// Directory creation or the initial manifest write failing.
    pub fn create(
        dir: &Path,
        spec: Vec<u8>,
        spec_fingerprint: u32,
        seed: u64,
        window_ns: u64,
        segment_bytes: usize,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let manifest = Manifest {
            version: STORE_VERSION,
            seed,
            window_ns,
            spec_fingerprint,
            spec,
            sealed: false,
            total_events: 0,
            stream_fingerprint: 0,
            segments: Vec::new(),
            anchors: Vec::new(),
        };
        manifest.save(dir)?;
        let mut sink = StoreSink {
            dir: dir.to_path_buf(),
            manifest,
            seg_target: segment_bytes.max(wire::SEG_HEADER_LEN + 64),
            seg_buf: Vec::with_capacity(segment_bytes + 256),
            seg_events: 0,
            seg_min_at: u64::MAX,
            seg_max_at: 0,
            seg_tenant_bits: 0,
            seg_kind_bits: 0,
            next_seq: 0,
            total_events: 0,
            fp: Fnv64::new(),
            scratch: Vec::with_capacity(128),
            error: None,
        };
        sink.begin_segment();
        Ok(sink)
    }

    /// Events recorded so far.
    pub fn event_count(&self) -> u64 {
        self.total_events
    }

    /// The streaming FNV-1a fingerprint over all encoded payloads so far.
    pub fn fingerprint(&self) -> u64 {
        self.fp.finish()
    }

    /// The first latched I/O error, if recording has failed.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    fn begin_segment(&mut self) {
        self.seg_buf.clear();
        wire::push_segment_header(&mut self.seg_buf, self.next_seq);
        self.seg_events = 0;
        self.seg_min_at = u64::MAX;
        self.seg_max_at = 0;
        self.seg_tenant_bits = 0;
        self.seg_kind_bits = 0;
    }

    /// Seals the current segment (if it holds any events): atomic write
    /// of the segment file, index entry, manifest rewrite.
    fn seal_segment(&mut self) -> io::Result<()> {
        if self.seg_events == 0 {
            return Ok(());
        }
        let seq = self.next_seq;
        let path = self.dir.join(crate::manifest::segment_file_name(seq));
        fleetio_model::atomic_write(&path, &self.seg_buf)?;
        self.manifest.segments.push(SegmentMeta {
            seq,
            events: self.seg_events,
            bytes: self.seg_buf.len() as u64,
            first_event: self.total_events - self.seg_events,
            min_at_ns: self.seg_min_at,
            max_at_ns: self.seg_max_at,
            tenant_bits: self.seg_tenant_bits,
            kind_bits: self.seg_kind_bits,
        });
        self.manifest.total_events = self.total_events;
        self.manifest.stream_fingerprint = self.fp.finish();
        self.manifest.save(&self.dir)?;
        self.next_seq += 1;
        self.begin_segment();
        Ok(())
    }

    /// Writes a replay anchor at the current stream position: an
    /// `anchor-<window>.fiom` container (via `fleetio-model`) plus a
    /// manifest entry. Call between windows, never mid-window.
    ///
    /// # Errors
    ///
    /// A previously latched failure, or the anchor/manifest write
    /// failing.
    pub fn anchor(&mut self, window: u64, at_ns: u64, model_tag: &str) -> io::Result<RunAnchor> {
        if let Some(e) = &self.error {
            return Err(io::Error::other(e.clone()));
        }
        let anchor = RunAnchor {
            window,
            at_ns,
            event_count: self.total_events,
            stream_fingerprint: self.fp.finish(),
            spec_fingerprint: self.manifest.spec_fingerprint,
            seed: self.manifest.seed,
            model_tag: model_tag.to_string(),
        };
        let path = self.dir.join(anchor_file_name(window));
        anchor.save(&path)?;
        self.manifest.anchors.push(AnchorMeta {
            window,
            at_ns,
            event_count: self.total_events,
        });
        self.manifest.save(&self.dir)?;
        Ok(anchor)
    }

    /// Seals the final segment, marks the manifest sealed and writes it.
    /// Returns the final manifest.
    ///
    /// # Errors
    ///
    /// A latched recording failure or the final writes failing — either
    /// way the on-disk manifest stays `sealed = false`.
    pub fn finish(mut self) -> io::Result<Manifest> {
        if let Some(e) = self.error.take() {
            return Err(io::Error::other(e));
        }
        self.seal_segment()?;
        self.manifest.sealed = true;
        self.manifest.total_events = self.total_events;
        self.manifest.stream_fingerprint = self.fp.finish();
        self.manifest.save(&self.dir)?;
        Ok(self.manifest)
    }
}

impl ObsSink for StoreSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: ObsEvent) {
        if self.error.is_some() {
            return;
        }
        self.scratch.clear();
        wire::encode_event(&ev, &mut self.scratch);
        self.fp.update(&self.scratch);
        let at = ev.at().as_nanos();
        self.seg_min_at = self.seg_min_at.min(at);
        self.seg_max_at = self.seg_max_at.max(at);
        if let Some(t) = tenant_of(&ev) {
            self.seg_tenant_bits |= 1u64 << (t % 64);
        }
        self.seg_kind_bits |= 1u32 << ev.kind_index();
        let scratch = std::mem::take(&mut self.scratch);
        wire::push_record(&mut self.seg_buf, &scratch);
        self.scratch = scratch;
        self.seg_events += 1;
        self.total_events += 1;
        if self.seg_buf.len() >= self.seg_target {
            if let Err(e) = self.seal_segment() {
                self.error = Some(format!("sealing segment {}: {e}", self.next_seq));
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::SimTime;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fleetio-store-sink-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn throttle(n: u64) -> ObsEvent {
        ObsEvent::Throttle {
            at: SimTime::from_nanos(n),
            channel: (n % 4) as u16,
            until: SimTime::from_nanos(n + 10),
        }
    }

    #[test]
    fn records_roll_segments_and_seal() {
        let dir = tmp_dir("roll");
        let mut sink =
            StoreSink::create(&dir, vec![9, 9], 0xAB, 7, 1_000, 256).expect("create sink");
        for i in 0..200u64 {
            sink.record(throttle(i));
        }
        let _ = sink.anchor(1, 150, "").expect("anchor");
        for i in 200..300u64 {
            sink.record(throttle(i));
        }
        let manifest = sink.finish().expect("finish");
        assert!(manifest.sealed);
        assert_eq!(manifest.total_events, 300);
        assert!(manifest.segments.len() > 1, "tiny target must roll");
        let total: u64 = manifest.segments.iter().map(|s| s.events).sum();
        assert_eq!(total, 300);
        // first_event indices partition the stream.
        let mut expect = 0u64;
        for s in &manifest.segments {
            assert_eq!(s.first_event, expect);
            assert_eq!(s.kind_bits, 1 << 8, "throttle kind bit");
            assert_eq!(s.tenant_bits, 0, "throttle names no tenant");
            expect += s.events;
        }
        assert_eq!(manifest.anchors.len(), 1);
        assert_eq!(manifest.anchors[0].event_count, 200);
        // Reload from disk: identical.
        let back = Manifest::load(&dir).expect("manifest reloads");
        assert_eq!(back, manifest);
        // Anchor file verifies via fleetio-model.
        let anchor = RunAnchor::load(&dir.join(anchor_file_name(1))).expect("anchor loads");
        assert_eq!(anchor.event_count, 200);
        assert_eq!(anchor.spec_fingerprint, 0xAB);
        std::fs::remove_dir_all(&dir).ok();
    }
}
