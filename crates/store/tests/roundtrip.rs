//! End-to-end determinism acceptance tests for the run store:
//!
//! * same-seed record twice → `diff` byte-identical (and the on-disk
//!   manifests agree on totals and fingerprints);
//! * perturbed seed → `diff` reports the first divergent event;
//! * indexed `query` returns exactly what a full linear scan returns,
//!   while reading strictly fewer segments;
//! * `replay` from the nearest checkpoint anchor regenerates the
//!   stored stream exactly.

use std::path::PathBuf;

use fleetio::RunSpec;
use fleetio_obs::ObsEvent;
use fleetio_store::{
    diff_stores, query, record_run, replay_run, DiffOutcome, EventFilter, RunStore,
};

/// Small segments force a multi-segment store quickly.
const SEG_BYTES: usize = 32 * 1024;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleetio-store-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn record(tag: &str, seed: u64, windows: u32, every: u32) -> PathBuf {
    let dir = tmp(tag);
    let spec = RunSpec::demo(seed, windows, every);
    let report = record_run(&spec, &dir, SEG_BYTES).expect("record");
    assert!(report.manifest.sealed);
    assert!(report.manifest.total_events > 0);
    dir
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = record("same-a", 11, 2, 1);
    let b = record("same-b", 11, 2, 1);
    let sa = RunStore::open(&a).expect("open a");
    let sb = RunStore::open(&b).expect("open b");
    assert_eq!(
        sa.manifest().stream_fingerprint,
        sb.manifest().stream_fingerprint
    );
    assert_eq!(sa.manifest().total_events, sb.manifest().total_events);
    match diff_stores(&sa, &sb).expect("diff") {
        DiffOutcome::Identical { events } => {
            assert_eq!(events, sa.manifest().total_events);
        }
        DiffOutcome::Diverged(d) => panic!("same-seed runs diverged at {}", d.index),
    }
    std::fs::remove_dir_all(&a).ok();
    std::fs::remove_dir_all(&b).ok();
}

#[test]
fn perturbed_seed_reports_first_divergence() {
    let a = record("perturb-a", 11, 2, 0);
    let b = record("perturb-b", 12, 2, 0);
    let sa = RunStore::open(&a).expect("open a");
    let sb = RunStore::open(&b).expect("open b");
    match diff_stores(&sa, &sb).expect("diff") {
        DiffOutcome::Identical { .. } => panic!("different seeds produced identical streams"),
        DiffOutcome::Diverged(d) => {
            assert!(d.index < sa.manifest().total_events.max(sb.manifest().total_events));
            // The first divergent event is decoded and rendered on at
            // least one side.
            assert!(d.a_event.is_some() || d.b_event.is_some());
            assert_eq!(d.a_total, sa.manifest().total_events);
            assert_eq!(d.b_total, sb.manifest().total_events);
        }
    }
    std::fs::remove_dir_all(&a).ok();
    std::fs::remove_dir_all(&b).ok();
}

#[test]
fn query_matches_linear_scan_and_skips_segments() {
    let dir = record("query", 21, 2, 0);
    let store = RunStore::open(&dir).expect("open");
    assert!(
        store.manifest().segments.len() >= 4,
        "need a multi-segment store to prove skipping"
    );
    let linear = store.events().expect("linear scan");

    let mid_ns = store.manifest().segments[store.manifest().segments.len() / 2].min_at_ns;
    let filters = [
        EventFilter::default(),
        EventFilter {
            tenant: Some(2),
            ..Default::default()
        },
        EventFilter {
            kind: ObsEvent::kind_index_of_tag("request_complete"),
            ..Default::default()
        },
        EventFilter {
            from_ns: Some(mid_ns),
            to_ns: Some(mid_ns + 10_000_000),
            ..Default::default()
        },
        EventFilter {
            tenant: Some(1),
            kind: ObsEvent::kind_index_of_tag("window_flush"),
            from_ns: Some(mid_ns),
            ..Default::default()
        },
    ];
    let mut some_filter_skipped = false;
    for filter in &filters {
        let result = query(&store, filter).expect("query");
        let expect: Vec<&ObsEvent> = linear.iter().filter(|e| filter.matches(e)).collect();
        assert_eq!(
            result.events.len(),
            expect.len(),
            "query != linear scan for {filter:?}"
        );
        for (got, want) in result.events.iter().zip(&expect) {
            assert_eq!(got, *want, "query event mismatch for {filter:?}");
        }
        assert_eq!(result.segments_total, store.manifest().segments.len());
        if result.segments_scanned < result.segments_total {
            some_filter_skipped = true;
        }
    }
    assert!(
        some_filter_skipped,
        "no filter skipped any segment — index is useless"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_from_anchor_regenerates_stored_stream() {
    let dir = record("replay", 31, 4, 2);
    let store = RunStore::open(&dir).expect("open");
    let anchors = &store.manifest().anchors;
    assert!(!anchors.is_empty(), "run must have written an anchor");
    let anchor = &anchors[anchors.len() - 1];
    assert!(anchor.window > 0);

    // Target just past the anchor: replay must pick it, verify the
    // prefix by fingerprint, and byte-compare the rest.
    let report = replay_run(&dir, anchor.at_ns + 1).expect("replay");
    assert_eq!(report.anchor_window, Some(anchor.window));
    assert_eq!(report.anchor_event_count, anchor.event_count);
    assert!(report.prefix_ok, "prefix fingerprint mismatch");
    assert_eq!(report.mismatch, None, "replayed stream diverged");
    assert!(report.compared > 0, "no events were byte-compared");
    assert!(report.ok());

    // Target before any anchor: full byte comparison, still exact.
    let early = replay_run(&dir, 0).expect("replay from start");
    assert_eq!(early.anchor_window, None);
    assert!(early.ok());
    assert!(early.compared > 0);
    std::fs::remove_dir_all(&dir).ok();
}
