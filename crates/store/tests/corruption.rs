//! Corruption robustness: a damaged store must never panic, must
//! isolate the damage to the touched segment, and must report the
//! sim-time ranges that remain recoverable. The `verify` CLI verb must
//! exit 1 on any damage.
//!
//! The property test drives a deterministic LCG over two mutation
//! families — truncation at an arbitrary byte and single-bit flips at
//! an arbitrary offset — applied to an arbitrary segment file.

use std::path::{Path, PathBuf};

use fleetio_des::SimTime;
use fleetio_obs::{ObsEvent, ObsSink};
use fleetio_store::{segment_file_name, RunStore, StoreSink, MANIFEST_FILE};

/// Deterministic pseudo-random stream (no external crates, no host
/// entropy — failures reproduce exactly).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Builds a small synthetic store (no simulation needed: corruption
/// handling is purely a format property) with several segments.
fn build_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleetio-store-cor-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut sink = StoreSink::create(&dir, vec![7, 7, 7], 0x51, 99, 1_000, 2_048).expect("create");
    for i in 0..600u64 {
        sink.record(ObsEvent::Throttle {
            at: SimTime::from_nanos(i * 100),
            channel: (i % 8) as u16,
            until: SimTime::from_nanos(i * 100 + 40),
        });
    }
    let manifest = sink.finish().expect("finish");
    assert!(
        manifest.segments.len() >= 3,
        "need several segments to show isolation"
    );
    dir
}

fn seg_paths(dir: &Path) -> Vec<PathBuf> {
    let store = RunStore::open(dir).expect("open clean store");
    store
        .manifest()
        .segments
        .iter()
        .map(|s| dir.join(segment_file_name(s.seq)))
        .collect()
}

#[test]
fn damaged_segments_are_isolated_never_panic() {
    let dir = build_store("prop");
    let segs = seg_paths(&dir);
    let originals: Vec<Vec<u8>> = segs
        .iter()
        .map(|p| std::fs::read(p).expect("read segment"))
        .collect();
    let clean = RunStore::open(&dir).expect("open").verify();
    assert!(clean.clean(), "freshly written store must verify clean");
    let total_range = (
        clean.recoverable_ns.first().expect("range").0,
        clean.recoverable_ns.last().expect("range").1,
    );

    let mut rng = Lcg(0xF1EE7);
    for round in 0..120 {
        let victim = rng.below(segs.len() as u64) as usize;
        let bytes = &originals[victim];
        let corrupted: Vec<u8> = if rng.below(2) == 0 {
            // Truncate to an arbitrary prefix (possibly empty).
            let cut = rng.below(bytes.len() as u64) as usize;
            bytes[..cut].to_vec()
        } else {
            // Flip one bit anywhere in the file.
            let mut b = bytes.clone();
            let at = rng.below(b.len() as u64) as usize;
            b[at] ^= 1 << rng.below(8);
            b
        };
        std::fs::write(&segs[victim], &corrupted).expect("write corruption");

        let store = RunStore::open(&dir).expect("manifest untouched");
        let report = store.verify();
        assert!(
            !report.clean(),
            "round {round}: corruption of segment {victim} went undetected"
        );
        // Damage is isolated: only the touched segment fails.
        for (i, sv) in report.segments.iter().enumerate() {
            if i != victim {
                assert!(sv.ok(), "round {round}: intact segment {i} misreported");
            }
        }
        assert!(
            !report.segments[victim].ok(),
            "round {round}: victim segment reported intact"
        );
        // With ≥3 segments and one victim, something stays recoverable,
        // and reported ranges never exceed the clean run's span.
        assert!(!report.recoverable_ns.is_empty());
        for &(lo, hi) in &report.recoverable_ns {
            assert!(lo <= hi);
            assert!(lo >= total_range.0 && hi <= total_range.1);
        }
        // Strict readers refuse the damaged store; intact segments
        // still decode individually.
        assert!(store.events().is_err());
        for (i, meta) in store.manifest().segments.iter().enumerate() {
            if i != victim {
                let events = store.segment_events(meta).expect("intact segment decodes");
                assert_eq!(events.len() as u64, meta.events);
            }
        }

        std::fs::write(&segs[victim], bytes).expect("restore segment");
    }
    let healed = RunStore::open(&dir).expect("open").verify();
    assert!(healed.clean(), "restoration must verify clean again");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_manifest_is_a_graceful_error() {
    let dir = build_store("manifest");
    let path = dir.join(MANIFEST_FILE);
    let bytes = std::fs::read(&path).expect("read manifest");
    let mut rng = Lcg(0xBADC0DE);
    for _ in 0..40 {
        let corrupted: Vec<u8> = if rng.below(2) == 0 {
            bytes[..rng.below(bytes.len() as u64) as usize].to_vec()
        } else {
            let mut b = bytes.clone();
            let at = rng.below(b.len() as u64) as usize;
            b[at] ^= 1 << rng.below(8);
            b
        };
        std::fs::write(&path, &corrupted).expect("write corruption");
        match RunStore::open(&dir) {
            // Corruption rejected with an error: the common case.
            Err(_) => {}
            // A kind-byte flip can re-tag the container to another
            // valid payload kind; the typed manifest reader still
            // refuses it, so reaching Ok requires the payload intact.
            Ok(store) => assert_eq!(store.manifest().seed, 99),
        }
    }
    std::fs::write(&path, &bytes).expect("restore manifest");
    assert!(RunStore::open(&dir).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_cli_exits_one_on_damage() {
    let dir = build_store("cli");
    let bin = env!("CARGO_BIN_EXE_fleetio-store");
    let run = |args: &[&str]| {
        std::process::Command::new(bin)
            .args(args)
            .output()
            .expect("run fleetio-store")
    };
    let dir_s = dir.to_str().expect("utf-8 temp path");

    let ok = run(&["verify", dir_s]);
    assert!(ok.status.success(), "clean store must verify with exit 0");

    let victim = seg_paths(&dir).pop().expect("segment");
    let mut bytes = std::fs::read(&victim).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).expect("corrupt");

    let bad = run(&["verify", dir_s]);
    assert_eq!(
        bad.status.code(),
        Some(1),
        "damage must exit 1 (stdout: {})",
        String::from_utf8_lossy(&bad.stdout)
    );
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("DAMAGED") || stdout.contains("SHORT"));
    std::fs::remove_dir_all(&dir).ok();
}
