//! `fleetio-model` CLI: offline checkpoint and registry tooling.
//!
//! ```text
//! fleetio-model inspect <file.ckpt>   # decode and describe one container
//! fleetio-model verify  <file.ckpt>.. # exit 1 if any container is corrupt
//! fleetio-model ls      <registry>    # list a registry directory
//! ```
//!
//! Exit codes: 0 = OK, 1 = at least one corrupt/unreadable checkpoint
//! (`verify`), 2 = usage or I/O error. CI corrupts one byte of a saved
//! checkpoint and asserts `verify` exits nonzero.

use std::process::ExitCode;

use fleetio_model::codec::{decode_container, PayloadKind};
use fleetio_model::{ModelCheckpoint, ModelRegistry, RunAnchor, TypingIndex};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("inspect") => match args.get(2) {
            Some(path) => inspect(path),
            None => usage(),
        },
        Some("verify") if args.len() > 2 => verify(&args[2..]),
        Some("ls") => match args.get(2) {
            Some(dir) => ls(dir),
            None => usage(),
        },
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: fleetio-model inspect <file.ckpt>\n       fleetio-model verify <file.ckpt>...\n       fleetio-model ls <registry-dir>"
    );
    ExitCode::from(2)
}

/// Decoded view of one container, or why it failed.
enum Loaded {
    Model(Box<ModelCheckpoint>),
    Typing(TypingIndex),
    Anchor(RunAnchor),
    /// A store manifest: the payload layout belongs to `fleetio-store`,
    /// so only the container framing + CRC are verified here.
    Manifest {
        payload_len: usize,
    },
}

fn load(path: &str) -> Result<(Loaded, usize), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read: {e}"))?;
    let (kind, payload) = decode_container(&bytes).map_err(|e| e.to_string())?;
    let loaded = match kind {
        PayloadKind::ModelCheckpoint => Loaded::Model(Box::new(
            ModelCheckpoint::decode(payload).map_err(|e| e.to_string())?,
        )),
        PayloadKind::TypingIndex => {
            Loaded::Typing(TypingIndex::decode(payload).map_err(|e| e.to_string())?)
        }
        PayloadKind::RunAnchor => {
            Loaded::Anchor(RunAnchor::decode(payload).map_err(|e| e.to_string())?)
        }
        PayloadKind::StoreManifest => Loaded::Manifest {
            payload_len: payload.len(),
        },
    };
    Ok((loaded, bytes.len()))
}

fn describe(path: &str, loaded: &Loaded, file_len: usize) {
    match loaded {
        Loaded::Model(ckpt) => {
            let t = &ckpt.trainer;
            let actor_params: usize = t
                .policy
                .actor
                .layers
                .iter()
                .map(|l| l.w.len() + l.b.len())
                .sum();
            let critic_params: usize = t
                .policy
                .critic
                .layers
                .iter()
                .map(|l| l.w.len() + l.b.len())
                .sum();
            println!("{path}: model-checkpoint ({file_len} bytes)");
            println!("  tag          {}", ckpt.meta.tag);
            println!("  seed         {}", ckpt.meta.seed);
            println!("  updates      {}", t.updates);
            println!(
                "  actor        {} layers, {actor_params} params",
                t.policy.actor.layers.len()
            );
            println!(
                "  critic       {} layers, {critic_params} params",
                t.policy.critic.layers.len()
            );
            println!("  action dims  {:?}", t.policy.action_dims);
            println!(
                "  obs dim      {} (normalizer count {})",
                t.normalizer.mean.len(),
                t.normalizer.count
            );
            println!(
                "  hyper-params lr {} critic_lr {} gamma {} lambda {} clip {} epochs {} minibatch {} entropy {} grad_clip {}",
                t.cfg.lr,
                t.cfg.critic_lr,
                t.cfg.gamma,
                t.cfg.lambda,
                t.cfg.clip,
                t.cfg.epochs,
                t.cfg.minibatch,
                t.cfg.entropy_coef,
                t.cfg.max_grad_norm
            );
        }
        Loaded::Typing(idx) => {
            println!("{path}: typing-index ({file_len} bytes)");
            println!("  features     {}", idx.scaler_mean.len());
            println!("  clusters     {}", idx.centroids.len());
            println!("  tags         {}", idx.cluster_tags.join(", "));
            println!("  unknown_dist {}", idx.unknown_distance);
        }
        Loaded::Anchor(a) => {
            println!("{path}: run-anchor ({file_len} bytes)");
            println!("  window       {}", a.window);
            println!("  at           {} ns", a.at_ns);
            println!("  events       {}", a.event_count);
            println!("  stream_fp    {:#018x}", a.stream_fingerprint);
            println!("  spec_fp      {:#010x}", a.spec_fingerprint);
            println!("  seed         {}", a.seed);
            if a.model_tag.is_empty() {
                println!("  model_tag    (none)");
            } else {
                println!("  model_tag    {}", a.model_tag);
            }
        }
        Loaded::Manifest { payload_len } => {
            println!("{path}: store-manifest ({file_len} bytes)");
            println!("  payload      {payload_len} bytes (CRC OK)");
            println!("  use `fleetio-store` to query this run");
        }
    }
}

fn inspect(path: &str) -> ExitCode {
    match load(path) {
        Ok((loaded, len)) => {
            describe(path, &loaded, len);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fleetio-model: {path}: {e}");
            ExitCode::from(1)
        }
    }
}

fn verify(paths: &[String]) -> ExitCode {
    let mut bad = 0u32;
    for path in paths {
        match load(path) {
            Ok((loaded, _)) => {
                let what = match loaded {
                    Loaded::Model(ckpt) => format!("model-checkpoint tag={}", ckpt.meta.tag),
                    Loaded::Typing(_) => "typing-index".to_string(),
                    Loaded::Anchor(a) => format!("run-anchor window={}", a.window),
                    Loaded::Manifest { .. } => "store-manifest".to_string(),
                };
                println!("{path}: OK ({what})");
            }
            Err(e) => {
                println!("{path}: CORRUPT ({e})");
                bad += 1;
            }
        }
    }
    if bad == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn ls(dir: &str) -> ExitCode {
    let registry = match ModelRegistry::open(dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleetio-model: {e}");
            return ExitCode::from(2);
        }
    };
    let paths = match registry.ls() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fleetio-model: {e}");
            return ExitCode::from(2);
        }
    };
    if paths.is_empty() {
        println!("{dir}: empty registry");
        return ExitCode::SUCCESS;
    }
    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        match load(&path.to_string_lossy()) {
            Ok((Loaded::Model(ckpt), len)) => println!(
                "  {name:<28} model  tag={} seed={} updates={} ({len} bytes)",
                ckpt.meta.tag, ckpt.meta.seed, ckpt.trainer.updates
            ),
            Ok((Loaded::Typing(idx), len)) => println!(
                "  {name:<28} typing {} clusters -> [{}] ({len} bytes)",
                idx.centroids.len(),
                idx.cluster_tags.join(", ")
            ),
            Ok((Loaded::Anchor(a), len)) => println!(
                "  {name:<28} anchor window={} events={} ({len} bytes)",
                a.window, a.event_count
            ),
            Ok((Loaded::Manifest { .. }, len)) => {
                println!("  {name:<28} store-manifest ({len} bytes)")
            }
            Err(e) => println!("  {name:<28} CORRUPT ({e})"),
        }
    }
    ExitCode::SUCCESS
}
