//! Run-store replay anchors.
//!
//! A [`RunAnchor`] is the checkpoint hook the deterministic run store
//! (`crates/store`) drops at window boundaries while recording a run. It
//! does *not* snapshot engine state — the DES engine's in-flight queues,
//! flash arrays and RNG streams are deliberately not serializable —
//! instead it pins three facts that make checkpoint-anchored replay
//! *verifiable*:
//!
//! * where the run was (`window`, `at_ns`, `event_count`),
//! * what the event stream looked like up to that point
//!   (`stream_fingerprint`, a streaming FNV-1a over the encoded event
//!   payloads), and
//! * what produced it (`seed`, `spec_fingerprint` of the serialized run
//!   spec, and optionally the `fleetio-model` registry tag of a model
//!   checkpoint saved at the same boundary).
//!
//! Replay re-simulates from the spec, hash-checks the prefix against the
//! nearest anchor, and byte-compares the suffix against the stored
//! stream. Anchors ride the same `FIOM` container format as model
//! checkpoints ([`PayloadKind::RunAnchor`]), so `fleetio-model
//! inspect/verify` understands them and a torn write or bit flip is
//! caught by the container CRC before any field is trusted.

use std::io;
use std::path::Path;

use crate::atomic::atomic_write;
use crate::codec::{decode_container, encode_container, Dec, DecodeError, Enc, PayloadKind};

/// A replay anchor recorded at a decision-window boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunAnchor {
    /// Decision windows completed when the anchor was taken.
    pub window: u64,
    /// Simulation time of the anchor, nanoseconds.
    pub at_ns: u64,
    /// Events emitted to the store strictly before the anchor.
    pub event_count: u64,
    /// FNV-1a 64 over the concatenated binary event payloads emitted
    /// strictly before the anchor ([`fleetio_des::hash::Fnv64`]).
    pub stream_fingerprint: u64,
    /// CRC-32 of the serialized run spec this run was recorded from.
    pub spec_fingerprint: u32,
    /// Top-level run seed (redundant with the spec; kept inline so an
    /// anchor is interpretable on its own).
    pub seed: u64,
    /// Registry tag of a model checkpoint saved at the same boundary,
    /// or empty when the run records no model lifecycle.
    pub model_tag: String,
}

impl RunAnchor {
    /// Encodes the anchor payload (no container framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u64(self.window);
        enc.u64(self.at_ns);
        enc.u64(self.event_count);
        enc.u64(self.stream_fingerprint);
        enc.u32(self.spec_fingerprint);
        enc.u64(self.seed);
        enc.str(&self.model_tag);
        enc.into_bytes()
    }

    /// Decodes an anchor payload written by [`RunAnchor::encode`].
    ///
    /// # Errors
    ///
    /// Truncation, trailing bytes or a malformed string field.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Dec::new(payload);
        let anchor = RunAnchor {
            window: dec.u64()?,
            at_ns: dec.u64()?,
            event_count: dec.u64()?,
            stream_fingerprint: dec.u64()?,
            spec_fingerprint: dec.u32()?,
            seed: dec.u64()?,
            model_tag: dec.str()?,
        };
        dec.finish()?;
        Ok(anchor)
    }

    /// The anchor wrapped in its `FIOM` container.
    pub fn to_container(&self) -> Vec<u8> {
        encode_container(PayloadKind::RunAnchor, &self.encode())
    }

    /// Parses a `FIOM` container holding an anchor.
    ///
    /// # Errors
    ///
    /// Container-level corruption (magic/version/CRC) or a payload of a
    /// different kind.
    pub fn from_container(bytes: &[u8]) -> Result<Self, DecodeError> {
        let (kind, payload) = decode_container(bytes)?;
        if kind != PayloadKind::RunAnchor {
            return Err(DecodeError::Malformed(format!(
                "expected run-anchor container, found {}",
                kind.name()
            )));
        }
        RunAnchor::decode(payload)
    }

    /// Atomically writes the anchor container to `path`
    /// (tmp + fsync + rename, the sanctioned [`atomic_write`] path).
    ///
    /// # Errors
    ///
    /// Propagates I/O failure.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, &self.to_container())
    }

    /// Reads and CRC-verifies an anchor container from `path`.
    ///
    /// # Errors
    ///
    /// I/O failure is surfaced as a [`DecodeError::Malformed`] with the
    /// OS message; corruption as the underlying decode error.
    pub fn load(path: &Path) -> Result<Self, DecodeError> {
        let bytes = std::fs::read(path)
            .map_err(|e| DecodeError::Malformed(format!("cannot read {}: {e}", path.display())))?;
        RunAnchor::from_container(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunAnchor {
        RunAnchor {
            window: 12,
            at_ns: 6_000_000_000,
            event_count: 123_456,
            stream_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            spec_fingerprint: 0x1234_5678,
            seed: 42,
            model_tag: "ycsb".to_string(),
        }
    }

    #[test]
    fn container_round_trip() {
        let anchor = sample();
        let bytes = anchor.to_container();
        let back = RunAnchor::from_container(&bytes).expect("fresh anchor decodes");
        assert_eq!(back, anchor);
    }

    #[test]
    fn wrong_kind_and_corruption_rejected() {
        let anchor = sample();
        let wrong = encode_container(PayloadKind::ModelCheckpoint, &anchor.encode());
        assert!(RunAnchor::from_container(&wrong).is_err());
        let bytes = anchor.to_container();
        for cut in 0..bytes.len() {
            assert!(RunAnchor::from_container(&bytes[..cut]).is_err());
        }
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x10;
            assert!(
                RunAnchor::from_container(&bad).is_err(),
                "flip at byte {byte} decoded"
            );
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("fleetio-anchor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("anchor-00012.fiom");
        let anchor = sample();
        anchor.save(&path).expect("save anchor");
        assert_eq!(RunAnchor::load(&path).expect("load anchor"), anchor);
        std::fs::remove_dir_all(&dir).ok();
    }
}
