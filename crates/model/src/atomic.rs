//! Crash-safe file replacement.
//!
//! This is the **only** place in the simulation crates allowed to open a
//! file for writing (enforced by the `atomic-io` audit rule): everything
//! else goes through [`atomic_write`], so a crash mid-save can never
//! leave a half-written checkpoint under the final name. Readers either
//! see the old complete file or the new complete file.
//!
//! The temp name is derived deterministically from the final name (no
//! PIDs, timestamps or random suffixes — the `entropy` audit rule bans
//! ambient randomness). The registry is single-writer by design, so a
//! fixed temp name cannot race with itself.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: write to `<path>.tmp`, fsync,
/// rename over `path`, then fsync the parent directory so the rename
/// itself is durable.
///
/// # Errors
///
/// Any I/O failure from create/write/sync/rename. On error the final
/// file is untouched (a stale `.tmp` may remain; the next save truncates
/// it).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Durability of the rename requires syncing the directory entry.
    // Not every platform supports opening a directory for sync; failure
    // here downgrades durability, not atomicity, so it is best-effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The deterministic temp name used by [`atomic_write`]: `<path>.tmp`.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("fleetio-model-atomic").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir creates");
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch_dir("writes_and_replaces");
        let target = dir.join("a.ckpt");
        atomic_write(&target, b"one").expect("first write succeeds");
        assert_eq!(fs::read(&target).expect("file readable"), b"one");
        atomic_write(&target, b"two-longer").expect("replace succeeds");
        assert_eq!(fs::read(&target).expect("file readable"), b"two-longer");
        // No temp file lingers after a successful write.
        assert!(!tmp_path(&target).exists());
    }

    #[test]
    fn stale_tmp_is_overwritten() {
        let dir = scratch_dir("stale_tmp");
        let target = dir.join("b.ckpt");
        fs::write(tmp_path(&target), b"torn garbage from a crash").expect("stale tmp plants");
        atomic_write(&target, b"fresh").expect("write over stale tmp succeeds");
        assert_eq!(fs::read(&target).expect("file readable"), b"fresh");
        assert!(!tmp_path(&target).exists());
    }

    #[test]
    fn failed_write_leaves_final_file_untouched() {
        let dir = scratch_dir("failed_write");
        let target = dir.join("c.ckpt");
        atomic_write(&target, b"good").expect("seed write succeeds");
        // Writing into a missing directory fails before any rename.
        let bad = dir.join("missing-subdir").join("c.ckpt");
        assert!(atomic_write(&bad, b"never").is_err());
        assert_eq!(fs::read(&target).expect("file readable"), b"good");
    }
}
