//! `fleetio-model`: model lifecycle for the FleetIO reproduction.
//!
//! FleetIO's deployment story (§3.7, Figure 17) separates *pre-training*
//! — one PPO model per workload type, trained offline on representative
//! traces — from *online fine-tuning* against live tenant traffic. This
//! crate provides the machinery between those phases:
//!
//! * [`codec`] — the `FIOM` container: magic + version + payload kind +
//!   length + CRC-32 over a flat little-endian payload. Every float
//!   travels as raw IEEE-754 bits, so checkpoints restore bit-exactly
//!   and any torn write or bit flip is detected before a single field
//!   is interpreted.
//! * [`ModelCheckpoint`] — a complete `PpoTrainer` snapshot (networks,
//!   Adam moments, observation-normalizer statistics, RNG state, update
//!   count, hyper-parameters) plus provenance ([`CheckpointMeta`]: seed
//!   and workload-type tag). Restoring and continuing training is
//!   bit-identical to never having stopped (`tests/determinism.rs`).
//! * [`TypingIndex`] — the serialized §3.4 workload-typing model
//!   (standard scaler + k-means centroids + one registry tag per
//!   cluster) used for nearest-centroid model selection at vSSD attach.
//! * [`ModelRegistry`] — a directory of checkpoints keyed by workload
//!   type, with a `last_good` slot per tag and crash-safe writes via
//!   [`atomic_write`] (the only sanctioned file-writing path in the
//!   simulation crates; see the `atomic-io` audit rule).
//! * [`RunAnchor`] — the run store's replay anchor (`crates/store`):
//!   window position, event count and stream fingerprint pinned at a
//!   decision-window boundary, riding the same `FIOM` container so the
//!   CLI can inspect/verify anchors alongside checkpoints.
//! * [`FineTuneManager`] — guarded online fine-tuning: autosave on a
//!   simulated-time cadence, promote to `last_good` while the windowed
//!   mean reward holds the baseline, roll back when it regresses past a
//!   threshold. Lifecycle transitions emit
//!   [`fleetio_obs::ObsEvent::ModelLifecycle`] events.
//!
//! The `fleetio-model` binary inspects and verifies registries offline:
//! `fleetio-model verify <file>` exits nonzero on any corrupt container,
//! which CI uses to prove corruption detection end to end.

pub mod anchor;
pub mod atomic;
pub mod checkpoint;
pub mod codec;
pub mod finetune;
pub mod registry;

pub use anchor::RunAnchor;
pub use atomic::atomic_write;
pub use checkpoint::{CheckpointMeta, ModelCheckpoint, TypingIndex};
pub use codec::{crc32, decode_container, encode_container, DecodeError, PayloadKind};
pub use finetune::{FineTuneAction, FineTuneConfig, FineTuneManager};
pub use registry::{validate_tag, ModelRegistry, RegistryError};
