//! Guarded online fine-tuning.
//!
//! The paper pre-trains per-workload-type models offline and fine-tunes
//! them online against live traffic (§3.7). Online updates can regress —
//! a burst of unrepresentative windows pushes the policy somewhere worse
//! than the pre-trained baseline — so fine-tuning here is *guarded*:
//!
//! * the trainer autosaves to the registry on a simulated-time cadence,
//!   so a crash loses at most one interval of progress;
//! * a windowed mean of per-update rewards is compared against the best
//!   windowed mean seen so far (the *baseline*); whenever the window
//!   meets the baseline, the current checkpoint is promoted to the
//!   `last_good` slot;
//! * when the window falls below `baseline − regression_threshold`, the
//!   manager rolls the trainer back to `last_good` and keeps training
//!   from there.
//!
//! Every save/load/promote/rollback emits an
//! [`ObsEvent::ModelLifecycle`] into the installed sink, timestamped in
//! simulated time, so lifecycle decisions are visible in the same JSONL
//! stream as the simulator's own events (and equally deterministic).

use std::collections::VecDeque;

use fleetio_des::{SimDuration, SimTime};
use fleetio_obs::sink::{NullSink, ObsSink};
use fleetio_obs::{ModelKind, ObsEvent};
use fleetio_rl::ppo::PpoStats;
use fleetio_rl::PpoTrainer;

use crate::checkpoint::{CheckpointMeta, ModelCheckpoint};
use crate::codec::DecodeError;
use crate::registry::{ModelRegistry, RegistryError};

/// Knobs for [`FineTuneManager`].
#[derive(Debug, Clone, PartialEq)]
pub struct FineTuneConfig {
    /// Simulated-time cadence between automatic checkpoint saves.
    pub autosave_interval: SimDuration,
    /// Number of recent PPO updates whose mean reward forms the guard
    /// window.
    pub reward_window: usize,
    /// Roll back once the window's mean reward drops more than this far
    /// below the baseline.
    pub regression_threshold: f64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            autosave_interval: SimDuration::from_secs(30),
            reward_window: 8,
            regression_threshold: 0.2,
        }
    }
}

impl FineTuneConfig {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.autosave_interval == SimDuration::ZERO {
            return Err("autosave_interval must be positive".into());
        }
        if self.reward_window == 0 {
            return Err("reward_window must be positive".into());
        }
        if !(self.regression_threshold.is_finite() && self.regression_threshold > 0.0) {
            return Err("regression_threshold must be positive and finite".into());
        }
        Ok(())
    }
}

/// What [`FineTuneManager::observe`] did this update, in descending
/// priority (at most one action fires per call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FineTuneAction {
    /// Windowed reward regressed; the trainer was reset to `last_good`.
    RolledBack,
    /// The window met the baseline; current checkpoint promoted to
    /// `last_good` (baseline ratchets up when the window beats it).
    Promoted,
    /// The autosave cadence elapsed; current state saved.
    Autosaved,
    /// Nothing to do.
    None,
}

/// Online fine-tuning with autosave, promote-on-improvement and
/// rollback-on-regression.
#[derive(Debug)]
pub struct FineTuneManager {
    registry: ModelRegistry,
    cfg: FineTuneConfig,
    meta: CheckpointMeta,
    trainer: PpoTrainer,
    window: VecDeque<f64>,
    baseline: Option<f64>,
    last_autosave: SimTime,
    sink: Box<dyn ObsSink>,
}

impl FineTuneManager {
    /// Starts fine-tuning from an in-memory trainer (e.g. fresh from
    /// pre-training), seeding the registry with an initial checkpoint in
    /// both the current and `last_good` slots.
    ///
    /// # Errors
    ///
    /// Invalid config/tag or a registry write failure.
    pub fn from_trainer(
        registry: ModelRegistry,
        meta: CheckpointMeta,
        trainer: PpoTrainer,
        cfg: FineTuneConfig,
        now: SimTime,
    ) -> Result<Self, RegistryError> {
        cfg.validate().map_err(RegistryError::InvalidConfig)?;
        let mut mgr = FineTuneManager {
            registry,
            cfg,
            meta,
            trainer,
            window: VecDeque::new(),
            baseline: None,
            last_autosave: now,
            sink: Box::new(NullSink),
        };
        mgr.save_current()?;
        mgr.registry.promote_last_good(&mgr.meta.tag)?;
        mgr.emit(now, ModelKind::Saved);
        Ok(mgr)
    }

    /// Resumes fine-tuning from the registry's checkpoint for `tag`,
    /// falling back to `last_good` when the current file is missing or
    /// corrupt. Returns the manager plus whether the fallback fired.
    ///
    /// # Errors
    ///
    /// Invalid config/tag, no usable checkpoint, or a checkpoint whose
    /// pieces fail cross-validation in `PpoTrainer::from_state`.
    pub fn resume(
        registry: ModelRegistry,
        tag: &str,
        cfg: FineTuneConfig,
        now: SimTime,
        mut sink: Box<dyn ObsSink>,
    ) -> Result<(Self, bool), RegistryError> {
        cfg.validate().map_err(RegistryError::InvalidConfig)?;
        let (ckpt, fell_back) = registry.load_model_or_last_good(tag)?;
        if fell_back && sink.enabled() {
            sink.record(ObsEvent::ModelLifecycle {
                at: now,
                kind: ModelKind::CorruptDetected,
                tag: tag.to_string(),
                update: 0,
            });
        }
        let trainer = restore(&registry, tag, &ckpt)?;
        let mut mgr = FineTuneManager {
            registry,
            cfg,
            meta: ckpt.meta,
            trainer,
            window: VecDeque::new(),
            baseline: None,
            last_autosave: now,
            sink,
        };
        mgr.emit(now, ModelKind::Loaded);
        Ok((mgr, fell_back))
    }

    /// Installs an observability sink (replacing the current one).
    pub fn set_sink(&mut self, sink: Box<dyn ObsSink>) {
        self.sink = sink;
    }

    /// Removes and returns the sink, leaving a [`NullSink`].
    pub fn take_sink(&mut self) -> Box<dyn ObsSink> {
        std::mem::replace(&mut self.sink, Box::new(NullSink))
    }

    /// The trainer, for running PPO updates between `observe` calls.
    pub fn trainer_mut(&mut self) -> &mut PpoTrainer {
        &mut self.trainer
    }

    /// Read access to the trainer.
    pub fn trainer(&self) -> &PpoTrainer {
        &self.trainer
    }

    /// Checkpoint provenance (seed + tag).
    pub fn meta(&self) -> &CheckpointMeta {
        &self.meta
    }

    /// The current reward baseline, once a full window has formed.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// Feeds the stats of one PPO update into the guard, applying at
    /// most one lifecycle action (rollback > promote > autosave).
    ///
    /// # Errors
    ///
    /// A registry read/write failure, or a corrupt `last_good` at
    /// rollback time.
    pub fn observe(
        &mut self,
        now: SimTime,
        stats: &PpoStats,
    ) -> Result<FineTuneAction, RegistryError> {
        self.window.push_back(stats.mean_reward);
        while self.window.len() > self.cfg.reward_window {
            self.window.pop_front();
        }
        if self.window.len() == self.cfg.reward_window {
            let mean = self.window.iter().sum::<f64>() / self.window.len() as f64;
            match self.baseline {
                Some(base) if mean < base - self.cfg.regression_threshold => {
                    self.rollback(now)?;
                    return Ok(FineTuneAction::RolledBack);
                }
                Some(base) if mean >= base => {
                    self.baseline = Some(mean);
                    self.save_current()?;
                    self.registry.promote_last_good(&self.meta.tag)?;
                    self.last_autosave = now;
                    self.emit(now, ModelKind::Saved);
                    return Ok(FineTuneAction::Promoted);
                }
                None => {
                    // First full window: establish the baseline and pin
                    // the matching weights as last-good.
                    self.baseline = Some(mean);
                    self.save_current()?;
                    self.registry.promote_last_good(&self.meta.tag)?;
                    self.last_autosave = now;
                    self.emit(now, ModelKind::Saved);
                    return Ok(FineTuneAction::Promoted);
                }
                Some(_) => {}
            }
        }
        if now.saturating_since(self.last_autosave) >= self.cfg.autosave_interval {
            self.save_current()?;
            self.last_autosave = now;
            self.emit(now, ModelKind::Saved);
            return Ok(FineTuneAction::Autosaved);
        }
        Ok(FineTuneAction::None)
    }

    fn save_current(&self) -> Result<(), RegistryError> {
        let ckpt = ModelCheckpoint {
            meta: self.meta.clone(),
            trainer: self.trainer.export_state(),
        };
        self.registry.save_model(&ckpt)?;
        Ok(())
    }

    fn rollback(&mut self, now: SimTime) -> Result<(), RegistryError> {
        let ckpt = self.registry.load_last_good(&self.meta.tag)?;
        self.trainer = restore(&self.registry, &self.meta.tag, &ckpt)?;
        self.meta = ckpt.meta;
        // Also reinstate last-good as the current checkpoint so a crash
        // right now resumes from the rolled-back weights.
        self.save_current()?;
        self.window.clear();
        self.last_autosave = now;
        self.emit(now, ModelKind::RolledBack);
        Ok(())
    }

    fn emit(&mut self, now: SimTime, kind: ModelKind) {
        if self.sink.enabled() {
            self.sink.record(ObsEvent::ModelLifecycle {
                at: now,
                kind,
                tag: self.meta.tag.clone(),
                update: self.trainer.updates(),
            });
        }
    }
}

fn restore(
    registry: &ModelRegistry,
    tag: &str,
    ckpt: &ModelCheckpoint,
) -> Result<PpoTrainer, RegistryError> {
    PpoTrainer::from_state(ckpt.trainer.clone()).map_err(|msg| RegistryError::Corrupt {
        path: registry.model_path(tag),
        error: DecodeError::Malformed(msg),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::rng::SmallRng;
    use fleetio_obs::RecordingSink;
    use fleetio_rl::{PpoConfig, PpoPolicy};
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("fleetio-model-finetune")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fresh_trainer(seed: u64) -> PpoTrainer {
        let mut rng = SmallRng::seed_from_u64(seed);
        let policy = PpoPolicy::new(2, &[3], &[4], &mut rng);
        PpoTrainer::new(policy, 2, PpoConfig::default(), seed)
    }

    fn stats(mean_reward: f64) -> PpoStats {
        PpoStats {
            policy_loss: 0.0,
            value_loss: 0.0,
            entropy: 0.0,
            kl: 0.0,
            clip_fraction: 0.0,
            mean_reward,
            samples: 32,
        }
    }

    fn manager(name: &str) -> FineTuneManager {
        let registry = ModelRegistry::open(scratch(name)).expect("registry opens");
        let cfg = FineTuneConfig {
            autosave_interval: SimDuration::from_secs(10),
            reward_window: 2,
            regression_threshold: 0.5,
        };
        FineTuneManager::from_trainer(
            registry,
            CheckpointMeta {
                seed: 5,
                tag: "lc1".to_string(),
            },
            fresh_trainer(5),
            cfg,
            SimTime::ZERO,
        )
        .expect("manager builds")
    }

    #[test]
    fn promotes_then_rolls_back_on_regression() {
        let mut mgr = manager("rollback");
        mgr.set_sink(Box::new(RecordingSink::new()));
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        // Two good windows establish and ratchet the baseline.
        assert_eq!(
            mgr.observe(t(1), &stats(1.0)).expect("observe"),
            FineTuneAction::None
        );
        assert_eq!(
            mgr.observe(t(2), &stats(1.0)).expect("observe"),
            FineTuneAction::Promoted
        );
        assert_eq!(mgr.baseline(), Some(1.0));
        let good_render = format!("{:?}", mgr.trainer().export_state());
        // Simulated divergence: train a bit so current != last_good...
        let snapshot_updates = mgr.trainer().updates();
        // ...then two bad windows breach baseline − threshold.
        assert_eq!(
            mgr.observe(t(3), &stats(0.1)).expect("observe"),
            FineTuneAction::None,
            "window mean 0.55 is within threshold"
        );
        assert_eq!(
            mgr.observe(t(4), &stats(0.1)).expect("observe"),
            FineTuneAction::RolledBack
        );
        // The trainer is bit-identical to the promoted snapshot.
        assert_eq!(format!("{:?}", mgr.trainer().export_state()), good_render);
        assert_eq!(mgr.trainer().updates(), snapshot_updates);
        // The sink saw the rollback.
        let sink = mgr.take_sink();
        let sink = sink
            .into_any()
            .downcast::<RecordingSink>()
            .expect("sink downcasts");
        assert!(sink.events().iter().any(|e| matches!(
            e,
            ObsEvent::ModelLifecycle {
                kind: ModelKind::RolledBack,
                ..
            }
        )));
    }

    #[test]
    fn autosaves_on_cadence() {
        let mut mgr = manager("autosave");
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        // Keep the window from triggering promote/rollback decisions by
        // feeding the baseline value after it forms.
        assert_eq!(
            mgr.observe(t(1), &stats(1.0)).expect("observe"),
            FineTuneAction::None
        );
        assert_eq!(
            mgr.observe(t(2), &stats(1.0)).expect("observe"),
            FineTuneAction::Promoted
        );
        // Window mean 0.9 stays above baseline − 0.5 but below baseline:
        // no promote, no rollback — only the cadence acts.
        assert_eq!(
            mgr.observe(t(5), &stats(0.8)).expect("observe"),
            FineTuneAction::None
        );
        assert_eq!(
            mgr.observe(t(13), &stats(0.8)).expect("observe"),
            FineTuneAction::Autosaved,
            "11s since the promote at t=2 exceeds the 10s cadence"
        );
        assert_eq!(
            mgr.observe(t(14), &stats(0.8)).expect("observe"),
            FineTuneAction::None
        );
    }

    #[test]
    fn resume_falls_back_when_current_corrupt() {
        let name = "resume_fallback";
        let mgr = manager(name);
        let registry = ModelRegistry::open(scratch_keep(name)).expect("registry reopens");
        drop(mgr);
        // Corrupt the current checkpoint on disk.
        let path = registry.model_path("lc1");
        let mut bytes = std::fs::read(&path).expect("checkpoint readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).expect("corruption plants");
        let (mgr, fell_back) = FineTuneManager::resume(
            registry,
            "lc1",
            FineTuneConfig::default(),
            SimTime::ZERO,
            Box::new(RecordingSink::new()),
        )
        .expect("resume recovers via last-good");
        assert!(fell_back);
        let mut mgr = mgr;
        let sink = mgr.take_sink();
        let sink = sink
            .into_any()
            .downcast::<RecordingSink>()
            .expect("sink downcasts");
        let kinds: Vec<&'static str> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                ObsEvent::ModelLifecycle { kind, .. } => Some(kind.tag()),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, ["corrupt_detected", "loaded"]);
    }

    /// Like `scratch` but without wiping the directory (for reopening).
    fn scratch_keep(name: &str) -> PathBuf {
        std::env::temp_dir()
            .join("fleetio-model-finetune")
            .join(name)
    }

    #[test]
    fn config_validation() {
        let mut cfg = FineTuneConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.reward_window = 0;
        assert!(cfg.validate().is_err());
        let cfg = FineTuneConfig {
            regression_threshold: f64::NAN,
            ..FineTuneConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = FineTuneConfig {
            autosave_interval: SimDuration::ZERO,
            ..FineTuneConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
