//! Checkpoint payloads: the PPO trainer snapshot and the typing index.
//!
//! Both payloads are plain data — no handles into live simulators — so a
//! checkpoint written on one host decodes on any other. Field order on
//! the wire is fixed; see each `encode` method for the layout. Restoring
//! runs every validation in the component `from_state` constructors, so
//! a payload that passes the container CRC can still be rejected here if
//! its pieces are mutually inconsistent.

use fleetio_ml::{Activation, AdamState, DenseState, MlpState};
use fleetio_rl::ppo::TrainerState;
use fleetio_rl::{NormalizerState, PolicyState, PpoConfig};

use crate::codec::{Dec, DecodeError, Enc};

/// Training provenance stored alongside the trainer state.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointMeta {
    /// Seed of the run that produced this model.
    pub seed: u64,
    /// Workload-type tag the model was trained for (registry key,
    /// `[a-z0-9_-]`, e.g. `lc1`).
    pub tag: String,
}

/// A complete, restorable PPO trainer checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCheckpoint {
    /// Provenance: seed and workload-type tag.
    pub meta: CheckpointMeta,
    /// Everything `PpoTrainer::from_state` needs to resume bit-identically.
    pub trainer: TrainerState,
}

impl ModelCheckpoint {
    /// Serializes the checkpoint payload (container framing is applied by
    /// the registry/CLI via [`crate::codec::encode_container`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.meta.seed);
        e.str(&self.meta.tag);
        encode_trainer(&mut e, &self.trainer);
        e.into_bytes()
    }

    /// Deserializes a checkpoint payload, consuming every byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation, trailing bytes, or any field that
    /// fails structural validation.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Dec::new(payload);
        let seed = d.u64()?;
        let tag = d.str()?;
        let trainer = decode_trainer(&mut d)?;
        d.finish()?;
        Ok(ModelCheckpoint {
            meta: CheckpointMeta { seed, tag },
            trainer,
        })
    }
}

fn encode_mlp(e: &mut Enc, s: &MlpState) {
    e.usize(s.layers.len());
    for layer in &s.layers {
        e.usize(layer.in_dim);
        e.usize(layer.out_dim);
        e.u8(layer.act.tag());
        e.f32s(&layer.w);
        e.f32s(&layer.b);
    }
}

fn decode_mlp(d: &mut Dec<'_>) -> Result<MlpState, DecodeError> {
    // Each layer needs at least dims + act + two length prefixes.
    let n = d.len(8 + 8 + 1 + 8 + 8)?;
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        let in_dim = d.usize()?;
        let out_dim = d.usize()?;
        let act = Activation::from_tag(d.u8()?)
            .map_err(|t| DecodeError::Malformed(format!("activation tag {t}")))?;
        let w = d.f32s()?;
        let b = d.f32s()?;
        layers.push(DenseState {
            in_dim,
            out_dim,
            act,
            w,
            b,
        });
    }
    Ok(MlpState { layers })
}

fn encode_adam(e: &mut Enc, s: &AdamState) {
    e.f32(s.lr);
    e.f32(s.beta1);
    e.f32(s.beta2);
    e.f32(s.eps);
    e.f32s(&s.m);
    e.f32s(&s.v);
    e.u64(s.t);
}

fn decode_adam(d: &mut Dec<'_>) -> Result<AdamState, DecodeError> {
    Ok(AdamState {
        lr: d.f32()?,
        beta1: d.f32()?,
        beta2: d.f32()?,
        eps: d.f32()?,
        m: d.f32s()?,
        v: d.f32s()?,
        t: d.u64()?,
    })
}

fn encode_trainer(e: &mut Enc, s: &TrainerState) {
    encode_mlp(e, &s.policy.actor);
    encode_mlp(e, &s.policy.critic);
    e.usize(s.policy.action_dims.len());
    for &dim in &s.policy.action_dims {
        e.usize(dim);
    }
    encode_adam(e, &s.actor_opt);
    encode_adam(e, &s.critic_opt);
    e.f32(s.cfg.lr);
    e.f32(s.cfg.critic_lr);
    e.f64(s.cfg.gamma);
    e.f64(s.cfg.lambda);
    e.f64(s.cfg.clip);
    e.usize(s.cfg.epochs);
    e.usize(s.cfg.minibatch);
    e.f64(s.cfg.entropy_coef);
    e.f32(s.cfg.max_grad_norm);
    for &word in &s.rng {
        e.u64(word);
    }
    e.u64(s.updates);
    e.f64s(&s.normalizer.mean);
    e.f64s(&s.normalizer.m2);
    e.u64(s.normalizer.count);
    e.bool(s.normalizer.frozen);
    e.f64(s.normalizer.clip);
}

fn decode_trainer(d: &mut Dec<'_>) -> Result<TrainerState, DecodeError> {
    let actor = decode_mlp(d)?;
    let critic = decode_mlp(d)?;
    let n_heads = d.len(8)?;
    let mut action_dims = Vec::with_capacity(n_heads);
    for _ in 0..n_heads {
        action_dims.push(d.usize()?);
    }
    let actor_opt = decode_adam(d)?;
    let critic_opt = decode_adam(d)?;
    let cfg = PpoConfig {
        lr: d.f32()?,
        critic_lr: d.f32()?,
        gamma: d.f64()?,
        lambda: d.f64()?,
        clip: d.f64()?,
        epochs: d.usize()?,
        minibatch: d.usize()?,
        entropy_coef: d.f64()?,
        max_grad_norm: d.f32()?,
    };
    let rng = [d.u64()?, d.u64()?, d.u64()?, d.u64()?];
    let updates = d.u64()?;
    let normalizer = NormalizerState {
        mean: d.f64s()?,
        m2: d.f64s()?,
        count: d.u64()?,
        frozen: d.bool()?,
        clip: d.f64()?,
    };
    Ok(TrainerState {
        policy: PolicyState {
            actor,
            critic,
            action_dims,
        },
        actor_opt,
        critic_opt,
        cfg,
        rng,
        updates,
        normalizer,
    })
}

/// The workload-typing index: everything `fleetio`'s k-means typing model
/// needs to classify a new vSSD at attach time and map the result onto a
/// registry tag.
///
/// Mirrors `fleetio::typing::TypingModel` (§3.4 of the paper) without
/// depending on the `fleetio` crate: the scaler parameters, the k-means
/// centroids (in scaled space) and one registry tag per cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct TypingIndex {
    /// Per-feature means of the standardizing scaler.
    pub scaler_mean: Vec<f64>,
    /// Per-feature standard deviations of the scaler.
    pub scaler_std: Vec<f64>,
    /// K-means centroids in scaled feature space, one per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Registry tag per cluster (same order as `centroids`).
    pub cluster_tags: Vec<String>,
    /// A sample whose *squared* distance to every centroid (scaled
    /// space) exceeds this is declared unknown — the same squared-space
    /// semantics as `fleetio::typing::TypingModel`.
    pub unknown_distance: f64,
}

impl TypingIndex {
    /// Structural validation shared by constructors and `decode`.
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        let dim = self.scaler_mean.len();
        if dim == 0 {
            return Err("typing index has zero feature dimensions".into());
        }
        if self.scaler_std.len() != dim {
            return Err(format!(
                "scaler mean/std disagree: {dim} vs {}",
                self.scaler_std.len()
            ));
        }
        if self.centroids.is_empty() {
            return Err("typing index has no centroids".into());
        }
        if self.cluster_tags.len() != self.centroids.len() {
            return Err(format!(
                "{} centroids but {} cluster tags",
                self.centroids.len(),
                self.cluster_tags.len()
            ));
        }
        for c in &self.centroids {
            if c.len() != dim {
                return Err(format!("centroid dim {} != feature dim {dim}", c.len()));
            }
        }
        if !(self.unknown_distance.is_finite() && self.unknown_distance > 0.0) {
            return Err("unknown_distance must be positive and finite".into());
        }
        Ok(())
    }

    /// Nearest-centroid selection: scales `features` (raw log-feature
    /// space, same as `fleetio::typing` uses) and returns the tag of the
    /// closest centroid, or `None` when the sample's squared distance to
    /// every centroid exceeds `unknown_distance`. Mirrors
    /// `TypingModel::classify` exactly (same zero-variance guard, same
    /// squared-distance threshold) so registry selection and in-process
    /// classification never disagree.
    pub fn select(&self, features: &[f64]) -> Option<&str> {
        if features.len() != self.scaler_mean.len() {
            return None;
        }
        let scaled: Vec<f64> = features
            .iter()
            .zip(self.scaler_mean.iter().zip(&self.scaler_std))
            .map(|(x, (m, s))| if *s > 1e-12 { (x - m) / s } else { 0.0 })
            .collect();
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in self.centroids.iter().enumerate() {
            let d2: f64 = scaled.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
            if best.is_none_or(|(_, bd)| d2 < bd) {
                best = Some((i, d2));
            }
        }
        let (idx, d2) = best?;
        if d2 > self.unknown_distance {
            return None;
        }
        Some(&self.cluster_tags[idx])
    }

    /// Serializes the typing-index payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.f64s(&self.scaler_mean);
        e.f64s(&self.scaler_std);
        e.usize(self.centroids.len());
        for c in &self.centroids {
            e.f64s(c);
        }
        e.usize(self.cluster_tags.len());
        for t in &self.cluster_tags {
            e.str(t);
        }
        e.f64(self.unknown_distance);
        e.into_bytes()
    }

    /// Deserializes and validates a typing-index payload.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation, trailing bytes, or a structurally
    /// invalid index.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Dec::new(payload);
        let scaler_mean = d.f64s()?;
        let scaler_std = d.f64s()?;
        let n = d.len(8)?;
        let mut centroids = Vec::with_capacity(n);
        for _ in 0..n {
            centroids.push(d.f64s()?);
        }
        let n = d.len(8)?;
        let mut cluster_tags = Vec::with_capacity(n);
        for _ in 0..n {
            cluster_tags.push(d.str()?);
        }
        let unknown_distance = d.f64()?;
        d.finish()?;
        let index = TypingIndex {
            scaler_mean,
            scaler_std,
            centroids,
            cluster_tags,
            unknown_distance,
        };
        index.validate().map_err(DecodeError::Malformed)?;
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::rng::SmallRng;
    use fleetio_rl::env::{MultiAgentEnv, StepResult};
    use fleetio_rl::{PpoPolicy, PpoTrainer};

    /// Tiny deterministic two-agent bandit env for building a real
    /// trainer to snapshot.
    struct ToyEnv {
        steps: usize,
    }

    impl MultiAgentEnv for ToyEnv {
        fn n_agents(&self) -> usize {
            2
        }
        fn obs_dim(&self) -> usize {
            2
        }
        fn action_dims(&self) -> Vec<usize> {
            vec![3]
        }
        fn reset(&mut self) -> Vec<Vec<f32>> {
            self.steps = 0;
            vec![vec![1.0, 0.0], vec![0.0, 1.0]]
        }
        fn step(&mut self, actions: &[Vec<usize>]) -> StepResult {
            self.steps += 1;
            let rewards = actions
                .iter()
                .enumerate()
                .map(|(i, a)| if a[0] == i { 1.0 } else { 0.0 })
                .collect();
            StepResult {
                observations: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
                rewards,
                done: self.steps >= 6,
            }
        }
    }

    fn trained_state() -> TrainerState {
        let mut rng = SmallRng::seed_from_u64(11);
        let policy = PpoPolicy::new(2, &[3], &[8], &mut rng);
        let mut trainer = PpoTrainer::new(policy, 2, PpoConfig::default(), 11);
        let mut env = ToyEnv { steps: 0 };
        for _ in 0..2 {
            trainer.train_iteration(&mut env, 32);
        }
        trainer.export_state()
    }

    #[test]
    fn model_checkpoint_roundtrips_bit_exact() {
        let ckpt = ModelCheckpoint {
            meta: CheckpointMeta {
                seed: 0xFEED,
                tag: "lc1".to_string(),
            },
            trainer: trained_state(),
        };
        let bytes = ckpt.encode();
        let back = ModelCheckpoint::decode(&bytes).expect("fresh checkpoint decodes");
        // Debug rendering compares every f32/f64 bit-exactly.
        assert_eq!(format!("{ckpt:?}"), format!("{back:?}"));
    }

    #[test]
    fn model_checkpoint_rejects_truncation_and_trailing() {
        let ckpt = ModelCheckpoint {
            meta: CheckpointMeta {
                seed: 1,
                tag: "bi".to_string(),
            },
            trainer: trained_state(),
        };
        let bytes = ckpt.encode();
        assert!(ModelCheckpoint::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes;
        long.push(0);
        assert!(matches!(
            ModelCheckpoint::decode(&long),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    fn sample_index() -> TypingIndex {
        TypingIndex {
            scaler_mean: vec![1.0, 2.0],
            scaler_std: vec![0.5, 1.0],
            centroids: vec![vec![-1.0, 0.0], vec![1.0, 0.0]],
            cluster_tags: vec!["lc1".to_string(), "bi".to_string()],
            unknown_distance: 2.0,
        }
    }

    #[test]
    fn typing_index_roundtrips() {
        let idx = sample_index();
        let back = TypingIndex::decode(&idx.encode()).expect("fresh index decodes");
        assert_eq!(idx, back);
    }

    #[test]
    fn typing_index_select_nearest_and_unknown() {
        let idx = sample_index();
        // Raw [0.5, 2.0] scales to [-1, 0]: exactly centroid 0.
        assert_eq!(idx.select(&[0.5, 2.0]), Some("lc1"));
        // Raw [1.5, 2.0] scales to [1, 0]: exactly centroid 1.
        assert_eq!(idx.select(&[1.5, 2.0]), Some("bi"));
        // Far away in scaled space: unknown.
        assert_eq!(idx.select(&[100.0, 2.0]), None);
        // Wrong dimensionality: unknown.
        assert_eq!(idx.select(&[0.5]), None);
    }

    #[test]
    fn typing_index_validate_rejects_inconsistencies() {
        let mut bad = sample_index();
        bad.cluster_tags.pop();
        assert!(bad.validate().is_err());
        let mut bad = sample_index();
        bad.centroids[0].pop();
        assert!(bad.validate().is_err());
        let mut bad = sample_index();
        bad.unknown_distance = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = sample_index();
        bad.scaler_std.push(1.0);
        assert!(TypingIndex::decode(&bad.encode()).is_err());
    }
}
