//! The on-disk model registry.
//!
//! A registry is one directory of `FIOM` containers:
//!
//! ```text
//! registry/
//!   typing.ckpt          # TypingIndex: scaler + centroids + tag per cluster
//!   lc1.ckpt             # current checkpoint for workload type "lc1"
//!   lc1.last_good.ckpt   # last checkpoint that met the reward baseline
//!   bi.ckpt
//!   ...
//! ```
//!
//! Checkpoints are keyed by workload-type tag (`[a-z0-9_-]`, at most 64
//! characters — the same alphabet `fleetio-obs` JSONL emits unescaped).
//! At vSSD attach time, [`ModelRegistry::select`] runs nearest-centroid
//! classification over the stored typing index and names the tag to
//! warm-start from. All writes go through [`crate::atomic_write`]; loads
//! verify the container CRC before any field is interpreted.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::atomic::atomic_write;
use crate::checkpoint::{ModelCheckpoint, TypingIndex};
use crate::codec::{decode_container, encode_container, DecodeError, PayloadKind};

/// Why a registry operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Filesystem failure (message includes the path).
    Io(String),
    /// The file exists but its container or payload is invalid.
    Corrupt {
        /// File that failed to decode.
        path: PathBuf,
        /// Why it failed.
        error: DecodeError,
    },
    /// No checkpoint stored under this tag (or no typing index).
    Missing(PathBuf),
    /// Tag violates the registry key alphabet.
    InvalidTag(String),
    /// A fine-tuning configuration failed validation.
    InvalidConfig(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(msg) => write!(f, "registry I/O error: {msg}"),
            RegistryError::Corrupt { path, error } => {
                write!(f, "corrupt checkpoint {}: {error}", path.display())
            }
            RegistryError::Missing(path) => write!(f, "no checkpoint at {}", path.display()),
            RegistryError::InvalidTag(tag) => write!(
                f,
                "invalid registry tag {tag:?}: need 1..=64 chars of [a-z0-9_-]"
            ),
            RegistryError::InvalidConfig(msg) => write!(f, "invalid fine-tune config: {msg}"),
        }
    }
}

fn io_err(path: &Path, e: &io::Error) -> RegistryError {
    RegistryError::Io(format!("{}: {e}", path.display()))
}

/// Validates a registry tag: 1..=64 characters of `[a-z0-9_-]`.
///
/// # Errors
///
/// [`RegistryError::InvalidTag`] otherwise.
pub fn validate_tag(tag: &str) -> Result<(), RegistryError> {
    let ok = !tag.is_empty()
        && tag.len() <= 64
        && tag
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(RegistryError::InvalidTag(tag.to_string()))
    }
}

/// A directory of checkpoints keyed by workload-type tag.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    dir: PathBuf,
}

impl ModelRegistry {
    /// Opens (creating if necessary) a registry directory.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, &e))?;
        Ok(ModelRegistry { dir })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the current checkpoint for `tag`.
    pub fn model_path(&self, tag: &str) -> PathBuf {
        self.dir.join(format!("{tag}.ckpt"))
    }

    /// Path of the last-good checkpoint for `tag`.
    pub fn last_good_path(&self, tag: &str) -> PathBuf {
        self.dir.join(format!("{tag}.last_good.ckpt"))
    }

    /// Path of the typing index.
    pub fn typing_path(&self) -> PathBuf {
        self.dir.join("typing.ckpt")
    }

    /// Atomically writes `ckpt` as the current checkpoint for its tag.
    ///
    /// # Errors
    ///
    /// Invalid tag or filesystem failure.
    pub fn save_model(&self, ckpt: &ModelCheckpoint) -> Result<PathBuf, RegistryError> {
        validate_tag(&ckpt.meta.tag)?;
        let path = self.model_path(&ckpt.meta.tag);
        let bytes = encode_container(PayloadKind::ModelCheckpoint, &ckpt.encode());
        atomic_write(&path, &bytes).map_err(|e| io_err(&path, &e))?;
        Ok(path)
    }

    /// Copies the current checkpoint for `tag` over the last-good slot
    /// (atomically, and only after re-verifying its checksum — a corrupt
    /// current file must never be promoted).
    ///
    /// # Errors
    ///
    /// Missing or corrupt current checkpoint, or filesystem failure.
    pub fn promote_last_good(&self, tag: &str) -> Result<PathBuf, RegistryError> {
        validate_tag(tag)?;
        let src = self.model_path(tag);
        let bytes = read_ckpt_bytes(&src)?;
        verify_model_bytes(&src, &bytes)?;
        let dst = self.last_good_path(tag);
        atomic_write(&dst, &bytes).map_err(|e| io_err(&dst, &e))?;
        Ok(dst)
    }

    /// Loads and fully validates the current checkpoint for `tag`.
    ///
    /// # Errors
    ///
    /// Missing file, corrupt container/payload, or invalid tag.
    pub fn load_model(&self, tag: &str) -> Result<ModelCheckpoint, RegistryError> {
        validate_tag(tag)?;
        load_model_file(&self.model_path(tag))
    }

    /// Loads the last-good checkpoint for `tag`.
    ///
    /// # Errors
    ///
    /// Missing file, corrupt container/payload, or invalid tag.
    pub fn load_last_good(&self, tag: &str) -> Result<ModelCheckpoint, RegistryError> {
        validate_tag(tag)?;
        load_model_file(&self.last_good_path(tag))
    }

    /// Loads the current checkpoint, falling back to last-good when the
    /// current one is missing or corrupt. Returns the checkpoint plus
    /// whether the fallback fired.
    ///
    /// # Errors
    ///
    /// The *primary* error when the fallback also fails (so callers see
    /// why the preferred file was unusable).
    pub fn load_model_or_last_good(
        &self,
        tag: &str,
    ) -> Result<(ModelCheckpoint, bool), RegistryError> {
        validate_tag(tag)?;
        match load_model_file(&self.model_path(tag)) {
            Ok(ckpt) => Ok((ckpt, false)),
            Err(primary) => match load_model_file(&self.last_good_path(tag)) {
                Ok(ckpt) => Ok((ckpt, true)),
                Err(_) => Err(primary),
            },
        }
    }

    /// Atomically writes the typing index.
    ///
    /// # Errors
    ///
    /// Structural validation failure or filesystem failure.
    pub fn save_typing(&self, index: &TypingIndex) -> Result<PathBuf, RegistryError> {
        index.validate().map_err(|msg| RegistryError::Corrupt {
            path: self.typing_path(),
            error: DecodeError::Malformed(msg),
        })?;
        for tag in &index.cluster_tags {
            validate_tag(tag)?;
        }
        let path = self.typing_path();
        let bytes = encode_container(PayloadKind::TypingIndex, &index.encode());
        atomic_write(&path, &bytes).map_err(|e| io_err(&path, &e))?;
        Ok(path)
    }

    /// Loads and validates the typing index.
    ///
    /// # Errors
    ///
    /// Missing file or corrupt container/payload.
    pub fn load_typing(&self) -> Result<TypingIndex, RegistryError> {
        let path = self.typing_path();
        let bytes = read_ckpt_bytes(&path)?;
        let (kind, payload) = decode_container(&bytes).map_err(|error| RegistryError::Corrupt {
            path: path.clone(),
            error,
        })?;
        if kind != PayloadKind::TypingIndex {
            return Err(RegistryError::Corrupt {
                path,
                error: DecodeError::Malformed(format!(
                    "expected typing index, found {}",
                    kind.name()
                )),
            });
        }
        TypingIndex::decode(payload).map_err(|error| RegistryError::Corrupt { path, error })
    }

    /// Classifies raw log-features via the stored typing index and
    /// returns the registry tag to warm-start from (`None` = unknown
    /// workload, train from scratch).
    ///
    /// # Errors
    ///
    /// Missing or corrupt typing index.
    pub fn select(&self, features: &[f64]) -> Result<Option<String>, RegistryError> {
        let index = self.load_typing()?;
        Ok(index.select(features).map(str::to_string))
    }

    /// All `*.ckpt` files in the registry, sorted by file name.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the directory cannot be read.
    pub fn ls(&self) -> Result<Vec<PathBuf>, RegistryError> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, &e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("ckpt") {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }
}

fn read_ckpt_bytes(path: &Path) -> Result<Vec<u8>, RegistryError> {
    match fs::read(path) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            Err(RegistryError::Missing(path.to_path_buf()))
        }
        Err(e) => Err(io_err(path, &e)),
    }
}

fn verify_model_bytes(path: &Path, bytes: &[u8]) -> Result<ModelCheckpoint, RegistryError> {
    let (kind, payload) = decode_container(bytes).map_err(|error| RegistryError::Corrupt {
        path: path.to_path_buf(),
        error,
    })?;
    if kind != PayloadKind::ModelCheckpoint {
        return Err(RegistryError::Corrupt {
            path: path.to_path_buf(),
            error: DecodeError::Malformed(format!(
                "expected model checkpoint, found {}",
                kind.name()
            )),
        });
    }
    ModelCheckpoint::decode(payload).map_err(|error| RegistryError::Corrupt {
        path: path.to_path_buf(),
        error,
    })
}

fn load_model_file(path: &Path) -> Result<ModelCheckpoint, RegistryError> {
    let bytes = read_ckpt_bytes(path)?;
    verify_model_bytes(path, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointMeta;
    use fleetio_des::rng::SmallRng;
    use fleetio_rl::{PpoConfig, PpoPolicy, PpoTrainer};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("fleetio-model-registry")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ckpt(tag: &str, seed: u64) -> ModelCheckpoint {
        let mut rng = SmallRng::seed_from_u64(seed);
        let policy = PpoPolicy::new(2, &[3], &[4], &mut rng);
        let trainer = PpoTrainer::new(policy, 2, PpoConfig::default(), seed);
        ModelCheckpoint {
            meta: CheckpointMeta {
                seed,
                tag: tag.to_string(),
            },
            trainer: trainer.export_state(),
        }
    }

    fn index() -> TypingIndex {
        TypingIndex {
            scaler_mean: vec![0.0, 0.0],
            scaler_std: vec![1.0, 1.0],
            centroids: vec![vec![-1.0, 0.0], vec![1.0, 0.0]],
            cluster_tags: vec!["lc1".to_string(), "bi".to_string()],
            unknown_distance: 3.0,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let reg = ModelRegistry::open(scratch("save_load")).expect("registry opens");
        let c = ckpt("lc1", 7);
        reg.save_model(&c).expect("save succeeds");
        let back = reg.load_model("lc1").expect("load succeeds");
        assert_eq!(format!("{c:?}"), format!("{back:?}"));
        assert!(matches!(
            reg.load_model("lc2"),
            Err(RegistryError::Missing(_))
        ));
    }

    #[test]
    fn tags_are_validated() {
        let reg = ModelRegistry::open(scratch("tags")).expect("registry opens");
        for bad in ["", "UPPER", "dots.bad", "spaces no", "../escape"] {
            assert!(
                matches!(reg.load_model(bad), Err(RegistryError::InvalidTag(_))),
                "{bad:?} accepted"
            );
        }
        assert!(matches!(
            reg.save_model(&ckpt("Bad.Tag", 1)),
            Err(RegistryError::InvalidTag(_))
        ));
    }

    #[test]
    fn corrupt_current_falls_back_to_last_good() {
        let reg = ModelRegistry::open(scratch("fallback")).expect("registry opens");
        let good = ckpt("lc1", 3);
        reg.save_model(&good).expect("save succeeds");
        reg.promote_last_good("lc1").expect("promote succeeds");
        // Newer (different-seed) checkpoint becomes current, then rots.
        reg.save_model(&ckpt("lc1", 4))
            .expect("second save succeeds");
        let path = reg.model_path("lc1");
        let mut bytes = fs::read(&path).expect("checkpoint readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).expect("corruption plants");
        // Direct load reports corruption; the fallback path recovers.
        assert!(matches!(
            reg.load_model("lc1"),
            Err(RegistryError::Corrupt { .. })
        ));
        let (back, fell_back) = reg
            .load_model_or_last_good("lc1")
            .expect("fallback recovers");
        assert!(fell_back);
        assert_eq!(back.meta.seed, 3);
        // With both copies gone, the primary error surfaces.
        fs::remove_file(reg.last_good_path("lc1")).expect("last-good removes");
        assert!(matches!(
            reg.load_model_or_last_good("lc1"),
            Err(RegistryError::Corrupt { .. })
        ));
    }

    #[test]
    fn promote_refuses_corrupt_current() {
        let reg = ModelRegistry::open(scratch("promote_corrupt")).expect("registry opens");
        reg.save_model(&ckpt("bi", 9)).expect("save succeeds");
        let path = reg.model_path("bi");
        let mut bytes = fs::read(&path).expect("checkpoint readable");
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).expect("corruption plants");
        assert!(matches!(
            reg.promote_last_good("bi"),
            Err(RegistryError::Corrupt { .. })
        ));
        assert!(!reg.last_good_path("bi").exists());
    }

    #[test]
    fn typing_roundtrip_and_select() {
        let reg = ModelRegistry::open(scratch("typing")).expect("registry opens");
        assert!(matches!(reg.load_typing(), Err(RegistryError::Missing(_))));
        reg.save_typing(&index()).expect("typing saves");
        assert_eq!(
            reg.select(&[-1.0, 0.0]).expect("select succeeds"),
            Some("lc1".to_string())
        );
        assert_eq!(reg.select(&[99.0, 0.0]).expect("select succeeds"), None);
    }

    #[test]
    fn kind_confusion_rejected() {
        // A typing container under a model name (and vice versa) must not
        // decode as the wrong kind.
        let reg = ModelRegistry::open(scratch("kind_confusion")).expect("registry opens");
        let bytes = encode_container(PayloadKind::TypingIndex, &index().encode());
        atomic_write(&reg.model_path("lc1"), &bytes).expect("plant succeeds");
        assert!(matches!(
            reg.load_model("lc1"),
            Err(RegistryError::Corrupt { .. })
        ));
        let c = ckpt("x", 1);
        let bytes = encode_container(PayloadKind::ModelCheckpoint, &c.encode());
        atomic_write(&reg.typing_path(), &bytes).expect("plant succeeds");
        assert!(matches!(
            reg.load_typing(),
            Err(RegistryError::Corrupt { .. })
        ));
    }

    #[test]
    fn ls_sorted() {
        let reg = ModelRegistry::open(scratch("ls")).expect("registry opens");
        reg.save_model(&ckpt("lc2", 2)).expect("save succeeds");
        reg.save_model(&ckpt("bi", 1)).expect("save succeeds");
        reg.save_typing(&index()).expect("typing saves");
        let names: Vec<String> = reg
            .ls()
            .expect("ls succeeds")
            .iter()
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(str::to_string))
            .collect();
        assert_eq!(names, ["bi.ckpt", "lc2.ckpt", "typing.ckpt"]);
    }
}
