//! The `FIOM` binary checkpoint container and its primitive codec.
//!
//! Every artifact the registry stores — PPO trainer checkpoints and the
//! workload-typing index — is one container:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"FIOM"
//! 4       4     format version, u32 LE (currently 1)
//! 8       1     payload kind tag (1 = model checkpoint, 2 = typing index,
//!               3 = run anchor, 4 = store manifest)
//! 9       8     payload length, u64 LE
//! 17      4     CRC-32/IEEE of the payload, u32 LE
//! 21      n     payload
//! ```
//!
//! The payload itself is a flat little-endian stream written by [`Enc`]
//! and read back by [`Dec`]. Floating-point values travel as raw IEEE-754
//! bits (`f64::to_bits`), so every value — including NaNs, infinities and
//! subnormals — round-trips bit-exactly. `f32` network parameters are
//! widened to `f64` on the wire; the widening is exact for every finite
//! and infinite `f32`, so narrowing back is lossless.
//!
//! Decoding is strict: unknown magic/version/kind, a payload shorter than
//! the declared length, a checksum mismatch, or trailing bytes after the
//! last field all fail with a typed [`DecodeError`] rather than producing
//! a partially-initialized model.

use std::fmt;

/// First four bytes of every checkpoint file.
pub const MAGIC: [u8; 4] = *b"FIOM";

/// Current container format version.
pub const VERSION: u32 = 1;

/// Container header size in bytes (magic + version + kind + length + CRC).
pub const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 4;

/// What a container's payload encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// A full PPO trainer checkpoint ([`crate::ModelCheckpoint`]).
    ModelCheckpoint,
    /// The workload-typing index ([`crate::TypingIndex`]).
    TypingIndex,
    /// A run-store replay anchor ([`crate::RunAnchor`]): the sim-time
    /// position and stream fingerprint a recorded run can be re-verified
    /// from.
    RunAnchor,
    /// A `fleetio-store` run manifest. The payload layout is owned by
    /// `crates/store`; this crate only frames and checksums it.
    StoreManifest,
}

impl PayloadKind {
    /// The on-disk tag byte.
    pub fn tag(self) -> u8 {
        match self {
            PayloadKind::ModelCheckpoint => 1,
            PayloadKind::TypingIndex => 2,
            PayloadKind::RunAnchor => 3,
            PayloadKind::StoreManifest => 4,
        }
    }

    /// Parses a tag byte.
    pub fn from_tag(tag: u8) -> Result<Self, DecodeError> {
        match tag {
            1 => Ok(PayloadKind::ModelCheckpoint),
            2 => Ok(PayloadKind::TypingIndex),
            3 => Ok(PayloadKind::RunAnchor),
            4 => Ok(PayloadKind::StoreManifest),
            other => Err(DecodeError::BadKind(other)),
        }
    }

    /// Human-readable name for CLI output.
    pub fn name(self) -> &'static str {
        match self {
            PayloadKind::ModelCheckpoint => "model-checkpoint",
            PayloadKind::TypingIndex => "typing-index",
            PayloadKind::RunAnchor => "run-anchor",
            PayloadKind::StoreManifest => "store-manifest",
        }
    }
}

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than a field (or the header) requires.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown format version.
    BadVersion(u32),
    /// Unknown payload-kind tag.
    BadKind(u8),
    /// Stored CRC disagrees with the payload's actual CRC.
    CrcMismatch {
        /// CRC recorded in the header.
        stored: u32,
        /// CRC computed over the payload bytes.
        computed: u32,
    },
    /// Bytes remain after the final field.
    TrailingBytes(usize),
    /// A field decoded but carries an invalid value.
    Malformed(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated: fewer bytes than declared"),
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}, expected {MAGIC:02x?}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown payload kind tag {k}"),
            DecodeError::CrcMismatch { stored, computed } => write!(
                f,
                "CRC mismatch: header says {stored:#010x}, payload hashes to {computed:#010x}"
            ),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after final field"),
            DecodeError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

/// CRC-32/IEEE (poly `0xEDB88320`, reflected, init/xorout `0xFFFFFFFF`) —
/// the same parameterization as zlib's `crc32`. Re-exported shim over
/// [`fleetio_des::hash::crc32`] so every on-disk frame in the workspace
/// shares one implementation.
pub fn crc32(bytes: &[u8]) -> u32 {
    fleetio_des::hash::crc32(bytes)
}

/// Wraps a payload in the `FIOM` container (header + checksum).
pub fn encode_container(kind: PayloadKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind.tag());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a container and returns its kind and payload slice.
///
/// # Errors
///
/// Any header field that fails validation, a payload length that
/// disagrees with the byte count, or a CRC mismatch.
pub fn decode_container(bytes: &[u8]) -> Result<(PayloadKind, &[u8]), DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Truncated);
    }
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let kind = PayloadKind::from_tag(bytes[8])?;
    let declared = u64::from_le_bytes([
        bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15], bytes[16],
    ]);
    let stored_crc = u32::from_le_bytes([bytes[17], bytes[18], bytes[19], bytes[20]]);
    let payload = &bytes[HEADER_LEN..];
    if declared != payload.len() as u64 {
        // Shorter than declared is a torn write; longer is garbage after
        // the container. Both are corruption.
        return if (payload.len() as u64) < declared {
            Err(DecodeError::Truncated)
        } else {
            Err(DecodeError::TrailingBytes(
                payload.len() - declared as usize,
            ))
        };
    }
    let computed = crc32(payload);
    if computed != stored_crc {
        return Err(DecodeError::CrcMismatch {
            stored: stored_crc,
            computed,
        });
    }
    Ok((kind, payload))
}

/// Little-endian payload writer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty payload buffer.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Consumes the writer, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` (sizes are platform-independent on disk).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its raw IEEE-754 bits — bit-exact for every
    /// value, NaN payloads included.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends an `f32` widened to `f64` (exact for finite and ±∞).
    pub fn f32(&mut self, v: f32) {
        self.f64(f64::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn f64s(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    /// Appends a length-prefixed `f32` slice.
    pub fn f32s(&mut self, v: &[f32]) {
        self.usize(v.len());
        for &x in v {
            self.f32(x);
        }
    }
}

/// Little-endian payload reader over a borrowed byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Succeeds only when every byte has been consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(DecodeError::TrailingBytes(n)),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool, rejecting any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::Malformed(format!("bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an element count written by [`Enc::usize`], bounded by the
    /// bytes actually remaining (`elem_size` bytes per element) so a
    /// corrupt length field cannot trigger a huge allocation.
    pub fn len(&mut self, elem_size: usize) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        let cap = (self.remaining() / elem_size.max(1)) as u64;
        if n > cap {
            return Err(DecodeError::Truncated);
        }
        Ok(n as usize)
    }

    /// Reads a scalar `usize` (a dimension or hyper-parameter, not an
    /// element count) with a generous sanity cap.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        if n > u64::from(u32::MAX) {
            return Err(DecodeError::Malformed(format!("implausible size {n}")));
        }
        Ok(n as usize)
    }

    /// Reads an `f64` from its raw IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `f32` stored as `f64`, rejecting values a finite-or-±∞
    /// `f32` cannot represent (a NaN parameter is already corrupt).
    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        let wide = self.f64()?;
        let narrow = wide as f32;
        if f64::from(narrow).to_bits() != wide.to_bits() {
            return Err(DecodeError::Malformed(format!(
                "f64 {wide:?} is not an exactly-widened f32"
            )));
        }
        Ok(narrow)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| DecodeError::Malformed(format!("string not UTF-8: {e}")))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn f32s(&mut self) -> Result<Vec<f32>, DecodeError> {
        let n = self.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::rng::{Rng, SmallRng};

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_roundtrip() {
        let payload = b"hello fleetio".to_vec();
        let bytes = encode_container(PayloadKind::ModelCheckpoint, &payload);
        let (kind, p) = decode_container(&bytes).expect("fresh container decodes");
        assert_eq!(kind, PayloadKind::ModelCheckpoint);
        assert_eq!(p, &payload[..]);
    }

    #[test]
    fn container_rejects_bad_header_fields() {
        let bytes = encode_container(PayloadKind::TypingIndex, b"x");
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_container(&bad),
            Err(DecodeError::BadMagic(_))
        ));
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_container(&bad),
            Err(DecodeError::BadVersion(_))
        ));
        let mut bad = bytes.clone();
        bad[8] = 7;
        assert!(matches!(
            decode_container(&bad),
            Err(DecodeError::BadKind(7))
        ));
        let mut long = bytes;
        long.push(0);
        assert!(matches!(
            decode_container(&long),
            Err(DecodeError::TrailingBytes(1))
        ));
    }

    /// Property: every strict prefix of a valid container fails to decode.
    #[test]
    fn every_truncation_rejected() {
        let mut enc = Enc::new();
        enc.f64s(&[1.0, -2.5, f64::NAN]);
        enc.str("lc1");
        let bytes = encode_container(PayloadKind::ModelCheckpoint, &enc.into_bytes());
        for cut in 0..bytes.len() {
            assert!(
                decode_container(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    /// Property: flipping any single bit of a valid container either
    /// fails to decode (header fields or CRC catch it) or — only for
    /// flips inside the one-byte kind tag, which the payload CRC does
    /// not cover — re-tags the container as a *different* valid kind.
    /// Mis-tagging is caught one level up: every typed reader
    /// (`ModelCheckpoint::decode` via the registry, `RunAnchor::
    /// from_container`, the store's manifest loader) checks the kind
    /// before touching the payload.
    #[test]
    fn every_bit_flip_rejected() {
        let mut enc = Enc::new();
        enc.u64(0xDEAD_BEEF);
        enc.f64s(&[0.25, 3.5e-9]);
        enc.bool(true);
        let bytes = encode_container(PayloadKind::TypingIndex, &enc.into_bytes());
        const KIND_BYTE: usize = 8;
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                match decode_container(&bad) {
                    Err(_) => {}
                    Ok((kind, payload)) => {
                        assert_eq!(byte, KIND_BYTE, "flip of byte {byte} bit {bit} decoded");
                        assert_ne!(kind, PayloadKind::TypingIndex);
                        assert_eq!(payload, &bytes[HEADER_LEN..]);
                    }
                }
            }
        }
    }

    /// Property: f64 values — NaN payloads, ±∞, subnormals, signed zeros —
    /// round-trip bit-exactly through the codec.
    #[test]
    fn f64_special_values_roundtrip_bit_exact() {
        let specials = [
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7FF0_0000_0000_0001), // signalling-ish NaN payload
            f64::from_bits(0xFFF8_DEAD_BEEF_CAFE), // negative NaN with payload
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::MIN_POSITIVE,                     // smallest normal
            f64::from_bits(1),                     // smallest subnormal
            f64::from_bits(0x000F_FFFF_FFFF_FFFF), // largest subnormal
            f64::MAX,
            f64::MIN,
            f64::EPSILON,
        ];
        let mut enc = Enc::new();
        enc.f64s(&specials);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = dec.f64s().expect("special values decode");
        dec.finish().expect("no trailing bytes");
        assert_eq!(back.len(), specials.len());
        for (a, b) in specials.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a:?} vs {b:?}");
        }
    }

    /// Property: random f64 bit patterns round-trip bit-exactly.
    #[test]
    fn f64_random_bits_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(0x0DEC_0DEC);
        let vals: Vec<f64> = (0..512).map(|_| f64::from_bits(rng.next_u64())).collect();
        let mut enc = Enc::new();
        enc.f64s(&vals);
        let bytes = enc.into_bytes();
        let back = Dec::new(&bytes).f64s().expect("random values decode");
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f32_specials_roundtrip_and_foreign_f64_rejected() {
        let specials = [
            0.0f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            f32::from_bits(1), // smallest f32 subnormal
            f32::MAX,
            f32::MIN,
        ];
        let mut enc = Enc::new();
        enc.f32s(&specials);
        let bytes = enc.into_bytes();
        let back = Dec::new(&bytes).f32s().expect("f32 specials decode");
        for (a, b) in specials.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A f64 that is not an exactly-widened f32 is rejected.
        let mut enc = Enc::new();
        enc.usize(1);
        enc.f64(0.1); // 0.1f64 != widened 0.1f32
        let bytes = enc.into_bytes();
        assert!(Dec::new(&bytes).f32s().is_err());
    }

    #[test]
    fn corrupt_length_field_cannot_overallocate() {
        let mut enc = Enc::new();
        enc.usize(usize::MAX); // claims ~1.8e19 elements
        let bytes = enc.into_bytes();
        assert_eq!(Dec::new(&bytes).f64s(), Err(DecodeError::Truncated));
    }

    #[test]
    fn bool_rejects_junk_bytes() {
        let bytes = [2u8];
        assert!(Dec::new(&bytes).bool().is_err());
        let mut enc = Enc::new();
        enc.bool(false);
        enc.bool(true);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.bool(), Ok(false));
        assert_eq!(dec.bool(), Ok(true));
    }

    #[test]
    fn strings_roundtrip_and_reject_bad_utf8() {
        let mut enc = Enc::new();
        enc.str("lc1");
        enc.str("");
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.str().expect("ascii string decodes"), "lc1");
        assert_eq!(dec.str().expect("empty string decodes"), "");
        dec.finish().expect("no trailing bytes");
        let mut enc = Enc::new();
        enc.usize(2);
        enc.u8(0xFF);
        enc.u8(0xFE);
        let bytes = enc.into_bytes();
        assert!(Dec::new(&bytes).str().is_err());
    }
}
