//! The named workloads of Tables 4 and 5.
//!
//! Five evaluation workloads (TeraSort, ML Prep, PageRank — bandwidth-
//! intensive; VDI-Web, YCSB — latency-sensitive) and four pre-training
//! workloads (LiveMaps, TPCE, SearchEngine, Batch Analytics). Parameters
//! are calibrated so each synthetic stream reproduces the published I/O
//! characterization its application is known for: phase-structured
//! closed-loop bulk transfers for the analytics jobs, small-request Poisson
//! streams with diurnal bursts for VDI, and zipfian high-locality reads for
//! YCSB (the locality that isolates YCSB-B in Figure 6).

use fleetio_des::SimDuration;

use crate::spec::{AddrPattern, PhaseSpec, SizeDist, WorkloadSpec};

/// The paper's two workload categories (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadCategory {
    /// Throughput-bound batch/analytics jobs.
    BandwidthIntensive,
    /// Tail-latency-bound interactive services.
    LatencySensitive,
}

/// A named workload from Table 4 (evaluation) or §3.8 (pre-training).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Hadoop TeraSort: phase-structured sort of large datasets.
    TeraSort,
    /// Image preprocessing for ML training (read-dominant bulk).
    MlPrep,
    /// GraphChi PageRank: iterative graph scans.
    PageRank,
    /// Enterprise virtual-desktop infrastructure web workload.
    VdiWeb,
    /// YCSB (workload B-like) over a key-value store.
    Ycsb,
    /// Map-tile serving (pre-training).
    LiveMaps,
    /// TPC-E-like OLTP (pre-training).
    Tpce,
    /// Search-engine index serving (pre-training).
    SearchEngine,
    /// Batch analytics scans (pre-training).
    BatchAnalytics,
}

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn ms(m: u64) -> SimDuration {
    SimDuration::from_millis(m)
}

fn closed(
    duration: SimDuration,
    concurrency: u32,
    read: f64,
    size: SizeDist,
    addr: AddrPattern,
) -> PhaseSpec {
    PhaseSpec {
        duration,
        arrival_rate: 0.0,
        read_fraction: read,
        size,
        addr,
        concurrency,
    }
}

fn open(
    duration: SimDuration,
    rate: f64,
    read: f64,
    size: SizeDist,
    addr: AddrPattern,
) -> PhaseSpec {
    PhaseSpec {
        duration,
        arrival_rate: rate,
        read_fraction: read,
        size,
        addr,
        concurrency: 0,
    }
}

impl WorkloadKind {
    /// Every workload.
    pub const ALL: [WorkloadKind; 9] = [
        WorkloadKind::TeraSort,
        WorkloadKind::MlPrep,
        WorkloadKind::PageRank,
        WorkloadKind::VdiWeb,
        WorkloadKind::Ycsb,
        WorkloadKind::LiveMaps,
        WorkloadKind::Tpce,
        WorkloadKind::SearchEngine,
        WorkloadKind::BatchAnalytics,
    ];

    /// The five Table 4 evaluation workloads.
    pub const EVALUATION: [WorkloadKind; 5] = [
        WorkloadKind::TeraSort,
        WorkloadKind::MlPrep,
        WorkloadKind::PageRank,
        WorkloadKind::VdiWeb,
        WorkloadKind::Ycsb,
    ];

    /// The pre-training workloads (§3.8), disjoint from evaluation.
    pub const PRETRAINING: [WorkloadKind; 4] = [
        WorkloadKind::LiveMaps,
        WorkloadKind::Tpce,
        WorkloadKind::SearchEngine,
        WorkloadKind::BatchAnalytics,
    ];

    /// Looks a workload up by its stable [`WorkloadKind::name`]
    /// (run-spec decoding, CLI arguments).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::TeraSort => "terasort",
            WorkloadKind::MlPrep => "ml-prep",
            WorkloadKind::PageRank => "pagerank",
            WorkloadKind::VdiWeb => "vdi-web",
            WorkloadKind::Ycsb => "ycsb",
            WorkloadKind::LiveMaps => "livemaps",
            WorkloadKind::Tpce => "tpce",
            WorkloadKind::SearchEngine => "search-engine",
            WorkloadKind::BatchAnalytics => "batch-analytics",
        }
    }

    /// Single-letter label used in Figure 17 of the paper.
    pub fn short_label(self) -> char {
        match self {
            WorkloadKind::TeraSort => 'T',
            WorkloadKind::MlPrep => 'M',
            WorkloadKind::PageRank => 'P',
            WorkloadKind::VdiWeb => 'V',
            WorkloadKind::Ycsb => 'Y',
            WorkloadKind::LiveMaps => 'L',
            WorkloadKind::Tpce => 'E',
            WorkloadKind::SearchEngine => 'S',
            WorkloadKind::BatchAnalytics => 'B',
        }
    }

    /// The workload's category.
    pub fn category(self) -> WorkloadCategory {
        match self {
            WorkloadKind::TeraSort
            | WorkloadKind::MlPrep
            | WorkloadKind::PageRank
            | WorkloadKind::BatchAnalytics => WorkloadCategory::BandwidthIntensive,
            WorkloadKind::VdiWeb
            | WorkloadKind::Ycsb
            | WorkloadKind::LiveMaps
            | WorkloadKind::Tpce
            | WorkloadKind::SearchEngine => WorkloadCategory::LatencySensitive,
        }
    }

    /// The synthetic specification of this workload.
    ///
    /// # Example
    ///
    /// ```
    /// use fleetio_workloads::WorkloadKind;
    ///
    /// let spec = WorkloadKind::TeraSort.spec();
    /// assert!(spec.is_closed_loop()); // analytics jobs block on I/O
    /// assert!(spec.validate().is_ok());
    /// ```
    pub fn spec(self) -> WorkloadSpec {
        match self {
            WorkloadKind::TeraSort => WorkloadSpec {
                name: "terasort",
                phases: vec![
                    // Map: scan the input partition (written by the
                    // previous job's output phase, so its placement follows
                    // harvested channels).
                    closed(
                        secs(2),
                        16,
                        1.0,
                        SizeDist::Fixed(MIB),
                        AddrPattern::Sequential { region: 0 },
                    ),
                    // Shuffle out: spill sorted runs.
                    closed(
                        secs(2),
                        16,
                        0.0,
                        SizeDist::Fixed(MIB),
                        AddrPattern::Sequential { region: 1 },
                    ),
                    // Shuffle in + merge: CPU-bound trickle reads of spills.
                    closed(
                        ms(1500),
                        2,
                        0.9,
                        SizeDist::Fixed(256 * KIB),
                        AddrPattern::UniformRandom,
                    ),
                    // Reduce: read spills back, write output over region 0.
                    closed(
                        secs(2),
                        16,
                        0.5,
                        SizeDist::Choice(vec![(MIB, 1.0)]),
                        AddrPattern::Sequential { region: 1 },
                    ),
                    closed(
                        ms(1500),
                        16,
                        0.0,
                        SizeDist::Fixed(MIB),
                        AddrPattern::Sequential { region: 0 },
                    ),
                    // Job scheduling gap.
                    closed(
                        ms(1500),
                        0,
                        0.5,
                        SizeDist::Fixed(MIB),
                        AddrPattern::UniformRandom,
                    ),
                ],
                footprint: 0.7,
                regions: 2,
            },
            WorkloadKind::MlPrep => WorkloadSpec {
                name: "ml-prep",
                phases: vec![
                    // Bulk image reads (saturating).
                    closed(
                        ms(2500),
                        16,
                        1.0,
                        SizeDist::Choice(vec![(512 * KIB, 3.0), (MIB, 1.0)]),
                        AddrPattern::Sequential { region: 0 },
                    ),
                    // CPU-bound decode/augment with trickle reads.
                    closed(
                        ms(1500),
                        2,
                        0.9,
                        SizeDist::Fixed(256 * KIB),
                        AddrPattern::UniformRandom,
                    ),
                    // Write augmented tensors.
                    closed(
                        ms(1500),
                        14,
                        0.05,
                        SizeDist::Fixed(512 * KIB),
                        AddrPattern::Sequential { region: 1 },
                    ),
                    // Re-read augmented tensors for batch packing (follows
                    // the write placement, including harvested channels).
                    closed(
                        ms(1500),
                        16,
                        1.0,
                        SizeDist::Fixed(512 * KIB),
                        AddrPattern::Sequential { region: 1 },
                    ),
                    // Pipeline stall.
                    closed(
                        ms(1200),
                        0,
                        1.0,
                        SizeDist::Fixed(MIB),
                        AddrPattern::UniformRandom,
                    ),
                ],
                footprint: 0.7,
                regions: 2,
            },
            WorkloadKind::PageRank => WorkloadSpec {
                name: "pagerank",
                phases: vec![
                    // Edge scan (saturating; PageRank has the highest duty
                    // cycle of the three BI jobs, matching its highest
                    // absolute bandwidth in Figures 3a/13). GraphChi
                    // rewrites shards each iteration, so the scan follows
                    // the previous iteration's write placement.
                    closed(
                        ms(2200),
                        18,
                        1.0,
                        SizeDist::Fixed(MIB),
                        AddrPattern::Sequential { region: 0 },
                    ),
                    // Vertex updates (demand-limited).
                    closed(
                        ms(800),
                        3,
                        0.5,
                        SizeDist::Fixed(128 * KIB),
                        AddrPattern::UniformRandom,
                    ),
                    // Shard rewrite.
                    closed(
                        ms(1800),
                        16,
                        0.0,
                        SizeDist::Fixed(MIB),
                        AddrPattern::Sequential { region: 0 },
                    ),
                ],
                footprint: 0.7,
                regions: 2,
            },
            WorkloadKind::VdiWeb => WorkloadSpec {
                name: "vdi-web",
                phases: vec![
                    // Interactive steady state.
                    open(
                        secs(6),
                        1500.0,
                        0.7,
                        SizeDist::Choice(vec![(4 * KIB, 5.0), (16 * KIB, 3.0), (64 * KIB, 2.0)]),
                        AddrPattern::HotSpot {
                            hot_fraction: 0.2,
                            hot_access: 0.6,
                        },
                    ),
                    // Login/boot storm burst.
                    open(
                        secs(2),
                        3500.0,
                        0.6,
                        SizeDist::Choice(vec![(4 * KIB, 4.0), (16 * KIB, 4.0), (64 * KIB, 2.0)]),
                        AddrPattern::HotSpot {
                            hot_fraction: 0.2,
                            hot_access: 0.6,
                        },
                    ),
                    // Lull.
                    open(
                        secs(4),
                        400.0,
                        0.75,
                        SizeDist::Choice(vec![(4 * KIB, 6.0), (16 * KIB, 3.0), (64 * KIB, 1.0)]),
                        AddrPattern::HotSpot {
                            hot_fraction: 0.2,
                            hot_access: 0.6,
                        },
                    ),
                ],
                footprint: 0.4,
                regions: 1,
            },
            WorkloadKind::Ycsb => WorkloadSpec {
                name: "ycsb",
                phases: vec![
                    open(
                        secs(8),
                        5000.0,
                        0.95,
                        SizeDist::Choice(vec![(4 * KIB, 7.0), (16 * KIB, 2.5), (64 * KIB, 0.5)]),
                        AddrPattern::Zipf { theta: 0.99 },
                    ),
                    // Load spike (request storm).
                    open(
                        secs(2),
                        9000.0,
                        0.95,
                        SizeDist::Choice(vec![(4 * KIB, 7.0), (16 * KIB, 2.5), (64 * KIB, 0.5)]),
                        AddrPattern::Zipf { theta: 0.99 },
                    ),
                ],
                footprint: 0.4,
                regions: 1,
            },
            WorkloadKind::LiveMaps => WorkloadSpec {
                name: "livemaps",
                phases: vec![
                    open(
                        secs(5),
                        1200.0,
                        0.85,
                        SizeDist::Fixed(64 * KIB),
                        AddrPattern::HotSpot {
                            hot_fraction: 0.3,
                            hot_access: 0.7,
                        },
                    ),
                    open(
                        secs(5),
                        500.0,
                        0.85,
                        SizeDist::Fixed(64 * KIB),
                        AddrPattern::HotSpot {
                            hot_fraction: 0.3,
                            hot_access: 0.7,
                        },
                    ),
                ],
                footprint: 0.5,
                regions: 1,
            },
            WorkloadKind::Tpce => WorkloadSpec {
                name: "tpce",
                phases: vec![open(
                    secs(10),
                    3000.0,
                    0.9,
                    SizeDist::Choice(vec![(8 * KIB, 8.0), (16 * KIB, 2.0)]),
                    AddrPattern::HotSpot {
                        hot_fraction: 0.1,
                        hot_access: 0.5,
                    },
                )],
                footprint: 0.5,
                regions: 1,
            },
            WorkloadKind::SearchEngine => WorkloadSpec {
                name: "search-engine",
                phases: vec![
                    open(
                        secs(4),
                        2000.0,
                        0.98,
                        SizeDist::Fixed(32 * KIB),
                        AddrPattern::HotSpot {
                            hot_fraction: 0.25,
                            hot_access: 0.55,
                        },
                    ),
                    open(
                        secs(2),
                        4000.0,
                        0.98,
                        SizeDist::Fixed(32 * KIB),
                        AddrPattern::HotSpot {
                            hot_fraction: 0.25,
                            hot_access: 0.55,
                        },
                    ),
                ],
                footprint: 0.5,
                regions: 1,
            },
            WorkloadKind::BatchAnalytics => WorkloadSpec {
                name: "batch-analytics",
                phases: vec![
                    closed(
                        ms(2500),
                        14,
                        1.0,
                        SizeDist::Fixed(2 * MIB),
                        AddrPattern::Sequential { region: 0 },
                    ),
                    closed(
                        ms(1500),
                        2,
                        0.8,
                        SizeDist::Fixed(256 * KIB),
                        AddrPattern::UniformRandom,
                    ),
                    closed(
                        secs(2),
                        12,
                        0.0,
                        SizeDist::Fixed(MIB),
                        AddrPattern::Sequential { region: 0 },
                    ),
                    closed(
                        ms(1500),
                        0,
                        1.0,
                        SizeDist::Fixed(MIB),
                        AddrPattern::UniformRandom,
                    ),
                ],
                footprint: 0.7,
                regions: 2,
            },
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for kind in WorkloadKind::ALL {
            kind.spec()
                .validate()
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn categories_match_table_4() {
        use WorkloadCategory::*;
        assert_eq!(WorkloadKind::TeraSort.category(), BandwidthIntensive);
        assert_eq!(WorkloadKind::MlPrep.category(), BandwidthIntensive);
        assert_eq!(WorkloadKind::PageRank.category(), BandwidthIntensive);
        assert_eq!(WorkloadKind::VdiWeb.category(), LatencySensitive);
        assert_eq!(WorkloadKind::Ycsb.category(), LatencySensitive);
    }

    #[test]
    fn bandwidth_intensive_specs_are_closed_loop() {
        for kind in WorkloadKind::ALL {
            let closed = kind.spec().is_closed_loop();
            let bi = kind.category() == WorkloadCategory::BandwidthIntensive;
            assert_eq!(closed, bi, "{kind}");
        }
    }

    #[test]
    fn evaluation_and_pretraining_are_disjoint() {
        for e in WorkloadKind::EVALUATION {
            assert!(!WorkloadKind::PRETRAINING.contains(&e), "{e}");
        }
    }

    #[test]
    fn names_and_labels_are_unique() {
        let mut names: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
        let mut labels: Vec<char> = WorkloadKind::ALL.iter().map(|k| k.short_label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 9);
    }

    #[test]
    fn ycsb_uses_zipfian_locality() {
        let spec = WorkloadKind::Ycsb.spec();
        assert!(matches!(spec.phases[0].addr, AddrPattern::Zipf { .. }));
    }
}
