//! The phase-based workload description language.
//!
//! A workload is a repeating cycle of phases; each phase fixes an arrival
//! rate, read fraction, request-size distribution and address pattern.
//! Bursty bandwidth-intensive applications become high-rate phases
//! alternating with idle ones; latency-sensitive services become steady
//! Poisson streams with small requests.

use fleetio_des::SimDuration;

/// Request-size distribution within a phase.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Every request has this many bytes.
    Fixed(u64),
    /// Weighted choice among `(bytes, weight)` entries.
    Choice(Vec<(u64, f64)>),
}

impl SizeDist {
    /// Mean request size in bytes.
    ///
    /// # Panics
    ///
    /// Panics on an empty or zero-weight choice list.
    pub fn mean(&self) -> f64 {
        match self {
            SizeDist::Fixed(b) => *b as f64,
            SizeDist::Choice(items) => {
                assert!(!items.is_empty(), "empty size choice");
                let total: f64 = items.iter().map(|(_, w)| w).sum();
                assert!(total > 0.0, "zero total weight");
                items.iter().map(|(b, w)| *b as f64 * w).sum::<f64>() / total
            }
        }
    }
}

/// Address-selection pattern within a phase.
#[derive(Debug, Clone, PartialEq)]
pub enum AddrPattern {
    /// Sequential cursor through region `region` (cursors persist across
    /// phases and wrap around).
    Sequential {
        /// Which of the workload's sequential regions to walk.
        region: usize,
    },
    /// Uniformly random over the whole space.
    UniformRandom,
    /// Scrambled-zipfian over the whole space (YCSB-style locality).
    Zipf {
        /// Skew parameter in `(0, 1)`; YCSB default 0.99.
        theta: f64,
    },
    /// A fraction of accesses hit a small hot region.
    HotSpot {
        /// Fraction of the space that is hot, `(0, 1)`.
        hot_fraction: f64,
        /// Fraction of accesses going to the hot region, `(0, 1]`.
        hot_access: f64,
    },
}

/// One phase of a workload cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase length.
    pub duration: SimDuration,
    /// Mean request arrival rate (Poisson), requests/second. Zero makes an
    /// idle phase.
    pub arrival_rate: f64,
    /// Fraction of requests that are reads, `[0, 1]`.
    pub read_fraction: f64,
    /// Request sizes.
    pub size: SizeDist,
    /// Address pattern.
    pub addr: AddrPattern,
    /// Closed-loop concurrency: when positive, the workload keeps this many
    /// requests outstanding during the phase (arrival_rate is ignored) —
    /// how real bandwidth-intensive applications behave. Zero means
    /// open-loop Poisson arrivals at `arrival_rate`.
    pub concurrency: u32,
}

impl PhaseSpec {
    /// Offered load of this phase in bytes/second.
    pub fn offered_bytes_per_sec(&self) -> f64 {
        self.arrival_rate * self.size.mean()
    }
}

impl WorkloadSpec {
    /// Whether any phase runs closed-loop.
    pub fn is_closed_loop(&self) -> bool {
        self.phases.iter().any(|p| p.concurrency > 0)
    }
}

/// A complete workload: a cycle of phases over an address-space fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Stable name for reports.
    pub name: &'static str,
    /// The repeating phase cycle.
    pub phases: Vec<PhaseSpec>,
    /// Fraction of the vSSD's logical space the workload touches, `(0, 1]`.
    pub footprint: f64,
    /// Number of independent sequential regions (for `Sequential` phases).
    pub regions: usize,
}

impl WorkloadSpec {
    /// Rotates the phase cycle left by `k` phases, so the workload
    /// starts mid-job: `k = 1` begins at what was the second phase.
    /// The cycle itself is unchanged — only the position at time zero
    /// moves. `k` is taken modulo the phase count, so any value is
    /// safe.
    pub fn rotate_phases(&mut self, k: usize) {
        if !self.phases.is_empty() {
            let k = k % self.phases.len();
            self.phases.rotate_left(k);
        }
    }

    /// Mean offered load across one full cycle, bytes/second.
    pub fn mean_offered_bytes_per_sec(&self) -> f64 {
        let total_time: f64 = self.phases.iter().map(|p| p.duration.as_secs_f64()).sum();
        if total_time <= 0.0 {
            return 0.0;
        }
        let total_bytes: f64 = self
            .phases
            .iter()
            .map(|p| p.offered_bytes_per_sec() * p.duration.as_secs_f64())
            .sum();
        total_bytes / total_time
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns a message naming the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("workload needs at least one phase".into());
        }
        if !(0.0 < self.footprint && self.footprint <= 1.0) {
            return Err("footprint must be in (0, 1]".into());
        }
        for (i, p) in self.phases.iter().enumerate() {
            if p.duration.is_zero() {
                return Err(format!("phase {i} has zero duration"));
            }
            if !(0.0..=1.0).contains(&p.read_fraction) {
                return Err(format!("phase {i} read fraction out of range"));
            }
            if p.arrival_rate < 0.0 || !p.arrival_rate.is_finite() {
                return Err(format!("phase {i} arrival rate invalid"));
            }
            if let AddrPattern::Sequential { region } = p.addr {
                if region >= self.regions {
                    return Err(format!(
                        "phase {i} references region {region} of {}",
                        self.regions
                    ));
                }
            }
            if let AddrPattern::Zipf { theta } = p.addr {
                if !(0.0 < theta && theta < 1.0) {
                    return Err(format!("phase {i} zipf theta out of range"));
                }
            }
            if let AddrPattern::HotSpot {
                hot_fraction,
                hot_access,
            } = p.addr
            {
                let fraction_ok = 0.0 < hot_fraction && hot_fraction < 1.0;
                let access_ok = 0.0 < hot_access && hot_access <= 1.0;
                if !fraction_ok || !access_ok {
                    return Err(format!("phase {i} hotspot parameters out of range"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(rate: f64, secs: u64) -> PhaseSpec {
        PhaseSpec {
            duration: SimDuration::from_secs(secs),
            arrival_rate: rate,
            read_fraction: 0.5,
            size: SizeDist::Fixed(1000),
            addr: AddrPattern::UniformRandom,
            concurrency: 0,
        }
    }

    #[test]
    fn size_means() {
        assert_eq!(SizeDist::Fixed(4096).mean(), 4096.0);
        let c = SizeDist::Choice(vec![(100, 1.0), (300, 1.0)]);
        assert_eq!(c.mean(), 200.0);
        let w = SizeDist::Choice(vec![(100, 3.0), (300, 1.0)]);
        assert_eq!(w.mean(), 150.0);
    }

    #[test]
    fn offered_load_math() {
        let p = phase(1000.0, 1);
        assert_eq!(p.offered_bytes_per_sec(), 1_000_000.0);
        let spec = WorkloadSpec {
            name: "t",
            phases: vec![phase(1000.0, 1), phase(0.0, 1)],
            footprint: 0.5,
            regions: 1,
        };
        // 1 MB/s for half the cycle.
        assert_eq!(spec.mean_offered_bytes_per_sec(), 500_000.0);
    }

    #[test]
    fn phase_rotation_moves_the_start_not_the_cycle() {
        let mut spec = WorkloadSpec {
            name: "t",
            phases: vec![phase(100.0, 1), phase(200.0, 2), phase(300.0, 3)],
            footprint: 0.5,
            regions: 1,
        };
        let mean = spec.mean_offered_bytes_per_sec();
        spec.rotate_phases(1);
        assert_eq!(spec.phases[0].arrival_rate, 200.0);
        assert_eq!(spec.phases[2].arrival_rate, 100.0);
        // The cycle is unchanged, so so is its mean offered load.
        assert_eq!(spec.mean_offered_bytes_per_sec(), mean);
        // Modulo the phase count: a full-cycle rotation is the identity.
        spec.rotate_phases(3);
        assert_eq!(spec.phases[0].arrival_rate, 200.0);
        spec.rotate_phases(5);
        assert_eq!(spec.phases[0].arrival_rate, 100.0);
    }

    #[test]
    fn validation_catches_errors() {
        let mut spec = WorkloadSpec {
            name: "t",
            phases: vec![phase(100.0, 1)],
            footprint: 0.5,
            regions: 1,
        };
        assert!(spec.validate().is_ok());
        spec.footprint = 0.0;
        assert!(spec.validate().is_err());
        spec.footprint = 0.5;
        spec.phases[0].addr = AddrPattern::Sequential { region: 3 };
        assert!(spec.validate().unwrap_err().contains("region"));
        spec.phases[0].addr = AddrPattern::Zipf { theta: 2.0 };
        assert!(spec.validate().is_err());
        spec.phases.clear();
        assert!(spec.validate().is_err());
    }
}
