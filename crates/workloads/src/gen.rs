//! Turning a [`WorkloadSpec`] into a timed block-I/O request stream.

use fleetio_des::rng::Rng;
use fleetio_des::rng::SmallRng;
use fleetio_des::{SimDuration, SimTime};

use crate::spec::{AddrPattern, PhaseSpec, SizeDist, WorkloadSpec};
use crate::zipf::ZipfSampler;

/// One generated block-I/O request (before it is bound to a vSSD).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Arrival time.
    pub at: SimTime,
    /// Whether the request is a read.
    pub is_read: bool,
    /// Byte offset within the workload's logical space.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// An infinite, deterministic request stream for one workload instance.
///
/// # Example
///
/// ```
/// use fleetio_workloads::{SyntheticWorkload, WorkloadKind};
///
/// let mut w = SyntheticWorkload::new(WorkloadKind::Ycsb.spec(), 1 << 30, 42);
/// let first = w.next_request();
/// let second = w.next_request();
/// assert!(second.at >= first.at);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    spec: WorkloadSpec,
    capacity: u64,
    rng: SmallRng,
    now: SimTime,
    phase_idx: usize,
    phase_end: SimTime,
    seq_cursors: Vec<u64>,
    zipf: Option<(u64, ZipfSampler)>,
    /// Align all addresses to this many bytes (page size by default).
    align: u64,
}

impl SyntheticWorkload {
    /// Creates a stream over a logical space of `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or the capacity is smaller than 1 MiB.
    pub fn new(spec: WorkloadSpec, capacity_bytes: u64, seed: u64) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid workload spec: {e}");
        }
        assert!(capacity_bytes >= 1 << 20, "capacity too small");
        let footprint = ((capacity_bytes as f64) * spec.footprint) as u64;
        let regions = spec.regions.max(1);
        // Spread sequential cursors across the footprint.
        let seq_cursors = (0..regions)
            .map(|r| footprint / regions as u64 * r as u64)
            .collect();
        let phase_end = SimTime::ZERO + spec.phases[0].duration;
        SyntheticWorkload {
            spec,
            capacity: footprint,
            rng: SmallRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            phase_idx: 0,
            phase_end,
            seq_cursors,
            zipf: None,
            align: 4096,
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// The spec driving this stream.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Bytes of logical space this workload touches.
    pub fn footprint_bytes(&self) -> u64 {
        self.capacity
    }

    fn phase(&self) -> &PhaseSpec {
        &self.spec.phases[self.phase_idx]
    }

    fn advance_phase(&mut self) {
        self.phase_idx = (self.phase_idx + 1) % self.spec.phases.len();
        self.phase_end += self.spec.phases[self.phase_idx].duration;
    }

    /// Generates the next request, advancing simulated arrival time.
    pub fn next_request(&mut self) -> TraceRecord {
        // Skip through idle (rate 0) phases.
        loop {
            let rate = self.phase().arrival_rate;
            if rate > 0.0 {
                // Exponential interarrival at the phase rate.
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                let dt = SimDuration::from_secs_f64(-u.ln() / rate);
                let t = self.now + dt;
                if t <= self.phase_end {
                    self.now = t;
                    break;
                }
            }
            // Jump to the start of the next phase.
            self.now = self.phase_end;
            self.advance_phase();
        }
        let phase = self.phase().clone();
        let len = self.sample_size(&phase.size);
        let is_read = self.rng.gen_range(0.0..1.0) < phase.read_fraction;
        let offset = self.sample_offset(&phase.addr, len);
        TraceRecord {
            at: self.now,
            is_read,
            offset,
            len,
        }
    }

    /// Generates every request arriving up to `until` (exclusive of later
    /// ones; the stream position advances past them).
    pub fn requests_until(&mut self, until: SimTime) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        loop {
            let save = self.clone_position();
            let r = self.next_request();
            if r.at > until {
                self.restore_position(save);
                return out;
            }
            out.push(r);
        }
    }

    fn clone_position(&self) -> (SimTime, usize, SimTime, SmallRng, Vec<u64>) {
        (
            self.now,
            self.phase_idx,
            self.phase_end,
            self.rng.clone(),
            self.seq_cursors.clone(),
        )
    }

    fn restore_position(&mut self, save: (SimTime, usize, SimTime, SmallRng, Vec<u64>)) {
        self.now = save.0;
        self.phase_idx = save.1;
        self.phase_end = save.2;
        self.rng = save.3;
        self.seq_cursors = save.4;
    }

    fn sample_size(&mut self, dist: &SizeDist) -> u64 {
        match dist {
            SizeDist::Fixed(b) => *b,
            SizeDist::Choice(items) => {
                let total: f64 = items.iter().map(|(_, w)| w).sum();
                let mut pick = self.rng.gen_range(0.0..total);
                for (b, w) in items {
                    if pick < *w {
                        return *b;
                    }
                    pick -= w;
                }
                items.last().expect("non-empty").0
            }
        }
    }

    fn sample_offset(&mut self, addr: &AddrPattern, len: u64) -> u64 {
        let space = self.capacity.saturating_sub(len).max(self.align);
        let aligned = |x: u64, align: u64| (x / align) * align;
        match addr {
            AddrPattern::Sequential { region } => {
                let cur = self.seq_cursors[*region];
                let next = cur + len;
                self.seq_cursors[*region] = if next >= space { 0 } else { next };
                aligned(cur.min(space), self.align)
            }
            AddrPattern::UniformRandom => aligned(self.rng.gen_range(0..space), self.align),
            AddrPattern::Zipf { theta } => {
                let items = (self.capacity / self.align).max(1);
                let needs_new = match &self.zipf {
                    Some((n, _)) => *n != items,
                    None => true,
                };
                if needs_new {
                    self.zipf = Some((items, ZipfSampler::new(items, *theta)));
                }
                let (_, sampler) = self.zipf.as_ref().expect("sampler built");
                // Ranks map to addresses directly (no scrambling): the hot
                // set occupies a compact region, giving key-value workloads
                // the low LPA entropy that separates YCSB-B in Figure 6.
                let rank = sampler.sample(&mut self.rng);
                (rank * self.align).min(space)
            }
            AddrPattern::HotSpot {
                hot_fraction,
                hot_access,
            } => {
                let hot_space = ((space as f64) * hot_fraction) as u64;
                let in_hot = self.rng.gen_range(0.0..1.0) < *hot_access;
                let off = if in_hot && hot_space > 0 {
                    self.rng.gen_range(0..hot_space.max(1))
                } else {
                    self.rng.gen_range(0..space)
                };
                aligned(off, self.align)
            }
        }
    }
}

/// A closed-loop request source: the driver asks for a new request
/// whenever the outstanding count is below the current phase's
/// concurrency. This models bandwidth-intensive applications (TeraSort,
/// ML Prep, PageRank) that block on I/O — their achieved bandwidth is
/// capacity-limited, which is exactly what makes hardware isolation waste
/// bandwidth in the paper's motivation study.
///
/// # Example
///
/// ```
/// use fleetio_des::SimTime;
/// use fleetio_workloads::gen::ClosedLoopWorkload;
/// use fleetio_workloads::WorkloadKind;
///
/// let mut w = ClosedLoopWorkload::new(WorkloadKind::TeraSort.spec(), 1 << 30, 7);
/// let target = w.concurrency_at(SimTime::ZERO);
/// if target > 0 {
///     let r = w.make_request(SimTime::ZERO);
///     assert_eq!(r.at, SimTime::ZERO);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ClosedLoopWorkload {
    spec: WorkloadSpec,
    capacity: u64,
    rng: SmallRng,
    seq_cursors: Vec<u64>,
    zipf: Option<(u64, ZipfSampler)>,
    align: u64,
    cycle: SimDuration,
}

impl ClosedLoopWorkload {
    /// Creates a closed-loop source over `capacity_bytes` of logical space.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid, not closed-loop, or the capacity is
    /// smaller than 1 MiB.
    pub fn new(spec: WorkloadSpec, capacity_bytes: u64, seed: u64) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid workload spec: {e}");
        }
        assert!(spec.is_closed_loop(), "spec has no closed-loop phase");
        assert!(capacity_bytes >= 1 << 20, "capacity too small");
        let footprint = ((capacity_bytes as f64) * spec.footprint) as u64;
        let regions = spec.regions.max(1);
        let seq_cursors = (0..regions)
            .map(|r| footprint / regions as u64 * r as u64)
            .collect();
        let cycle = spec
            .phases
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration);
        ClosedLoopWorkload {
            spec,
            capacity: footprint,
            rng: SmallRng::seed_from_u64(seed),
            seq_cursors,
            zipf: None,
            align: 4096,
            cycle,
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// The spec driving this source.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn phase_at(&self, now: SimTime) -> &PhaseSpec {
        let mut t = SimDuration::from_nanos(now.as_nanos() % self.cycle.as_nanos().max(1));
        for p in &self.spec.phases {
            if t < p.duration {
                return p;
            }
            t = t.saturating_sub(p.duration);
        }
        self.spec.phases.last().expect("non-empty phases")
    }

    /// Target outstanding-request count at `now` (0 = idle phase).
    pub fn concurrency_at(&self, now: SimTime) -> u32 {
        self.phase_at(now).concurrency
    }

    /// Time when the current phase (at `now`) ends — the driver re-checks
    /// concurrency then.
    pub fn phase_end_after(&self, now: SimTime) -> SimTime {
        let in_cycle = now.as_nanos() % self.cycle.as_nanos().max(1);
        let cycle_start = now.as_nanos() - in_cycle;
        let mut acc = 0u64;
        for p in &self.spec.phases {
            acc += p.duration.as_nanos();
            if in_cycle < acc {
                return SimTime::from_nanos(cycle_start + acc);
            }
        }
        SimTime::from_nanos(cycle_start + self.cycle.as_nanos())
    }

    /// Produces the next request for submission at `now`, using the phase
    /// active at that instant.
    pub fn make_request(&mut self, now: SimTime) -> TraceRecord {
        let phase = self.phase_at(now).clone();
        let len = sample_size(&mut self.rng, &phase.size);
        let is_read = self.rng.gen_range(0.0..1.0) < phase.read_fraction;
        let offset = sample_offset(
            &mut self.rng,
            &mut self.seq_cursors,
            &mut self.zipf,
            self.capacity,
            self.align,
            &phase.addr,
            len,
        );
        TraceRecord {
            at: now,
            is_read,
            offset,
            len,
        }
    }
}

fn sample_size<R: Rng>(rng: &mut R, dist: &SizeDist) -> u64 {
    match dist {
        SizeDist::Fixed(b) => *b,
        SizeDist::Choice(items) => {
            let total: f64 = items.iter().map(|(_, w)| w).sum();
            let mut pick = rng.gen_range(0.0..total);
            for (b, w) in items {
                if pick < *w {
                    return *b;
                }
                pick -= w;
            }
            items.last().expect("non-empty").0
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn sample_offset<R: Rng>(
    rng: &mut R,
    seq_cursors: &mut [u64],
    zipf: &mut Option<(u64, ZipfSampler)>,
    capacity: u64,
    align: u64,
    addr: &AddrPattern,
    len: u64,
) -> u64 {
    let space = capacity.saturating_sub(len).max(align);
    let aligned = |x: u64| (x / align) * align;
    match addr {
        AddrPattern::Sequential { region } => {
            let cur = seq_cursors[*region];
            let next = cur + len;
            seq_cursors[*region] = if next >= space { 0 } else { next };
            aligned(cur.min(space))
        }
        AddrPattern::UniformRandom => aligned(rng.gen_range(0..space)),
        AddrPattern::Zipf { theta } => {
            let items = (capacity / align).max(1);
            let needs_new = match zipf {
                Some((n, _)) => *n != items,
                None => true,
            };
            if needs_new {
                *zipf = Some((items, ZipfSampler::new(items, *theta)));
            }
            let (_, sampler) = zipf.as_ref().expect("sampler built");
            let rank = sampler.sample(rng);
            (rank * align).min(space)
        }
        AddrPattern::HotSpot {
            hot_fraction,
            hot_access,
        } => {
            let hot_space = ((space as f64) * hot_fraction) as u64;
            let in_hot = rng.gen_range(0.0..1.0) < *hot_access;
            let off = if in_hot && hot_space > 0 {
                rng.gen_range(0..hot_space.max(1))
            } else {
                rng.gen_range(0..space)
            };
            aligned(off)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn steady_spec(rate: f64) -> WorkloadSpec {
        WorkloadSpec {
            name: "steady",
            phases: vec![PhaseSpec {
                duration: SimDuration::from_secs(10),
                arrival_rate: rate,
                read_fraction: 1.0,
                size: SizeDist::Fixed(4096),
                addr: AddrPattern::UniformRandom,
                concurrency: 0,
            }],
            footprint: 1.0,
            regions: 1,
        }
    }

    fn bursty_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "bursty",
            phases: vec![
                PhaseSpec {
                    duration: SimDuration::from_secs(1),
                    arrival_rate: 1000.0,
                    read_fraction: 0.0,
                    size: SizeDist::Fixed(65536),
                    addr: AddrPattern::Sequential { region: 0 },
                    concurrency: 0,
                },
                PhaseSpec {
                    duration: SimDuration::from_secs(1),
                    arrival_rate: 0.0,
                    read_fraction: 0.0,
                    size: SizeDist::Fixed(65536),
                    addr: AddrPattern::Sequential { region: 0 },
                    concurrency: 0,
                },
            ],
            footprint: 1.0,
            regions: 1,
        }
    }

    #[test]
    fn arrivals_are_monotone_and_near_rate() {
        let mut w = SyntheticWorkload::new(steady_spec(1000.0), 1 << 30, 1);
        let mut last = SimTime::ZERO;
        let mut count = 0;
        loop {
            let r = w.next_request();
            assert!(r.at >= last);
            last = r.at;
            if r.at > SimTime::from_secs(5) {
                break;
            }
            count += 1;
        }
        // Poisson(1000/s) over 5 s ≈ 5000 ± noise.
        assert!((4500..5500).contains(&count), "count {count}");
    }

    #[test]
    fn idle_phases_produce_no_arrivals() {
        let mut w = SyntheticWorkload::new(bursty_spec(), 1 << 30, 2);
        let recs = w.requests_until(SimTime::from_secs(4));
        // All arrivals fall in [0,1) ∪ [2,3) second windows.
        for r in &recs {
            let s = r.at.as_secs_f64();
            let in_burst = (s % 2.0) < 1.0;
            assert!(in_burst, "arrival at {s}");
        }
        assert!(!recs.is_empty());
    }

    #[test]
    fn sequential_addresses_advance_and_wrap() {
        let mut spec = bursty_spec();
        spec.footprint = 0.001; // tiny space to force wrap
        let mut w = SyntheticWorkload::new(spec, 1 << 30, 3);
        let recs = w.requests_until(SimTime::from_secs(3));
        let mut wrapped = false;
        for pair in recs.windows(2) {
            if pair[1].offset < pair[0].offset {
                wrapped = true;
            } else {
                assert!(pair[1].offset >= pair[0].offset);
            }
        }
        assert!(wrapped, "sequential cursor never wrapped");
    }

    #[test]
    fn requests_until_is_replayable_boundary() {
        let mut w = SyntheticWorkload::new(steady_spec(500.0), 1 << 30, 4);
        let a = w.requests_until(SimTime::from_secs(1));
        let b = w.requests_until(SimTime::from_secs(2));
        // No overlap, no gap: b starts after a ends.
        assert!(a.last().unwrap().at <= SimTime::from_secs(1));
        assert!(b.first().unwrap().at > SimTime::from_secs(1));
        // Deterministic replay from the same seed.
        let mut w2 = SyntheticWorkload::new(steady_spec(500.0), 1 << 30, 4);
        let a2 = w2.requests_until(SimTime::from_secs(1));
        assert_eq!(a, a2);
    }

    #[test]
    fn zipf_pattern_concentrates_accesses() {
        let mut spec = steady_spec(2000.0);
        spec.phases[0].addr = AddrPattern::Zipf { theta: 0.99 };
        let mut w = SyntheticWorkload::new(spec, 1 << 30, 5);
        let recs = w.requests_until(SimTime::from_secs(5));
        let mut counts = std::collections::HashMap::new();
        for r in &recs {
            *counts.entry(r.offset).or_insert(0usize) += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = freqs.iter().take(10).sum();
        let frac = top10 as f64 / recs.len() as f64;
        // θ=0.99 over ~262 K pages: analytic top-10 share ≈ 0.22; a uniform
        // pattern would put ~0.004 % there.
        assert!(frac > 0.15, "top-10 addresses got {frac}");
    }

    #[test]
    fn offsets_fit_in_footprint() {
        let mut spec = steady_spec(1000.0);
        spec.footprint = 0.25;
        let mut w = SyntheticWorkload::new(spec, 1 << 30, 6);
        let cap = w.footprint_bytes();
        for _ in 0..2000 {
            let r = w.next_request();
            assert!(
                r.offset + r.len <= cap + 4096,
                "offset {} len {}",
                r.offset,
                r.len
            );
        }
    }
}
