//! Synthetic cloud block-I/O workloads for the FleetIO reproduction.
//!
//! The paper evaluates on real applications (Table 4: TeraSort, ML Prep,
//! PageRank, VDI-Web, YCSB) and pre-trains on a second set (LiveMaps,
//! TPCE, SearchEngine, Batch Analytics). This crate replaces them with
//! synthetic block-level trace generators parameterized to match each
//! application's published I/O characterization — the paper itself only
//! consumes the applications through their block traces and clusters them
//! by four features (read bandwidth, write bandwidth, LPA entropy, average
//! I/O size; §3.4), all of which these generators reproduce.
//!
//! * [`spec`] — the phase-based workload description language,
//! * [`gen`] — the generator turning a spec into a timed request stream,
//! * [`kind`] — the nine named workloads with their Table 4/5 parameters,
//! * [`zipf`] — zipfian address sampling for key-value locality,
//! * [`features`] — per-window feature extraction for workload typing.

pub mod features;
pub mod gen;
pub mod kind;
pub mod spec;
pub mod zipf;

pub use features::{extract_features, WindowFeatures};
pub use gen::{SyntheticWorkload, TraceRecord};
pub use kind::{WorkloadCategory, WorkloadKind};
pub use spec::{AddrPattern, PhaseSpec, SizeDist, WorkloadSpec};
