//! Zipfian sampling for key-value access locality.
//!
//! YCSB's zipfian request distribution gives key-value workloads their
//! characteristic low-entropy (high-locality) address patterns — the very
//! property that puts YCSB-B in its own cluster in Figure 6 of the paper.

use fleetio_des::rng::Rng;

/// A zipfian sampler over `0..n` with skew `theta` (YCSB default 0.99),
/// using the Gray et al. constant-time rejection-free method.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        let _ = zeta2;
        ZipfSampler {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n, integral approximation for large n.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // ∫_{10000}^{n} x^{-θ} dx
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one zipf-distributed rank in `0..n` (0 is the hottest).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.n as f64) as u64;
        v.min(self.n - 1)
    }
}

/// Scrambles a zipf rank into the address space so hot items are spread
/// out (YCSB's scrambled-zipfian), keeping hot-set size but avoiding a
/// single hot region.
pub fn scramble(rank: u64, n: u64) -> u64 {
    // SplitMix-style mix, folded into range.
    let mut z = rank.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::rng::SmallRng;

    #[test]
    fn hottest_item_dominates() {
        let z = ZipfSampler::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut count0 = 0;
        let n = 100_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        let frac = count0 as f64 / n as f64;
        // For θ=0.99, n=1000: p(0) = 1/ζ ≈ 0.127.
        assert!((0.10..0.16).contains(&frac), "p(0) = {frac}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(50, 0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn large_n_zeta_approximation_is_close() {
        // Compare approximate zeta against exact for a crossable size.
        let exact = ZipfSampler::zeta(10_000, 0.9);
        let _z = ZipfSampler::new(10_001, 0.9);
        let approx = ZipfSampler::zeta(20_000, 0.9);
        // ζ(20000) > ζ(10000), and the tail adds roughly n^{0.1} terms.
        assert!(approx > exact && approx < exact * 1.2);
    }

    #[test]
    fn scramble_is_a_stable_spread() {
        let a = scramble(0, 1000);
        let b = scramble(1, 1000);
        assert_ne!(a, b);
        assert_eq!(a, scramble(0, 1000));
        assert!(a < 1000 && b < 1000);
    }

    #[test]
    fn skew_concentrates_mass() {
        let mut rng = SmallRng::seed_from_u64(2);
        let z = ZipfSampler::new(10_000, 0.99);
        // Fraction of accesses hitting the top 1% of ranks.
        let mut hot = 0;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 100 {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        assert!(frac > 0.5, "top-1% share {frac}");
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_panics() {
        let _ = ZipfSampler::new(10, 1.5);
    }
}
