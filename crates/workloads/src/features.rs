//! Per-window I/O feature extraction for workload typing (§3.4).
//!
//! FleetIO divides collected block traces into 10 K-request windows and
//! extracts four features per window: read bandwidth, write bandwidth,
//! logical-page-address (LPA) entropy, and average I/O size. The features
//! feed the k-means clustering that assigns each workload its type.

use crate::gen::TraceRecord;

/// The paper's per-window trace size.
pub const WINDOW_REQUESTS: usize = 10_000;

/// Number of equal address-space bins used for the LPA entropy histogram.
const ENTROPY_BINS: usize = 256;

/// The four §3.4 features of one trace window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowFeatures {
    /// Read bandwidth over the window, bytes/second.
    pub read_bw: f64,
    /// Write bandwidth over the window, bytes/second.
    pub write_bw: f64,
    /// Shannon entropy (bits) of the logical-page-address histogram;
    /// low values mean high locality.
    pub lpa_entropy: f64,
    /// Mean request size in bytes.
    pub avg_io_size: f64,
}

impl WindowFeatures {
    /// The features as a vector for clustering, in a stable order.
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.read_bw,
            self.write_bw,
            self.lpa_entropy,
            self.avg_io_size,
        ]
    }
}

/// Extracts the four features from one window of trace records.
///
/// `address_space` bounds the offsets (for entropy binning); records are
/// assumed time-ordered. Returns `None` for windows with fewer than two
/// records or zero duration (no rate can be computed).
pub fn extract_features(records: &[TraceRecord], address_space: u64) -> Option<WindowFeatures> {
    if records.len() < 2 || address_space == 0 {
        return None;
    }
    let span = records
        .last()
        .expect("non-empty")
        .at
        .saturating_since(records[0].at)
        .as_secs_f64();
    if span <= 0.0 {
        return None;
    }
    let mut read_bytes = 0u64;
    let mut write_bytes = 0u64;
    let mut hist = vec![0u64; ENTROPY_BINS];
    let bin_size = (address_space / ENTROPY_BINS as u64).max(1);
    for r in records {
        if r.is_read {
            read_bytes += r.len;
        } else {
            write_bytes += r.len;
        }
        let bin = ((r.offset / bin_size) as usize).min(ENTROPY_BINS - 1);
        hist[bin] += 1;
    }
    let n = records.len() as f64;
    let entropy = hist
        .iter()
        .filter(|c| **c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum();
    Some(WindowFeatures {
        read_bw: read_bytes as f64 / span,
        write_bw: write_bytes as f64 / span,
        lpa_entropy: entropy,
        avg_io_size: (read_bytes + write_bytes) as f64 / n,
    })
}

/// Splits a trace into consecutive windows of `window` requests and
/// extracts features from each complete window.
pub fn windowed_features(
    records: &[TraceRecord],
    address_space: u64,
    window: usize,
) -> Vec<WindowFeatures> {
    assert!(window >= 2, "window must hold at least two requests");
    records
        .chunks_exact(window)
        .filter_map(|w| extract_features(w, address_space))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::SimTime;

    fn rec(at_us: u64, is_read: bool, offset: u64, len: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_micros(at_us),
            is_read,
            offset,
            len,
        }
    }

    #[test]
    fn bandwidth_and_size_math() {
        // 2 reads of 1 MB + 2 writes of 1 MB over 1 second.
        let recs = vec![
            rec(0, true, 0, 1 << 20),
            rec(300_000, false, 1 << 20, 1 << 20),
            rec(600_000, true, 2 << 20, 1 << 20),
            rec(1_000_000, false, 3 << 20, 1 << 20),
        ];
        let f = extract_features(&recs, 1 << 30).unwrap();
        assert!((f.read_bw - 2.0 * (1 << 20) as f64).abs() < 1.0);
        assert!((f.write_bw - 2.0 * (1 << 20) as f64).abs() < 1.0);
        assert_eq!(f.avg_io_size, (1 << 20) as f64);
    }

    #[test]
    fn entropy_low_for_single_location_high_for_spread() {
        let hot: Vec<TraceRecord> = (0..1000).map(|i| rec(i * 100, true, 0, 4096)).collect();
        let spread: Vec<TraceRecord> = (0..1000)
            .map(|i| rec(i * 100, true, (i % 256) * (1 << 22), 4096))
            .collect();
        let space = 256u64 << 22;
        let f_hot = extract_features(&hot, space).unwrap();
        let f_spread = extract_features(&spread, space).unwrap();
        assert!(
            f_hot.lpa_entropy < 0.01,
            "hot entropy {}",
            f_hot.lpa_entropy
        );
        assert!(
            f_spread.lpa_entropy > 7.5,
            "spread entropy {}",
            f_spread.lpa_entropy
        );
    }

    #[test]
    fn short_or_instant_windows_return_none() {
        assert!(extract_features(&[], 1 << 20).is_none());
        assert!(extract_features(&[rec(0, true, 0, 4096)], 1 << 20).is_none());
        let same_instant = vec![rec(5, true, 0, 4096), rec(5, true, 0, 4096)];
        assert!(extract_features(&same_instant, 1 << 20).is_none());
    }

    #[test]
    fn windowed_features_chunks_complete_windows() {
        let recs: Vec<TraceRecord> = (0..25)
            .map(|i| rec(i * 1000, true, i * 4096, 4096))
            .collect();
        let feats = windowed_features(&recs, 1 << 20, 10);
        assert_eq!(feats.len(), 2); // 25 / 10 → 2 complete windows
    }

    #[test]
    fn feature_vector_order_is_stable() {
        let f = WindowFeatures {
            read_bw: 1.0,
            write_bw: 2.0,
            lpa_entropy: 3.0,
            avg_io_size: 4.0,
        };
        assert_eq!(f.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }
}
