//! Fleet-level determinism acceptance tests:
//!
//! * a 64-vSSD fleet produces byte-identical per-shard observability
//!   streams and identical migration logs for 1, 2 and 8 worker
//!   threads (the CI determinism matrix);
//! * two same-seed fleet runs recorded through per-shard `StoreSink`s
//!   diff as `Identical` — the fleet layer composes with the run store
//!   without disturbing its byte-exactness guarantee.

use std::path::PathBuf;

use fleetio_fleet::{default_model, FleetRuntime, FleetSpec};
use fleetio_store::{diff_stores, DiffOutcome, RunStore, StoreSink};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleetio-fleet-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The CI fleet (16 shards × 4 slots = 64 vSSDs, 56 tenants) trimmed
/// to two windows so the debug-build matrix stays fast.
fn matrix_spec(seed: u64) -> FleetSpec {
    let mut spec = FleetSpec::ci(seed);
    spec.windows = 2;
    spec
}

#[test]
fn worker_thread_count_never_changes_a_64_vssd_fleet() {
    let spec = matrix_spec(41);
    assert_eq!(spec.total_slots(), 64);
    // 1, 2 and 8 workers, plus a same-seed rerun at 2 workers: every
    // run must be byte-identical, including the SLO time-series and
    // the rendered health report.
    let mut baseline = None;
    for workers in [1usize, 2, 8, 2] {
        let mut rt = FleetRuntime::new(&spec, default_model(7), workers);
        rt.install_fingerprint_sinks();
        let report = rt.run();
        let fingerprints = rt.take_fingerprints();
        let health = rt.health_report();
        let series_csv = rt.series().to_csv();
        let series_jsonl = rt.series().to_jsonl();
        assert!(
            fingerprints.iter().all(|&(_, events)| events > 0),
            "every shard must emit events"
        );
        assert!(
            health.contains("FLEET HEALTH REPORT"),
            "health report renders"
        );
        assert!(!series_csv.is_empty(), "series recorded");
        match &baseline {
            None => baseline = Some((report, fingerprints, health, series_csv, series_jsonl)),
            Some((r0, f0, h0, c0, j0)) => {
                assert_eq!(
                    &report.migrations, &r0.migrations,
                    "{workers} workers changed the migration log"
                );
                assert_eq!(
                    &report, r0,
                    "{workers} workers changed the merged window reports"
                );
                assert_eq!(
                    &fingerprints, f0,
                    "{workers} workers changed a per-shard obs stream"
                );
                assert_eq!(
                    &health, h0,
                    "{workers} workers changed the rendered health report"
                );
                assert_eq!(
                    &series_csv, c0,
                    "{workers} workers changed the SLO time-series (CSV)"
                );
                assert_eq!(
                    &series_jsonl, j0,
                    "{workers} workers changed the SLO time-series (JSONL)"
                );
            }
        }
    }
}

#[test]
fn same_seed_fleet_stores_diff_as_identical() {
    let spec = FleetSpec::sized(23, 2, 2, 3);
    let record = |tag: &str| -> Vec<PathBuf> {
        let dirs: Vec<PathBuf> = (0..spec.shards)
            .map(|s| tmp(&format!("{tag}-shard{s}")))
            .collect();
        let mut rt = FleetRuntime::new(&spec, default_model(7), 2);
        for (s, dir) in dirs.iter().enumerate() {
            let sink = StoreSink::create(
                dir,
                spec.encode(),
                spec.fingerprint(),
                spec.seed,
                spec.window.as_nanos(),
                32 * 1024,
            )
            .expect("create store");
            rt.set_shard_sink(s, Box::new(sink));
        }
        rt.run();
        for s in 0..spec.shards as usize {
            let sink = rt
                .take_shard_sink(s)
                .into_any()
                .downcast::<StoreSink>()
                .expect("shard sink is a StoreSink");
            let manifest = sink.finish().expect("seal store");
            assert!(manifest.sealed);
            assert!(manifest.total_events > 0);
        }
        dirs
    };
    let a = record("a");
    let b = record("b");
    for (da, db) in a.iter().zip(&b) {
        let sa = RunStore::open(da).expect("open a");
        let sb = RunStore::open(db).expect("open b");
        match diff_stores(&sa, &sb).expect("diff") {
            DiffOutcome::Identical { events } => {
                assert_eq!(events, sa.manifest().total_events);
            }
            DiffOutcome::Diverged(d) => {
                panic!("same-seed fleet stores diverged at event {}", d.index)
            }
        }
    }
    for dir in a.iter().chain(&b) {
        std::fs::remove_dir_all(dir).ok();
    }
}
