//! One fleet shard: an SSD engine with fixed vSSD slots that tenants
//! attach to and detach from at window boundaries.
//!
//! The tick loop is `fleetio::Colocation::run_window` adapted to
//! optional occupancy: empty slots stay provisioned (their window
//! summaries flush as idle), and a freshly detached slot keeps
//! completing in-flight requests — the drain the control plane waits
//! out before reusing the slot. Migration is control-plane only: no
//! engine state moves, the tenant's generator restarts at the
//! destination from an epoch-derived seed, fast-forwarded to the
//! shard's current simulated time.

use fleetio_des::window::WindowSummary;
use fleetio_des::{LatencyHistogram, SimDuration};
use fleetio_obs::{ObsEvent, ObsSink};
use fleetio_vssd::engine::{Engine, EngineConfig, VssdSnapshot};
use fleetio_vssd::request::{IoOp, IoRequest};
use fleetio_vssd::vssd::{VssdConfig, VssdId};
use fleetio_workloads::gen::ClosedLoopWorkload;
use fleetio_workloads::{SyntheticWorkload, TraceRecord, WorkloadKind};

use fleetio::actions::AgentAction;

#[derive(Debug)]
enum Source {
    Open(SyntheticWorkload),
    Closed {
        gen: ClosedLoopWorkload,
        outstanding: u32,
    },
}

#[derive(Debug)]
struct Resident {
    tenant: u32,
    kind: WorkloadKind,
    source: Source,
    trace: Vec<TraceRecord>,
}

#[derive(Debug)]
struct Slot {
    vssd: VssdId,
    resident: Option<Resident>,
}

/// One shard's per-window report: all slots in slot order, occupied or
/// not, plus the engine's cumulative event counter.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardWindowReport {
    /// The shard index.
    pub shard: u32,
    /// Resident tenant per slot at window end (`None` = empty).
    pub tenants: Vec<Option<u32>>,
    /// Per-slot window summaries, slot order.
    pub summaries: Vec<(VssdId, WindowSummary)>,
    /// Per-slot engine snapshots at window end, slot order.
    pub snapshots: Vec<VssdSnapshot>,
    /// Per-slot exact-bucket request-latency histograms for the window,
    /// slot order — the fleet's SLO substrate, captured just before the
    /// window flush resets the accumulator.
    pub latencies: Vec<LatencyHistogram>,
    /// Queued page operations across all slots at window end (the
    /// shard's backlog gauge).
    pub queue_depth: u64,
    /// Cumulative engine events processed (monotone across windows).
    pub events_processed: u64,
}

/// One SSD of the fleet.
#[derive(Debug)]
pub struct Shard {
    id: u32,
    engine: Engine,
    slots: Vec<Slot>,
    window: SimDuration,
    tick: SimDuration,
    trace_cap: usize,
}

impl Shard {
    /// Builds a shard whose engine carves its channels into
    /// `slot_configs` hardware-isolated vSSD slots.
    ///
    /// # Panics
    ///
    /// Panics on configurations the engine rejects and on a zero
    /// window.
    pub fn new(
        id: u32,
        engine_cfg: EngineConfig,
        slot_configs: Vec<VssdConfig>,
        window: SimDuration,
    ) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        let slots = slot_configs
            .iter()
            .map(|c| Slot {
                vssd: c.id,
                resident: None,
            })
            .collect();
        Shard {
            id,
            engine: Engine::new(engine_cfg, slot_configs),
            slots,
            window,
            tick: SimDuration::from_millis(1),
            trace_cap: 100_000,
        }
    }

    /// The shard index.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of slots.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// The engine's current simulated time.
    pub fn now(&self) -> fleetio_des::SimTime {
        self.engine.now()
    }

    /// The resident tenant of `slot`, if any.
    pub fn tenant_at(&self, slot: usize) -> Option<u32> {
        self.slots[slot].resident.as_ref().map(|r| r.tenant)
    }

    /// The workload kind running in `slot`, if occupied.
    pub fn kind_at(&self, slot: usize) -> Option<WorkloadKind> {
        self.slots[slot].resident.as_ref().map(|r| r.kind)
    }

    /// The I/O trace collected for the resident of `slot` (newest
    /// requests up to an internal cap), for workload typing at
    /// migration time.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn trace_at(&self, slot: usize) -> &[TraceRecord] {
        &self.slots[slot]
            .resident
            .as_ref()
            .expect("slot is occupied")
            .trace
    }

    /// The logical capacity of `slot`'s vSSD in bytes.
    pub fn slot_capacity_bytes(&self, slot: usize) -> u64 {
        self.engine.logical_capacity_bytes(self.slots[slot].vssd)
    }

    /// Pre-fills every slot to `fraction` of its logical space.
    pub fn warm_up_all(&mut self, fraction: f64) {
        for i in 0..self.slots.len() {
            let vssd = self.slots[i].vssd;
            self.engine.warm_up(vssd, fraction);
        }
    }

    /// Attaches `tenant` running `kind` to `slot`, its generator seeded
    /// with `seed` and fast-forwarded to the shard's current time (the
    /// open-loop clock starts *now*, not at zero). `phase_rotation`
    /// rotates the kind's phase cycle left so the tenant starts mid-job
    /// (see [`fleetio_workloads::WorkloadSpec::rotate_phases`]).
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied.
    pub fn attach(
        &mut self,
        slot: usize,
        tenant: u32,
        kind: WorkloadKind,
        seed: u64,
        phase_rotation: u32,
    ) {
        assert!(
            self.slots[slot].resident.is_none(),
            "slot {}/{slot} is occupied",
            self.id
        );
        let vssd = self.slots[slot].vssd;
        let capacity = self.engine.logical_capacity_bytes(vssd);
        let mut spec = kind.spec();
        spec.rotate_phases(phase_rotation as usize);
        let source = if spec.is_closed_loop() {
            Source::Closed {
                gen: ClosedLoopWorkload::new(spec, capacity, seed),
                outstanding: 0,
            }
        } else {
            let mut gen = SyntheticWorkload::new(spec, capacity, seed);
            let _ = gen.requests_until(self.engine.now());
            Source::Open(gen)
        };
        self.slots[slot].resident = Some(Resident {
            tenant,
            kind,
            source,
            trace: Vec::new(),
        });
    }

    /// Detaches the resident of `slot`, returning the tenant index and
    /// its collected trace. In-flight requests drain naturally over the
    /// following window; the control plane holds the slot out of
    /// service until then.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn detach(&mut self, slot: usize) -> (u32, Vec<TraceRecord>) {
        let resident = self.slots[slot]
            .resident
            .take()
            .expect("detach of an empty slot");
        (resident.tenant, resident.trace)
    }

    /// Applies one tenant's RL decision to `slot`: priority plus the
    /// two harvest admission actions, denominated in channels of
    /// bandwidth exactly as `fleetio::env` does.
    pub fn apply_action(&mut self, slot: usize, action: AgentAction) {
        let vssd = self.slots[slot].vssd;
        let ch_bw = self.engine.channel_peak_bytes_per_sec();
        self.engine.set_priority(vssd, action.priority);
        self.engine
            .submit_action(action.make_harvestable_action(vssd, ch_bw));
        self.engine
            .submit_action(action.harvest_action(vssd, ch_bw));
    }

    /// Installs an observability sink on the shard's engine, returning
    /// the previous one. Per-shard streams are deterministic regardless
    /// of which worker thread advances the shard.
    pub fn set_obs_sink(&mut self, sink: Box<dyn ObsSink>) -> Box<dyn ObsSink> {
        self.engine.set_obs_sink(sink)
    }

    /// Removes the shard's sink (restoring the no-op default).
    pub fn take_obs_sink(&mut self) -> Box<dyn ObsSink> {
        self.engine.take_obs_sink()
    }

    /// Cumulative engine events processed.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Advances one decision window and freezes every slot's summary
    /// (idle slots flush as idle — the fleet's merge sees a fixed-shape
    /// report every window).
    pub fn run_window(&mut self) -> ShardWindowReport {
        let end = self.engine.now() + self.window;
        while self.engine.now() < end {
            let t = (self.engine.now() + self.tick).min(end);
            // Open-loop arrivals up to t.
            for slot in &mut self.slots {
                let Some(res) = slot.resident.as_mut() else {
                    continue;
                };
                if let Source::Open(gen) = &mut res.source {
                    for rec in gen.requests_until(t) {
                        push_trace(&mut res.trace, self.trace_cap, rec);
                        self.engine.submit(to_request(slot.vssd, rec));
                    }
                }
            }
            self.engine.run_until(t);
            // Account completions against closed-loop windows. A
            // completion on a detached slot belongs to a drained
            // tenant; nothing to account.
            for c in self.engine.drain_completed() {
                if let Some(slot) = self.slots.iter_mut().find(|s| s.vssd == c.vssd) {
                    if let Some(Resident {
                        source: Source::Closed { outstanding, .. },
                        ..
                    }) = slot.resident.as_mut()
                    {
                        *outstanding = outstanding.saturating_sub(1);
                    }
                }
            }
            // Top closed-loop sources up to their phase concurrency.
            let now = self.engine.now();
            for slot in &mut self.slots {
                let Some(res) = slot.resident.as_mut() else {
                    continue;
                };
                if let Source::Closed { gen, outstanding } = &mut res.source {
                    let target = gen.concurrency_at(now);
                    while *outstanding < target {
                        let rec = gen.make_request(now);
                        push_trace(&mut res.trace, self.trace_cap, rec);
                        self.engine.submit(to_request(slot.vssd, rec));
                        *outstanding += 1;
                    }
                }
            }
        }
        // Latency histograms and queue depths are read before
        // `finish_window` resets the per-window accumulators.
        let latencies: Vec<LatencyHistogram> = self
            .slots
            .iter()
            .map(|s| self.engine.window_latency(s.vssd).clone())
            .collect();
        let queue_depth = self
            .slots
            .iter()
            .map(|s| self.engine.queued_ops(s.vssd) as u64)
            .sum();
        let summaries: Vec<(VssdId, WindowSummary)> = self
            .slots
            .iter()
            .map(|s| s.vssd)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|vssd| (vssd, self.engine.finish_window(vssd)))
            .collect();
        let snapshots = self
            .slots
            .iter()
            .map(|s| self.engine.snapshot(s.vssd))
            .collect();
        ShardWindowReport {
            shard: self.id,
            tenants: self
                .slots
                .iter()
                .map(|s| s.resident.as_ref().map(|r| r.tenant))
                .collect(),
            summaries,
            snapshots,
            latencies,
            queue_depth,
            events_processed: self.engine.events_processed(),
        }
    }

    /// Records a control-plane event (SLO verdict, migration) into the
    /// shard's obs stream. Called only from the fleet's serial phases,
    /// so per-shard streams stay deterministic across worker counts.
    pub fn emit_obs(&mut self, ev: ObsEvent) {
        self.engine.emit_obs(ev);
    }
}

fn to_request(vssd: VssdId, rec: TraceRecord) -> IoRequest {
    IoRequest {
        vssd,
        op: if rec.is_read { IoOp::Read } else { IoOp::Write },
        offset: rec.offset,
        len: rec.len,
        arrival: rec.at,
    }
}

fn push_trace(trace: &mut Vec<TraceRecord>, cap: usize, rec: TraceRecord) {
    if trace.len() >= cap {
        // Keep the newest half when full.
        let half = cap / 2;
        trace.drain(..half);
    }
    trace.push(rec);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_flash::addr::ChannelId;
    use fleetio_flash::config::FlashConfig;

    fn shard() -> Shard {
        let cfg = EngineConfig {
            flash: FlashConfig::training_test(),
            ..Default::default()
        };
        let slots = (0..4u16)
            .map(|i| {
                VssdConfig::hardware(VssdId(u32::from(i)), vec![ChannelId(i)])
                    .with_slo(SimDuration::from_millis(2))
            })
            .collect();
        Shard::new(0, cfg, slots, SimDuration::from_millis(500))
    }

    #[test]
    fn empty_slots_report_idle_windows() {
        let mut s = shard();
        let report = s.run_window();
        assert_eq!(report.summaries.len(), 4);
        assert_eq!(report.tenants, vec![None; 4]);
        assert!(report.summaries.iter().all(|(_, w)| w.total_ops == 0));
    }

    #[test]
    fn attached_tenant_produces_traffic_and_trace() {
        let mut s = shard();
        s.attach(1, 7, WorkloadKind::Ycsb, 99, 0);
        assert_eq!(s.tenant_at(1), Some(7));
        let report = s.run_window();
        assert!(report.summaries[1].1.total_ops > 0);
        assert_eq!(report.summaries[0].1.total_ops, 0);
        assert!(!s.trace_at(1).is_empty());
        assert_eq!(report.tenants[1], Some(7));
    }

    #[test]
    fn detach_drains_and_slot_reattaches() {
        let mut s = shard();
        s.attach(0, 3, WorkloadKind::TeraSort, 5, 0);
        s.run_window();
        let (tenant, trace) = s.detach(0);
        assert_eq!(tenant, 3);
        assert!(!trace.is_empty());
        // Drain window: in-flight requests finish, no new arrivals.
        s.run_window();
        let quiet = s.run_window();
        assert_eq!(quiet.summaries[0].1.total_ops, 0, "slot fully drained");
        // The slot is reusable; the open-loop clock starts at now.
        s.attach(0, 9, WorkloadKind::Ycsb, 6, 0);
        let busy = s.run_window();
        assert!(busy.summaries[0].1.total_ops > 0);
    }

    #[test]
    #[should_panic(expected = "is occupied")]
    fn double_attach_panics() {
        let mut s = shard();
        s.attach(0, 1, WorkloadKind::Ycsb, 1, 0);
        s.attach(0, 2, WorkloadKind::Ycsb, 2, 0);
    }

    #[test]
    fn same_seed_shards_report_identically() {
        let run = || {
            let mut s = shard();
            s.attach(0, 0, WorkloadKind::Ycsb, 11, 0);
            s.attach(2, 1, WorkloadKind::TeraSort, 12, 0);
            (0..3).map(|_| s.run_window()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
