//! Serializable fleet specifications.
//!
//! A [`FleetSpec`] is everything needed to re-create a fleet run
//! bit-identically: the per-shard flash preset and slot carving, every
//! tenant's workload + root seed, the decision window, the placement
//! policy and the control-plane thresholds. Like `fleetio::RunSpec` it
//! binary-encodes via the `FIOM` payload codec and pins a CRC-32
//! [`FleetSpec::fingerprint`]; per-shard `StoreSink` manifests embed the
//! encoding so stored fleet shards are diffable and attributable.

use fleetio::runspec::FlashPreset;
use fleetio_des::rng::{derive_seed_indexed, stream, Rng};
use fleetio_des::SimDuration;
use fleetio_model::codec::{Dec, DecodeError, Enc};
use fleetio_obs::SloSpec;
use fleetio_workloads::WorkloadKind;

use crate::control::SlotAddr;

/// One fleet tenant: a workload stream that can move between slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetTenantSpec {
    /// The workload to run.
    pub kind: WorkloadKind,
    /// The tenant's root seed. Each (re-)attach derives its generator
    /// stream as `derive_seed_indexed(seed, "fleet-attach", epoch)`, so
    /// a migrated tenant's traffic stays deterministic without replaying
    /// the source shard's consumed stream.
    pub seed: u64,
    /// The tenant's service-level objective, evaluated every decision
    /// window at the fleet merge. `None` exempts the tenant from SLO
    /// accounting (it still appears in the health report as untracked).
    pub slo: Option<SloSpec>,
    /// Phases to rotate the workload's cycle left at attach: the tenant
    /// starts mid-job instead of at its first phase, so a fleet of
    /// batch tenants need not all begin with the same scan. Taken
    /// modulo the kind's phase count; `0` starts at the natural first
    /// phase. Preserved across migrations.
    pub phase_rotation: u32,
}

/// How tenants map to slots at fleet start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Tenant `i` fills shard `i / slots_per_shard`, slot
    /// `i % slots_per_shard` — adjacent tenants share an SSD. Used by
    /// the hotspot demo to engineer an overloaded shard.
    Packed,
    /// A seeded Fisher–Yates shuffle of all slots (stream label
    /// `"fleet-placement"` off the fleet seed) — the deterministic
    /// stand-in for a fleet scheduler's initial spread.
    Shuffled,
}

impl Placement {
    fn tag(self) -> u8 {
        match self {
            Placement::Packed => 0,
            Placement::Shuffled => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, DecodeError> {
        match tag {
            0 => Ok(Placement::Packed),
            1 => Ok(Placement::Shuffled),
            other => Err(DecodeError::Malformed(format!("placement tag {other}"))),
        }
    }
}

/// A self-contained, serializable description of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Per-shard flash geometry preset (each shard is one such SSD).
    pub flash: FlashPreset,
    /// Number of shards (independent SSD engines).
    pub shards: u32,
    /// Fixed vSSD slots per shard. Must divide the preset's channel
    /// count; slot `i` owns the `i`-th contiguous channel group,
    /// hardware-isolated.
    pub slots_per_shard: u32,
    /// SLO applied to every slot (tenants inherit the slot's SLO while
    /// resident; slots are provisioned identically so tenants can move).
    pub slot_slo: Option<SimDuration>,
    /// The tenants. At most `shards × slots_per_shard`; fewer leaves
    /// free slots as migration headroom.
    pub tenants: Vec<FleetTenantSpec>,
    /// Decision-window length.
    pub window: SimDuration,
    /// Pre-fill fraction for every slot before the run starts.
    pub warm_fraction: f64,
    /// Decision windows to run.
    pub windows: u32,
    /// Initial tenant→slot placement policy.
    pub placement: Placement,
    /// Fleet seed: placement shuffle and any fleet-level derived streams.
    pub seed: u64,
    /// Shard utilization (fraction of its peak bandwidth) above which it
    /// is hotspot-eligible.
    pub hot_util: f64,
    /// A hot shard must also exceed `spread_factor ×` the fleet-mean
    /// utilization (guards against "everything is busy" churn).
    pub spread_factor: f64,
    /// Migration budget per window boundary.
    pub max_migrations_per_window: u32,
    /// Windows a migrated tenant stays put before it may move again.
    pub migration_cooldown: u32,
    /// Decision windows the control plane observes before it plans its
    /// first migration — a burn-in so placement reacts to steady-state
    /// statistics rather than the start-up transient. `0` plans from
    /// the first boundary.
    pub migration_warmup: u32,
}

impl FleetSpec {
    /// A parameterized mixed-fleet scenario: `shards × slots_per_shard`
    /// vSSDs with `n_tenants` tenants cycling through a catalogue biased
    /// to open-loop (latency-sensitive) workloads, shuffled placement.
    ///
    /// # Panics
    ///
    /// Panics if `n_tenants` exceeds the slot count (see
    /// [`FleetSpec::validate`], checked on build).
    pub fn sized(seed: u64, shards: u32, slots_per_shard: u32, n_tenants: u32) -> Self {
        // One bandwidth-intensive closed loop per eight tenants keeps
        // runtime CI-friendly while exercising both source kinds.
        let kinds = [
            WorkloadKind::Ycsb,
            WorkloadKind::Tpce,
            WorkloadKind::VdiWeb,
            WorkloadKind::LiveMaps,
            WorkloadKind::SearchEngine,
            WorkloadKind::Ycsb,
            WorkloadKind::Tpce,
            WorkloadKind::TeraSort,
        ];
        let tenants = (0..n_tenants)
            .map(|i| {
                let kind = kinds[i as usize % kinds.len()];
                FleetTenantSpec {
                    kind,
                    seed: derive_seed_indexed(seed, "fleet-tenant", u64::from(i)),
                    slo: Some(Self::slo_for(kind)),
                    phase_rotation: 0,
                }
            })
            .collect();
        FleetSpec {
            flash: FlashPreset::TrainingTest,
            shards,
            slots_per_shard,
            slot_slo: Some(SimDuration::from_millis(2)),
            tenants,
            window: SimDuration::from_millis(500),
            warm_fraction: 0.4,
            windows: 6,
            placement: Placement::Shuffled,
            seed,
            hot_util: 0.5,
            spread_factor: 1.5,
            max_migrations_per_window: 2,
            migration_cooldown: 2,
            migration_warmup: 0,
        }
    }

    /// The SLO the sized presets give latency-sensitive (open-loop)
    /// tenants: p95/p99 window targets sized to the TrainingTest
    /// preset's quiet-shard latency envelope — attained on a calm
    /// shard, violated under a noisy neighbor.
    pub fn default_tenant_slo() -> SloSpec {
        SloSpec::latency(SimDuration::from_millis(25), SimDuration::from_millis(100))
    }

    /// The SLO the sized presets give bandwidth-intensive (closed-loop)
    /// tenants: a throughput floor with latency targets loose enough
    /// that a batch tenant is judged on bytes moved, not tail latency.
    pub fn batch_tenant_slo() -> SloSpec {
        SloSpec::latency(SimDuration::from_secs(10), SimDuration::from_secs(30))
            .with_throughput_floor(1_000_000.0)
    }

    /// The preset SLO for `kind` (see [`FleetSpec::default_tenant_slo`]
    /// and [`FleetSpec::batch_tenant_slo`]).
    pub fn slo_for(kind: WorkloadKind) -> SloSpec {
        if kind.spec().is_closed_loop() {
            Self::batch_tenant_slo()
        } else {
            Self::default_tenant_slo()
        }
    }

    /// The CI fleet: 16 shards × 4 single-channel slots = 64 vSSDs, with
    /// 56 tenants leaving 8 free slots as migration headroom.
    pub fn ci(seed: u64) -> Self {
        Self::sized(seed, 16, 4, 56)
    }

    /// The hotspot-consolidation demo: 64 vSSDs, packed placement with
    /// three heavy closed-loop tenants listed first so they pile onto
    /// the first shard alongside one latency-sensitive victim (tenant 3,
    /// slot 0/3) — an engineered overload the control plane must spread
    /// out, and the SLO story the health report tells: the victim
    /// violates its latency SLO while the heavies crush the shard and
    /// recovers once they migrate away.
    ///
    /// The heavies are rotated to start mid-job, in their write phases
    /// (every batch kind opens with a read scan, so a pack that all
    /// starts at phase zero would not pressure its neighbor until after
    /// the control plane had already reacted to the read burst). The
    /// rest of the fleet runs light interactive kinds only, so the
    /// packed shard stays the hottest until it has shed every heavy.
    pub fn hotspot(seed: u64) -> Self {
        let mut spec = Self::sized(seed, 16, 4, 48);
        // TeraSort rotated into its shuffle spill, MlPrep into its
        // tensor write, PageRank into its shard rewrite: all three are
        // writing from the first window.
        let heavy = [
            (WorkloadKind::TeraSort, 1),
            (WorkloadKind::MlPrep, 2),
            (WorkloadKind::PageRank, 2),
        ];
        for (i, (kind, rot)) in heavy.into_iter().enumerate() {
            spec.tenants[i].kind = kind;
            spec.tenants[i].phase_rotation = rot;
        }
        // The victim: a genuinely light interactive tenant in the last
        // hot-shard slot (the sized catalogue would put bandwidth-heavy
        // LiveMaps there, which would drown the interference signal in
        // its own queueing).
        spec.tenants[3].kind = WorkloadKind::VdiWeb;
        // Everything after the hot pack is light and interactive, so
        // the migration budget is never spent elsewhere.
        for t in spec.tenants.iter_mut().skip(4) {
            t.kind = match t.kind {
                WorkloadKind::TeraSort | WorkloadKind::LiveMaps => WorkloadKind::VdiWeb,
                WorkloadKind::SearchEngine => WorkloadKind::Tpce,
                other => other,
            };
        }
        // Kinds changed above; re-derive the preset SLOs to match.
        for t in spec.tenants.iter_mut() {
            t.slo = Some(Self::slo_for(t.kind));
        }
        spec.placement = Placement::Packed;
        spec.windows = 8;
        // Observe four windows before migrating — long enough for the
        // victim's violations to be on the books — then drain the hot
        // shard over the following boundaries: even one resident heavy
        // keeps harvesting the victim's channel, so the story needs all
        // three gone. The packed shard stays above 0.35 utilization
        // until then; the light shards never reach it.
        spec.migration_warmup = 4;
        spec.hot_util = 0.35;
        // The interactive fleet idles near 0.4 mean utilization; the
        // stock 1.5× spread guard would mask the packed shard once its
        // first heavy left.
        spec.spread_factor = 1.25;
        spec
    }

    /// Total provisioned vSSD slots.
    pub fn total_slots(&self) -> u32 {
        self.shards * self.slots_per_shard
    }

    /// Channels each slot owns under the preset geometry.
    pub fn channels_per_slot(&self) -> u16 {
        self.flash.config().channels / self.slots_per_shard as u16
    }

    /// One shard's peak bandwidth in bytes/second (all channels).
    pub fn shard_peak_bytes_per_sec(&self) -> f64 {
        let flash = self.flash.config();
        flash.channel_peak_bytes_per_sec() * f64::from(flash.channels)
    }

    /// Structural validation; [`crate::FleetRuntime::new`] and
    /// [`FleetSpec::decode`] both go through here.
    ///
    /// # Errors
    ///
    /// A message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 || self.slots_per_shard == 0 {
            return Err("need at least one shard and one slot".to_string());
        }
        if self.shards > 4096 {
            return Err(format!("implausible shard count {}", self.shards));
        }
        let channels = self.flash.config().channels;
        if self.slots_per_shard > u32::from(channels)
            || u32::from(channels) % self.slots_per_shard != 0
        {
            return Err(format!(
                "{} slots cannot evenly carve {channels} channels",
                self.slots_per_shard
            ));
        }
        if self.tenants.is_empty() {
            return Err("need at least one tenant".to_string());
        }
        if self.tenants.len() as u32 > self.total_slots() {
            return Err(format!(
                "{} tenants exceed {} slots",
                self.tenants.len(),
                self.total_slots()
            ));
        }
        if self.window.is_zero() {
            return Err("window must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.warm_fraction) {
            return Err(format!("warm fraction {}", self.warm_fraction));
        }
        if self.windows == 0 {
            return Err("need at least one window".to_string());
        }
        if !(self.hot_util > 0.0 && self.hot_util.is_finite()) {
            return Err(format!("hot_util {}", self.hot_util));
        }
        if !(self.spread_factor >= 1.0 && self.spread_factor.is_finite()) {
            return Err(format!("spread_factor {}", self.spread_factor));
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if let Some(slo) = &t.slo {
                slo.validate().map_err(|e| format!("tenant {i} SLO: {e}"))?;
            }
        }
        Ok(())
    }

    /// The initial tenant→slot placement, tenant-index order.
    pub fn initial_placement(&self) -> Vec<SlotAddr> {
        let mut slots: Vec<SlotAddr> = (0..self.shards)
            .flat_map(|s| (0..self.slots_per_shard).map(move |l| SlotAddr { shard: s, slot: l }))
            .collect();
        if self.placement == Placement::Shuffled {
            stream(self.seed, "fleet-placement").shuffle(&mut slots);
        }
        slots.truncate(self.tenants.len());
        slots
    }

    /// Encodes the spec as a flat `FIOM`-style payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u8(self.flash.wire_tag());
        enc.u32(self.shards);
        enc.u32(self.slots_per_shard);
        match self.slot_slo {
            Some(slo) => {
                enc.bool(true);
                enc.u64(slo.as_nanos());
            }
            None => enc.bool(false),
        }
        enc.u64(self.window.as_nanos());
        enc.f64(self.warm_fraction);
        enc.u32(self.windows);
        enc.u8(self.placement.tag());
        enc.u64(self.seed);
        enc.f64(self.hot_util);
        enc.f64(self.spread_factor);
        enc.u32(self.max_migrations_per_window);
        enc.u32(self.migration_cooldown);
        enc.u32(self.migration_warmup);
        enc.usize(self.tenants.len());
        for t in &self.tenants {
            enc.str(t.kind.name());
            enc.u64(t.seed);
            match &t.slo {
                Some(slo) => {
                    enc.bool(true);
                    enc.u64(slo.p95_target.as_nanos());
                    enc.u64(slo.p99_target.as_nanos());
                    enc.f64(slo.throughput_floor);
                }
                None => enc.bool(false),
            }
            enc.u32(t.phase_rotation);
        }
        enc.into_bytes()
    }

    /// Decodes a spec written by [`FleetSpec::encode`].
    ///
    /// # Errors
    ///
    /// Truncation, trailing bytes, unknown preset/workload/placement
    /// tags, or a spec failing [`FleetSpec::validate`].
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Dec::new(payload);
        let flash = FlashPreset::from_wire_tag(dec.u8()?)?;
        let shards = dec.u32()?;
        let slots_per_shard = dec.u32()?;
        let slot_slo = if dec.bool()? {
            Some(SimDuration::from_nanos(dec.u64()?))
        } else {
            None
        };
        let window = SimDuration::from_nanos(dec.u64()?);
        let warm_fraction = dec.f64()?;
        let windows = dec.u32()?;
        let placement = Placement::from_tag(dec.u8()?)?;
        let seed = dec.u64()?;
        let hot_util = dec.f64()?;
        let spread_factor = dec.f64()?;
        let max_migrations_per_window = dec.u32()?;
        let migration_cooldown = dec.u32()?;
        let migration_warmup = dec.u32()?;
        let n_tenants = dec.usize()?;
        if n_tenants > 65_536 {
            return Err(DecodeError::Malformed(format!(
                "implausible tenant count {n_tenants}"
            )));
        }
        let mut tenants = Vec::with_capacity(n_tenants);
        for _ in 0..n_tenants {
            let kind_name = dec.str()?;
            let kind = WorkloadKind::from_name(&kind_name)
                .ok_or_else(|| DecodeError::Malformed(format!("unknown workload {kind_name}")))?;
            let t_seed = dec.u64()?;
            let slo = if dec.bool()? {
                Some(SloSpec {
                    p95_target: SimDuration::from_nanos(dec.u64()?),
                    p99_target: SimDuration::from_nanos(dec.u64()?),
                    throughput_floor: dec.f64()?,
                })
            } else {
                None
            };
            let phase_rotation = dec.u32()?;
            tenants.push(FleetTenantSpec {
                kind,
                seed: t_seed,
                slo,
                phase_rotation,
            });
        }
        dec.finish()?;
        let spec = FleetSpec {
            flash,
            shards,
            slots_per_shard,
            slot_slo,
            tenants,
            window,
            warm_fraction,
            windows,
            placement,
            seed,
            hot_util,
            spread_factor,
            max_migrations_per_window,
            migration_cooldown,
            migration_warmup,
        };
        spec.validate().map_err(DecodeError::Malformed)?;
        Ok(spec)
    }

    /// CRC-32 of the spec's encoding — pinned in per-shard store
    /// manifests.
    pub fn fingerprint(&self) -> u32 {
        fleetio_des::hash::crc32(&self.encode())
    }
}

// `FlashPreset`'s wire tags are private to `fleetio::runspec`; mirror
// them here against the same enum so both specs stay byte-compatible.
trait PresetTag: Sized {
    fn wire_tag(self) -> u8;
    fn from_wire_tag(tag: u8) -> Result<Self, DecodeError>;
}

impl PresetTag for FlashPreset {
    fn wire_tag(self) -> u8 {
        match self {
            FlashPreset::Default => 0,
            FlashPreset::Experiment => 1,
            FlashPreset::TrainingTest => 2,
            FlashPreset::SmallTest => 3,
        }
    }

    fn from_wire_tag(tag: u8) -> Result<Self, DecodeError> {
        match tag {
            0 => Ok(FlashPreset::Default),
            1 => Ok(FlashPreset::Experiment),
            2 => Ok(FlashPreset::TrainingTest),
            3 => Ok(FlashPreset::SmallTest),
            other => Err(DecodeError::Malformed(format!("flash preset tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_spec_round_trips() {
        let spec = FleetSpec::ci(42);
        assert_eq!(spec.total_slots(), 64);
        assert!(spec.validate().is_ok());
        let back = FleetSpec::decode(&spec.encode()).expect("fresh spec decodes");
        assert_eq!(back, spec);
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn hotspot_spec_packs_heavies_first() {
        let spec = FleetSpec::hotspot(7);
        assert_eq!(spec.placement, Placement::Packed);
        assert!(spec.tenants[0].kind.spec().is_closed_loop());
        let placement = spec.initial_placement();
        assert_eq!(placement[0], SlotAddr { shard: 0, slot: 0 });
        assert_eq!(placement[3], SlotAddr { shard: 0, slot: 3 });
        assert!(spec.validate().is_ok());
        // The hotspot preset exercises the fields the ci() preset leaves
        // at zero: phase rotations on the heavies and a planner burn-in.
        assert!(spec.tenants.iter().any(|t| t.phase_rotation > 0));
        assert!(spec.migration_warmup > 0);
        let back = FleetSpec::decode(&spec.encode()).expect("hotspot spec decodes");
        assert_eq!(back, spec);
    }

    #[test]
    fn shuffled_placement_is_deterministic_and_injective() {
        let spec = FleetSpec::ci(11);
        let a = spec.initial_placement();
        let b = spec.initial_placement();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.tenants.len());
        let mut seen = a.clone();
        seen.sort_by_key(|s| (s.shard, s.slot));
        seen.dedup();
        assert_eq!(seen.len(), a.len(), "placement assigned a slot twice");
        // A different seed shuffles differently.
        assert_ne!(FleetSpec::ci(12).initial_placement(), a);
    }

    #[test]
    fn validation_catches_bad_shapes() {
        let mut spec = FleetSpec::ci(1);
        spec.slots_per_shard = 3; // does not divide 4 channels
        assert!(spec.validate().is_err());
        let mut spec = FleetSpec::ci(1);
        spec.tenants = (0..65)
            .map(|i| FleetTenantSpec {
                kind: WorkloadKind::Ycsb,
                seed: i,
                slo: None,
                phase_rotation: 0,
            })
            .collect();
        assert!(spec.validate().is_err(), "65 tenants into 64 slots");
        let mut spec = FleetSpec::ci(1);
        spec.windows = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn corruption_never_panics() {
        let bytes = FleetSpec::hotspot(3).encode();
        for cut in 0..bytes.len() {
            assert!(FleetSpec::decode(&bytes[..cut]).is_err());
        }
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x11;
            let _ = FleetSpec::decode(&bad); // must not panic
        }
    }
}
