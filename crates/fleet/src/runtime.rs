//! The fleet runtime: shards on a scoped worker pool, one deterministic
//! control plane at every window boundary.
//!
//! # Determinism argument
//!
//! Shards share no state while a window runs — each engine advances its
//! own simulated clock against its own slots, so a shard's window
//! report (and its obs stream) is a pure function of the spec, the
//! seed, and the control-plane inputs applied at the boundary. Workers
//! write reports into disjoint index-addressed slices; the merge then
//! reads them **in shard-index order**. No host time, no channel-recv
//! ordering, no thread identity ever feeds a decision, so the worker
//! count can only change wall-clock time, never results — which the
//! determinism test matrix (1/2/8 workers) pins.

use fleetio::actions::AgentAction;
use fleetio::agent::PretrainedModel;
use fleetio::config::FleetIoConfig;
use fleetio::states::StateVector;
use fleetio::warmstart::warm_start_model;
use fleetio_des::rng::derive_seed_indexed;
use fleetio_flash::addr::ChannelId;
use fleetio_model::ModelRegistry;
use fleetio_obs::{ObsEvent, ObsSink, SeriesSet, SloTracker, WindowVerdict};
use fleetio_vssd::engine::EngineConfig;
use fleetio_vssd::vssd::{VssdConfig, VssdId};
use fleetio_workloads::features::windowed_features;
use fleetio_workloads::{TraceRecord, WorkloadKind};

use crate::bank::PolicyBank;
use crate::control::{plan_migrations, ControlConfig, MigrationDecision, SlotAddr, SlotLoad};
use crate::health::FleetObs;
use crate::shard::{Shard, ShardWindowReport};
use crate::sink::FingerprintSink;
use crate::spec::FleetSpec;

/// Trace records per feature window when classifying a migrating
/// tenant for model warm-start.
const TYPING_WINDOW: usize = 64;

#[derive(Debug, Clone, Copy)]
struct TenantMeta {
    kind: WorkloadKind,
    seed: u64,
    location: SlotAddr,
    /// Phase rotation applied at every attach (the tenant starts
    /// mid-job; see [`crate::FleetTenantSpec::phase_rotation`]).
    phase_rotation: u32,
    /// Attach count; generator streams derive from it so a tenant's
    /// traffic after its n-th move is independent of where it ran
    /// before.
    epoch: u32,
    /// Windows left before the tenant may migrate again.
    cooldown: u32,
}

/// One window's merged fleet view.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetWindowReport {
    /// Window index (0-based).
    pub window: u32,
    /// Per-shard utilization (fraction of shard peak bandwidth).
    pub shard_utils: Vec<f64>,
    /// Migrations executed at the boundary *entering* this window.
    pub executed: Vec<MigrationDecision>,
    /// Migrations planned from this window's statistics (they execute
    /// at the next boundary).
    pub planned: Vec<MigrationDecision>,
    /// Operations completed fleet-wide this window.
    pub total_ops: u64,
    /// Bytes moved fleet-wide this window.
    pub total_bytes: u64,
    /// Cumulative engine events processed across all shards.
    pub events_processed: u64,
}

impl FleetWindowReport {
    /// Max − min shard utilization: the load spread the consolidation
    /// loop tries to shrink.
    pub fn util_spread(&self) -> f64 {
        let max = self.shard_utils.iter().fold(f64::MIN, |a, &b| a.max(b));
        let min = self.shard_utils.iter().fold(f64::MAX, |a, &b| a.min(b));
        max - min
    }
}

/// A whole run's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Every window's merged view, in order.
    pub windows: Vec<FleetWindowReport>,
    /// Every executed migration, in execution order.
    pub migrations: Vec<MigrationDecision>,
    /// Cumulative engine events processed across all shards.
    pub events_processed: u64,
    /// Operations completed fleet-wide over the run.
    pub total_ops: u64,
}

/// Many shards + control plane. See the module docs.
#[derive(Debug)]
pub struct FleetRuntime {
    spec: FleetSpec,
    shards: Vec<Shard>,
    tenants: Vec<TenantMeta>,
    bank: PolicyBank,
    registry: Option<ModelRegistry>,
    workers: usize,
    window_idx: u32,
    pending_actions: Vec<(u32, AgentAction)>,
    pending_migrations: Vec<MigrationDecision>,
    /// Windows each slot still drains a detached tenant's in-flight
    /// requests before it may host again.
    slot_hold: Vec<Vec<u32>>,
    migration_log: Vec<MigrationDecision>,
    obs: FleetObs,
}

impl FleetRuntime {
    /// Builds the fleet: shards with hardware-isolated slots, warmed to
    /// the spec's fill fraction, tenants attached per the spec's
    /// placement at epoch 0, all running `model` until a migration
    /// warm-starts something better.
    ///
    /// # Panics
    ///
    /// Panics when the spec fails [`FleetSpec::validate`].
    pub fn new(spec: &FleetSpec, model: PretrainedModel, workers: usize) -> Self {
        if let Err(msg) = spec.validate() {
            panic!("invalid fleet spec: {msg}");
        }
        let cps = spec.channels_per_slot();
        let mut shards: Vec<Shard> = (0..spec.shards)
            .map(|s| {
                let slots = (0..spec.slots_per_shard)
                    .map(|l| {
                        let channels = (l as u16 * cps..(l as u16 + 1) * cps)
                            .map(ChannelId)
                            .collect();
                        let mut cfg = VssdConfig::hardware(VssdId(l), channels);
                        if let Some(slo) = spec.slot_slo {
                            cfg = cfg.with_slo(slo);
                        }
                        cfg
                    })
                    .collect();
                let engine_cfg = EngineConfig {
                    flash: spec.flash.config(),
                    ..EngineConfig::default()
                };
                Shard::new(s, engine_cfg, slots, spec.window)
            })
            .collect();
        for shard in &mut shards {
            shard.warm_up_all(spec.warm_fraction);
        }
        let placement = spec.initial_placement();
        let tenants: Vec<TenantMeta> = spec
            .tenants
            .iter()
            .zip(&placement)
            .map(|(t, &location)| TenantMeta {
                kind: t.kind,
                seed: t.seed,
                location,
                phase_rotation: t.phase_rotation,
                epoch: 0,
                cooldown: 0,
            })
            .collect();
        for (i, meta) in tenants.iter().enumerate() {
            let seed = derive_seed_indexed(meta.seed, "fleet-attach", 0);
            shards[meta.location.shard as usize].attach(
                meta.location.slot as usize,
                i as u32,
                meta.kind,
                seed,
                meta.phase_rotation,
            );
        }
        let history = FleetIoConfig::default().history_windows;
        FleetRuntime {
            shards,
            bank: PolicyBank::new(model, tenants.len(), history),
            tenants,
            registry: None,
            workers: workers.max(1),
            window_idx: 0,
            pending_actions: Vec::new(),
            pending_migrations: Vec::new(),
            slot_hold: vec![vec![0; spec.slots_per_shard as usize]; spec.shards as usize],
            migration_log: Vec::new(),
            obs: FleetObs::new(spec),
            spec: spec.clone(),
        }
    }

    /// Attaches a model registry: migrating tenants are then classified
    /// from their collected trace and warm-started from the matching
    /// checkpoint (`fleetio::warmstart`). Without a registry, migration
    /// keeps the tenant's current model and just resets its history.
    pub fn set_registry(&mut self, registry: ModelRegistry) {
        self.registry = Some(registry);
    }

    /// The spec this fleet was built from.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Worker threads used to advance shards.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executed migrations so far, in execution order.
    pub fn migration_log(&self) -> &[MigrationDecision] {
        &self.migration_log
    }

    /// The fleet's SLO + time-series observability state.
    pub fn obs(&self) -> &FleetObs {
        &self.obs
    }

    /// Renders the text fleet-health dashboard for the run so far.
    /// Byte-identical for same-seed runs at any worker count.
    pub fn health_report(&self) -> String {
        self.obs.render_report(&self.spec)
    }

    /// The recorded windowed time-series (util, queue depth, latency
    /// percentiles, GC/harvest rates, migrations per window).
    pub fn series(&self) -> &SeriesSet {
        self.obs.series()
    }

    /// The SLO tracker of `tenant`, if it carries an SLO.
    pub fn slo_tracker(&self, tenant: u32) -> Option<&SloTracker> {
        self.obs.tracker(tenant)
    }

    /// All of `tenant`'s window verdicts so far, window order.
    pub fn slo_verdicts(&self, tenant: u32) -> &[WindowVerdict] {
        self.obs.verdicts(tenant)
    }

    /// The slot `tenant` currently occupies.
    pub fn tenant_location(&self, tenant: u32) -> SlotAddr {
        self.tenants[tenant as usize].location
    }

    /// The model tag `tenant` currently runs.
    pub fn model_tag_of(&self, tenant: u32) -> &str {
        self.bank.tag_of(tenant)
    }

    /// Installs a [`FingerprintSink`] on every shard.
    pub fn install_fingerprint_sinks(&mut self) {
        for shard in &mut self.shards {
            let _ = shard.set_obs_sink(Box::new(FingerprintSink::new()));
        }
    }

    /// Removes the per-shard fingerprint sinks, returning each shard's
    /// `(fingerprint, event_count)` in shard order.
    ///
    /// # Panics
    ///
    /// Panics if a shard's sink is not a [`FingerprintSink`].
    pub fn take_fingerprints(&mut self) -> Vec<(u64, u64)> {
        self.shards
            .iter_mut()
            .map(|s| {
                let sink = s
                    .take_obs_sink()
                    .into_any()
                    .downcast::<FingerprintSink>()
                    .expect("shard sink is a FingerprintSink");
                (sink.fingerprint(), sink.event_count())
            })
            .collect()
    }

    /// Installs `sink` on shard `shard`, returning the previous one
    /// (store wiring: one `StoreSink` per shard).
    pub fn set_shard_sink(&mut self, shard: usize, sink: Box<dyn ObsSink>) -> Box<dyn ObsSink> {
        self.shards[shard].set_obs_sink(sink)
    }

    /// Removes shard `shard`'s sink for export.
    pub fn take_shard_sink(&mut self, shard: usize) -> Box<dyn ObsSink> {
        self.shards[shard].take_obs_sink()
    }

    /// Runs the spec's full window count.
    pub fn run(&mut self) -> FleetReport {
        let mut windows = Vec::with_capacity(self.spec.windows as usize);
        for _ in 0..self.spec.windows {
            windows.push(self.run_window());
        }
        let events_processed = windows.last().map_or(0, |w| w.events_processed);
        let total_ops = windows.iter().map(|w| w.total_ops).sum();
        FleetReport {
            windows,
            migrations: self.migration_log.clone(),
            events_processed,
            total_ops,
        }
    }

    /// One decision window: execute the previous merge's migrations,
    /// apply its actions, advance every shard in parallel, then merge
    /// serially in shard-index order. This is the determinism-taint
    /// root of the fleet layer.
    pub fn run_window(&mut self) -> FleetWindowReport {
        let _prof = fleetio_obs::prof::span("fleet.window");
        let executed = self.execute_pending_migrations();
        self.apply_pending_actions();
        let reports = self.advance_shards();
        let report = self.merge(executed, &reports);
        self.window_idx += 1;
        report
    }

    /// Executes the migrations planned at the previous merge: detach at
    /// the source (in-flight requests drain over the coming window),
    /// classify the tenant's trace for a warm-started model, re-attach
    /// at the destination under a fresh epoch-derived seed.
    fn execute_pending_migrations(&mut self) -> Vec<MigrationDecision> {
        let pending = std::mem::take(&mut self.pending_migrations);
        let mut executed = Vec::with_capacity(pending.len());
        for m in pending {
            let (tenant, trace) = self.shards[m.from.shard as usize].detach(m.from.slot as usize);
            debug_assert_eq!(tenant, m.tenant, "planned tenant occupies the source slot");
            self.slot_hold[m.from.shard as usize][m.from.slot as usize] = 1;
            let (kind, attach_seed, rotation) = {
                let meta = &mut self.tenants[tenant as usize];
                meta.epoch += 1;
                meta.location = m.to;
                meta.cooldown = self.spec.migration_cooldown;
                (
                    meta.kind,
                    derive_seed_indexed(meta.seed, "fleet-attach", u64::from(meta.epoch)),
                    meta.phase_rotation,
                )
            };
            self.warm_start_tenant(tenant, &trace, m.from);
            self.shards[m.to.shard as usize].attach(
                m.to.slot as usize,
                tenant,
                kind,
                attach_seed,
                rotation,
            );
            // Annotated migration event into the *source* shard's obs
            // stream — this phase is serial, so the stream stays
            // deterministic across worker counts.
            let at = self.shards[m.from.shard as usize].now();
            self.shards[m.from.shard as usize].emit_obs(ObsEvent::FleetMigration {
                at,
                window: m.window,
                tenant: m.tenant,
                from_shard: m.from.shard,
                from_slot: m.from.slot,
                to_shard: m.to.shard,
                to_slot: m.to.slot,
                cause: m.cause,
                mean_util: m.mean_util,
                src_util: m.src_util,
                dst_util: m.dst_util,
                src_util_after: m.src_util_after,
                dst_util_after: m.dst_util_after,
            });
            self.migration_log.push(m);
            executed.push(m);
        }
        executed
    }

    /// The §3.7 attach path for a migrating tenant: windowed features
    /// from its collected trace → typing index → tagged checkpoint. Any
    /// miss (no registry, short trace, unknown type, missing
    /// checkpoint) keeps the current model; the history resets either
    /// way because the stacked windows describe the old placement.
    fn warm_start_tenant(&mut self, tenant: u32, trace: &[TraceRecord], from: SlotAddr) {
        if let Some(registry) = &self.registry {
            let capacity = self.shards[from.shard as usize].slot_capacity_bytes(from.slot as usize);
            let features = windowed_features(trace, capacity, TYPING_WINDOW);
            if let Some(last) = features.last() {
                if let Ok(Some((tag, model, _fell_back))) = warm_start_model(registry, last) {
                    self.bank.assign(tenant, &tag, model);
                    return;
                }
            }
        }
        self.bank.reset_history(tenant);
    }

    /// Applies the previous window's RL decisions at each tenant's
    /// current slot. Tenants that just migrated were re-attached with a
    /// reset history; their stale action (decided against the old
    /// placement) is dropped.
    fn apply_pending_actions(&mut self) {
        let actions = std::mem::take(&mut self.pending_actions);
        for (tenant, action) in actions {
            if self.tenants[tenant as usize].epoch > 0
                && self
                    .migration_log
                    .last()
                    .is_some_and(|m| m.tenant == tenant && m.window + 1 == self.window_idx)
            {
                continue;
            }
            let at = self.tenants[tenant as usize].location;
            self.shards[at.shard as usize].apply_action(at.slot as usize, action);
        }
    }

    /// Advances every shard one window on a scoped worker pool. Shards
    /// are partitioned by index into contiguous chunks; workers write
    /// into disjoint report slices, and the implicit scope join is the
    /// only synchronization. Deliberately free of float arithmetic —
    /// all merging math runs serially after the scope exits.
    fn advance_shards(&mut self) -> Vec<ShardWindowReport> {
        let workers = self.workers.min(self.shards.len()).max(1);
        let chunk = self.shards.len().div_ceil(workers);
        let mut out: Vec<Option<ShardWindowReport>> = Vec::new();
        out.resize_with(self.shards.len(), || None);
        std::thread::scope(|scope| {
            for (shards, slots) in self.shards.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    let _prof = fleetio_obs::prof::span("fleet.shard");
                    for (shard, slot) in shards.iter_mut().zip(slots.iter_mut()) {
                        *slot = Some(shard.run_window());
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("every shard reported"))
            .collect()
    }

    /// The serial window merge, shard-index order throughout: extract
    /// per-tenant states (shared terms sum over each shard's resident
    /// tenants, as in `fleetio::states::extract_states`), batch-infer
    /// next-window actions, compute utilizations, plan next-boundary
    /// migrations.
    fn merge(
        &mut self,
        executed: Vec<MigrationDecision>,
        reports: &[ShardWindowReport],
    ) -> FleetWindowReport {
        let _prof = fleetio_obs::prof::span("fleet.merge");
        // Expire slot drains and tenant cooldowns that covered this
        // window.
        for holds in &mut self.slot_hold {
            for h in holds.iter_mut() {
                *h = h.saturating_sub(1);
            }
        }
        for meta in &mut self.tenants {
            meta.cooldown = meta.cooldown.saturating_sub(1);
        }

        let mut states: Vec<(u32, StateVector)> = Vec::new();
        let mut utils = Vec::with_capacity(reports.len());
        let mut loads: Vec<Vec<Option<SlotLoad>>> = Vec::with_capacity(reports.len());
        let mut usable: Vec<Vec<bool>> = Vec::with_capacity(reports.len());
        let mut total_ops = 0u64;
        let mut total_bytes = 0u64;
        let mut events_processed = 0u64;
        let shard_peak = self.spec.shard_peak_bytes_per_sec();
        for (s, report) in reports.iter().enumerate() {
            debug_assert_eq!(report.shard as usize, s, "reports in shard order");
            let resident: Vec<(usize, u32)> = report
                .tenants
                .iter()
                .enumerate()
                .filter_map(|(slot, t)| t.map(|t| (slot, t)))
                .collect();
            let total_iops: f64 = resident
                .iter()
                .map(|&(slot, _)| report.summaries[slot].1.avg_iops)
                .sum();
            let total_vio: f64 = resident
                .iter()
                .map(|&(slot, _)| report.summaries[slot].1.slo_violation_rate)
                .sum();
            for &(slot, tenant) in &resident {
                let w = &report.summaries[slot].1;
                states.push((
                    tenant,
                    StateVector::from_window(
                        w,
                        &report.snapshots[slot],
                        total_iops - w.avg_iops,
                        total_vio - w.slo_violation_rate,
                    ),
                ));
            }
            let bw: f64 = report.summaries.iter().map(|(_, w)| w.avg_bandwidth).sum();
            utils.push(bw / shard_peak);
            loads.push(
                report
                    .tenants
                    .iter()
                    .enumerate()
                    .map(|(slot, t)| {
                        t.map(|tenant| SlotLoad {
                            tenant,
                            bytes_per_sec: report.summaries[slot].1.avg_bandwidth,
                            movable: self.tenants[tenant as usize].cooldown == 0,
                        })
                    })
                    .collect(),
            );
            usable.push(
                report
                    .tenants
                    .iter()
                    .enumerate()
                    .map(|(slot, t)| t.is_none() && self.slot_hold[s][slot] == 0)
                    .collect(),
            );
            for (_, w) in &report.summaries {
                total_ops += w.total_ops;
                total_bytes += w.total_bytes;
            }
            events_processed += report.events_processed;
        }

        // States arrive in (shard, slot) order; the bank sorts its
        // output by tenant, so action order is placement-independent.
        self.pending_actions = self.bank.decide_all(&states);

        let control = ControlConfig {
            hot_util: self.spec.hot_util,
            spread_factor: self.spec.spread_factor,
            max_migrations: self.spec.max_migrations_per_window,
            shard_peak,
        };
        // The control plane holds fire through the spec's burn-in
        // windows; the start-up transient (cold caches, first RL
        // actions) should not drive placement.
        let planned = if self.window_idx < self.spec.migration_warmup {
            Vec::new()
        } else {
            plan_migrations(&control, self.window_idx, &utils, &loads, &usable)
        };
        self.pending_migrations = planned.clone();

        // SLO accounting + time-series, then per-tenant verdict events
        // into each tenant's resident shard. Still inside the serial
        // merge: stream content is worker-count independent.
        self.obs.record_migrations(&executed);
        let outcomes = self
            .obs
            .record_window(self.window_idx, reports, &utils, executed.len());
        for o in outcomes {
            let at = self.shards[o.shard as usize].now();
            self.shards[o.shard as usize].emit_obs(ObsEvent::SloWindow {
                at,
                tenant: o.tenant,
                window: o.verdict.window,
                ops: o.verdict.ops,
                p95: o.verdict.p95,
                p99: o.verdict.p99,
                throughput: o.verdict.throughput,
                p95_ok: o.verdict.p95_ok,
                p99_ok: o.verdict.p99_ok,
                throughput_ok: o.verdict.throughput_ok,
                burn: o.burn,
            });
        }

        FleetWindowReport {
            window: self.window_idx,
            shard_utils: utils,
            executed,
            planned,
            total_ops,
            total_bytes,
            events_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::default_model;
    use crate::spec::{FleetSpec, FleetTenantSpec, Placement};

    /// A 2-shard × 2-slot miniature with an engineered hot shard: two
    /// closed-loop heavies packed on shard 0, one light tenant on
    /// shard 1, one free slot as headroom.
    fn mini_hotspot(seed: u64) -> FleetSpec {
        let mut spec = FleetSpec::sized(seed, 2, 2, 3);
        spec.tenants = vec![
            FleetTenantSpec {
                kind: WorkloadKind::TeraSort,
                seed: 101,
                slo: Some(FleetSpec::default_tenant_slo()),
                phase_rotation: 0,
            },
            FleetTenantSpec {
                kind: WorkloadKind::MlPrep,
                seed: 102,
                slo: Some(FleetSpec::default_tenant_slo()),
                phase_rotation: 0,
            },
            FleetTenantSpec {
                kind: WorkloadKind::Ycsb,
                seed: 103,
                slo: Some(FleetSpec::default_tenant_slo()),
                phase_rotation: 0,
            },
        ];
        spec.placement = Placement::Packed;
        spec.windows = 4;
        spec.hot_util = 0.3;
        spec.spread_factor = 1.2;
        spec.migration_cooldown = 2;
        spec
    }

    #[test]
    fn fleet_runs_and_reports_every_window() {
        let spec = FleetSpec::sized(5, 2, 2, 3);
        let mut rt = FleetRuntime::new(&spec, default_model(1), 2);
        let report = rt.run();
        assert_eq!(report.windows.len(), spec.windows as usize);
        assert!(report.total_ops > 0);
        assert!(report.events_processed > 0);
        for (i, w) in report.windows.iter().enumerate() {
            assert_eq!(w.window as usize, i);
            assert_eq!(w.shard_utils.len(), 2);
        }
    }

    #[test]
    fn hotspot_triggers_migration_and_shrinks_spread() {
        let spec = mini_hotspot(9);
        let mut rt = FleetRuntime::new(&spec, default_model(1), 2);
        let report = rt.run();
        assert!(
            !report.migrations.is_empty(),
            "hot shard must shed a tenant: {:?}",
            report.windows
        );
        let first = report.windows.first().expect("windows").util_spread();
        let last = report.windows.last().expect("windows").util_spread();
        assert!(
            last < first,
            "load spread must shrink: first {first:.3} last {last:.3}"
        );
        // The migrated tenant restarted in a usable slot and the log
        // agrees with the runtime's placement map.
        let m = report.migrations[0];
        assert_eq!(rt.tenant_location(m.tenant), m.to);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let spec = mini_hotspot(13);
        let run = |workers: usize| {
            let mut rt = FleetRuntime::new(&spec, default_model(1), workers);
            rt.install_fingerprint_sinks();
            let report = rt.run();
            (report, rt.take_fingerprints())
        };
        let (r1, f1) = run(1);
        let (r2, f2) = run(2);
        assert_eq!(r1, r2, "window reports differ across worker counts");
        assert_eq!(f1, f2, "obs fingerprints differ across worker counts");
        assert!(f1.iter().all(|&(_, events)| events > 0));
    }
}
