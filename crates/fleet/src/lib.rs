//! The fleet layer: many independent vSSD engines as shards, one
//! control plane (§2.1 of the paper: FleetIO manages *fleets* of cloud
//! SSDs; the per-SSD machinery lives in `fleetio`).
//!
//! # Model
//!
//! A **shard** is one SSD: a [`fleetio_vssd::engine::Engine`] built once
//! with a fixed set of vSSD *slots* (hardware-isolated channel groups).
//! Tenants — workload streams — occupy slots; a slot without a tenant is
//! a provisioned-but-idle vSSD. Shards never exchange events: within a
//! decision window each advances its own simulated clock independently,
//! which is what makes the fleet embarrassingly parallel *and*
//! deterministic.
//!
//! The [`FleetRuntime`] drives all shards window by window:
//!
//! 1. execute migrations planned at the previous boundary (detach at the
//!    source, re-attach at the destination with a fresh epoch-derived
//!    seed, warm-start the tenant's model via `fleetio::warmstart`),
//! 2. apply the previous window's per-tenant RL actions,
//! 3. advance every shard one window on a scoped worker pool,
//! 4. merge reports **in shard-index order** (never thread or host-time
//!    order): extract per-tenant states, run all policy inferences as
//!    grouped matrix passes ([`fleetio_ml::Mlp::forward_batch`]), detect
//!    hotspots, and plan next-boundary migrations (Serifos-style
//!    consolidation: move the heaviest movable tenant off an overloaded
//!    SSD onto the least-loaded one with a free slot).
//!
//! Same seed + same spec ⇒ byte-identical per-shard observability
//! streams and identical migration logs for *any* worker-thread count.

pub mod bank;
pub mod control;
pub mod health;
pub mod runtime;
pub mod shard;
pub mod sink;
pub mod spec;

pub use bank::{default_model, PolicyBank};
pub use control::{plan_migrations, ControlConfig, MigrationDecision, SlotAddr, SlotLoad};
pub use health::{FleetObs, SloOutcome};
pub use runtime::{FleetReport, FleetRuntime, FleetWindowReport};
pub use shard::{Shard, ShardWindowReport};
pub use sink::FingerprintSink;
pub use spec::{FleetSpec, FleetTenantSpec, Placement};
