//! Hotspot detection and migration planning (the Serifos-style
//! consolidation loop, run by the control plane at every window merge).
//!
//! Everything here is pure arithmetic over the merged per-shard window
//! reports: no clocks, no engines, no randomness. Inputs arrive in
//! shard-index order and every tie breaks toward the lowest index, so a
//! plan is a deterministic function of the window's statistics.

use fleetio_obs::MigrationCause;

/// A fleet-wide slot address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SlotAddr {
    /// Shard (SSD engine) index.
    pub shard: u32,
    /// Slot index within the shard.
    pub slot: u32,
}

impl std::fmt::Display for SlotAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.shard, self.slot)
    }
}

/// One planned tenant move, decided at a window merge and executed at
/// the next window boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationDecision {
    /// Window index whose statistics triggered the move.
    pub window: u32,
    /// The tenant being moved.
    pub tenant: u32,
    /// Source slot.
    pub from: SlotAddr,
    /// Destination slot.
    pub to: SlotAddr,
    /// Source-shard utilization when the move was planned.
    pub src_util: f64,
    /// Destination-shard utilization when the move was planned.
    pub dst_util: f64,
    /// Which hotspot rule was the binding constraint (the one with the
    /// smaller margin above its bound).
    pub cause: MigrationCause,
    /// Fleet-mean utilization when the move was planned.
    pub mean_util: f64,
    /// Projected source utilization after the move.
    pub src_util_after: f64,
    /// Projected destination utilization after the move.
    pub dst_util_after: f64,
}

/// Control-plane thresholds (copied out of the fleet spec).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlConfig {
    /// Shard utilization above which it is hotspot-eligible.
    pub hot_util: f64,
    /// Hot shards must also exceed this multiple of the fleet mean.
    pub spread_factor: f64,
    /// Migration budget per window boundary.
    pub max_migrations: u32,
    /// Per-shard peak bandwidth in bytes/second (the utilization
    /// denominator), used to project post-move utilizations.
    pub shard_peak: f64,
}

/// One occupied slot as the planner sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotLoad {
    /// The resident tenant.
    pub tenant: u32,
    /// The tenant's average bandwidth this window, bytes/second.
    pub bytes_per_sec: f64,
    /// Whether the tenant may move (migration cooldown expired).
    pub movable: bool,
}

/// Plans this boundary's migrations.
///
/// A shard is **hot** when its utilization exceeds both
/// `cfg.hot_util` and `cfg.spread_factor ×` the fleet mean. For each
/// hot shard, hottest first, the heaviest movable tenant moves to the
/// coolest shard that has a usable free slot — provided the destination
/// ends cooler than the source began even after absorbing the tenant's
/// bandwidth (the move must not create a worse hotspot than it cures).
/// Projected utilizations are updated as moves are planned so one
/// boundary's decisions compose.
///
/// `utils[s]` is shard `s`'s utilization; `loads[s][l]` describes slot
/// `l` of shard `s` (`None` = empty); `usable[s][l]` marks slots that
/// can accept a tenant (empty and not draining a detached tenant's
/// in-flight requests).
///
/// # Panics
///
/// Panics if the per-shard vectors disagree in shape.
pub fn plan_migrations(
    cfg: &ControlConfig,
    window: u32,
    utils: &[f64],
    loads: &[Vec<Option<SlotLoad>>],
    usable: &[Vec<bool>],
) -> Vec<MigrationDecision> {
    assert_eq!(utils.len(), loads.len(), "utils/loads shard count");
    assert_eq!(utils.len(), usable.len(), "utils/usable shard count");
    let mean = utils.iter().sum::<f64>() / utils.len().max(1) as f64;
    let mut projected = utils.to_vec();
    let mut usable: Vec<Vec<bool>> = usable.to_vec();
    let mut moved: Vec<u32> = Vec::new();
    let mut exhausted: Vec<usize> = Vec::new();
    let mut plan = Vec::new();

    while (plan.len() as u32) < cfg.max_migrations {
        // Hottest qualifying shard under the projected loads; ties
        // toward the lower index. A shard that can't shed (no movable
        // tenant, no acceptable destination) is set aside so another
        // hot shard can use the remaining budget.
        let src = (0..projected.len())
            .filter(|s| !exhausted.contains(s))
            .filter(|&s| projected[s] > cfg.hot_util && projected[s] > cfg.spread_factor * mean)
            .max_by(|a, b| projected[*a].total_cmp(&projected[*b]).then(b.cmp(a)));
        let Some(src) = src else {
            break;
        };
        // Heaviest movable tenant on the hot shard; ties toward the
        // lower slot index.
        let victim = loads[src]
            .iter()
            .enumerate()
            .filter_map(|(slot, load)| (*load).filter(|l| l.movable).map(|l| (slot, l)))
            .filter(|(_, l)| !moved.contains(&l.tenant))
            .max_by(|(sa, a), (sb, b)| {
                a.bytes_per_sec.total_cmp(&b.bytes_per_sec).then(sb.cmp(sa))
            });
        let Some((src_slot, load)) = victim else {
            exhausted.push(src);
            continue;
        };
        let delta = if cfg.shard_peak > 0.0 {
            load.bytes_per_sec / cfg.shard_peak
        } else {
            0.0
        };
        // Coolest destination with a usable slot; ties toward the
        // lower shard index.
        let dst = (0..projected.len())
            .filter(|&d| d != src && usable[d].iter().any(|u| *u))
            .filter(|&d| projected[d] + delta < projected[src])
            .min_by(|a, b| projected[*a].total_cmp(&projected[*b]).then(a.cmp(b)));
        let Some(dst) = dst else {
            exhausted.push(src);
            continue;
        };
        let dst_slot = usable[dst]
            .iter()
            .position(|u| *u)
            .expect("destination has a usable slot");
        // Both hotspot rules held (the shard qualified); the cause names
        // the binding one — the higher of the two bounds, which a
        // cooling shard would drop below first. Ties go to the absolute
        // threshold.
        let cause = if cfg.hot_util >= cfg.spread_factor * mean {
            MigrationCause::HotUtil
        } else {
            MigrationCause::SpreadFactor
        };
        plan.push(MigrationDecision {
            window,
            tenant: load.tenant,
            from: SlotAddr {
                shard: src as u32,
                slot: src_slot as u32,
            },
            to: SlotAddr {
                shard: dst as u32,
                slot: dst_slot as u32,
            },
            src_util: projected[src],
            dst_util: projected[dst],
            cause,
            mean_util: mean,
            src_util_after: projected[src] - delta,
            dst_util_after: projected[dst] + delta,
        });
        moved.push(load.tenant);
        usable[dst][dst_slot] = false;
        projected[src] -= delta;
        projected[dst] += delta;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ControlConfig {
        ControlConfig {
            hot_util: 0.5,
            spread_factor: 1.5,
            max_migrations: 2,
            shard_peak: 1000.0,
        }
    }

    fn load(tenant: u32, bw: f64) -> Option<SlotLoad> {
        Some(SlotLoad {
            tenant,
            bytes_per_sec: bw,
            movable: true,
        })
    }

    #[test]
    fn balanced_fleet_plans_nothing() {
        let utils = [0.3, 0.3, 0.3];
        let loads = vec![
            vec![load(0, 300.0)],
            vec![load(1, 300.0)],
            vec![load(2, 300.0)],
        ];
        let usable = vec![vec![false], vec![false], vec![false]];
        assert!(plan_migrations(&cfg(), 0, &utils, &loads, &usable).is_empty());
    }

    #[test]
    fn hot_shard_sheds_heaviest_movable_tenant_to_coolest_slot() {
        let utils = [0.9, 0.1, 0.05];
        let loads = vec![
            vec![load(0, 400.0), load(1, 500.0)],
            vec![load(2, 100.0), None],
            vec![None, None],
        ];
        let usable = vec![vec![false, false], vec![false, true], vec![true, true]];
        let plan = plan_migrations(&cfg(), 4, &utils, &loads, &usable);
        assert_eq!(plan.len(), 1, "one hot shard, one move: {plan:?}");
        let m = plan[0];
        assert_eq!(m.tenant, 1, "heaviest tenant moves");
        assert_eq!(m.from, SlotAddr { shard: 0, slot: 1 });
        // Coolest shard (index 2) wins over the merely-cool shard 1.
        assert_eq!(m.to, SlotAddr { shard: 2, slot: 0 });
        assert_eq!(m.window, 4);
    }

    #[test]
    fn cooldown_and_budget_are_respected() {
        let mut loads = vec![
            vec![load(0, 400.0), load(1, 500.0)],
            vec![None, None],
            vec![None, None],
        ];
        let usable = vec![vec![false, false], vec![true, true], vec![true, true]];
        let utils = [0.9, 0.0, 0.0];
        // Nothing movable → nothing planned.
        for slot in loads[0].iter_mut() {
            slot.as_mut().expect("occupied").movable = false;
        }
        assert!(plan_migrations(&cfg(), 0, &utils, &loads, &usable).is_empty());
        // Budget of one caps the plan even with two hot shards.
        let tight = ControlConfig {
            max_migrations: 1,
            ..cfg()
        };
        let utils = [0.9, 0.9, 0.0];
        let loads = vec![
            vec![load(0, 450.0), load(1, 450.0)],
            vec![load(2, 450.0), load(3, 450.0)],
            vec![None, None],
        ];
        let usable = vec![vec![false, false], vec![false, false], vec![true, true]];
        let plan = plan_migrations(&tight, 0, &utils, &loads, &usable);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn no_ping_pong_when_destination_would_heat_past_source() {
        // Absorbing the 800 B/s tenant would push the destination past
        // the source's starting heat — the planner must decline rather
        // than relocate the hotspot.
        let utils = [0.8, 0.75];
        let loads = vec![vec![load(0, 800.0)], vec![None]];
        let usable = vec![vec![false], vec![true]];
        assert!(plan_migrations(&cfg(), 0, &utils, &loads, &usable).is_empty());
        // But a move that merely halves the imbalance is accepted even
        // though the destination ends warmer than the drained source.
        let utils = [0.9, 0.05];
        let loads = vec![vec![load(0, 450.0), load(1, 450.0)], vec![None, None]];
        let usable = vec![vec![false, false], vec![true, true]];
        let plan = plan_migrations(&cfg(), 0, &utils, &loads, &usable);
        assert_eq!(plan.len(), 1, "beneficial half-load move: {plan:?}");
    }
}
