//! A fingerprinting observability sink for determinism checks.
//!
//! [`FingerprintSink`] folds every event's canonical wire encoding
//! (`fleetio_obs::wire::encode_event`) into a streaming FNV-1a digest —
//! the same byte form `fleetio-store` persists, so a fingerprint match
//! here implies the stored streams would be byte-identical too. One
//! sink per shard makes "same seed ⇒ same per-shard stream, any worker
//! count" a two-u64 comparison per shard.

use std::any::Any;

use fleetio_des::hash::Fnv64;
use fleetio_obs::{wire, ObsEvent, ObsSink};

/// Streams events into an FNV-1a fingerprint of their wire encodings.
#[derive(Debug)]
pub struct FingerprintSink {
    fp: Fnv64,
    events: u64,
    buf: Vec<u8>,
}

impl FingerprintSink {
    /// An empty fingerprint (FNV offset basis, zero events).
    pub fn new() -> Self {
        FingerprintSink {
            fp: Fnv64::new(),
            events: 0,
            buf: Vec::new(),
        }
    }

    /// The running digest.
    pub fn fingerprint(&self) -> u64 {
        self.fp.finish()
    }

    /// Events folded in.
    pub fn event_count(&self) -> u64 {
        self.events
    }
}

impl Default for FingerprintSink {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsSink for FingerprintSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: ObsEvent) {
        self.buf.clear();
        wire::encode_event(&ev, &mut self.buf);
        self.fp.update(&self.buf);
        self.events += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::SimTime;

    fn ev(at: u64) -> ObsEvent {
        ObsEvent::WindowFlush {
            at: SimTime::from_nanos(at),
            vssd: 0,
            avg_bandwidth: 0.0,
            avg_iops: 0.0,
            p99_latency: fleetio_des::SimDuration::ZERO,
            slo_violation_rate: 0.0,
            gc_busy_frac: 0.0,
            total_bytes: 0,
            total_ops: 0,
        }
    }

    #[test]
    fn fingerprint_tracks_event_stream() {
        let mut a = FingerprintSink::new();
        let mut b = FingerprintSink::new();
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.record(ev(1));
        a.record(ev(2));
        b.record(ev(1));
        assert_eq!(a.event_count(), 2);
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.record(ev(2));
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Order matters.
        let mut c = FingerprintSink::new();
        c.record(ev(2));
        c.record(ev(1));
        assert_ne!(c.fingerprint(), a.fingerprint());
    }
}
