//! The fleet's model bank: per-tenant state histories over a small set
//! of shared frozen models, with all greedy inferences per window run
//! as one matrix pass per model ([`fleetio_ml::Mlp::forward_batch`]).
//!
//! Per tenant the result is bit-identical to a private
//! `fleetio::FleetIoAgent::decide` on the same model: the history push,
//! frozen-normalizer apply and greedy argmax all reuse the exact
//! per-row arithmetic, batching only the matrix products.

use fleetio::actions::AgentAction;
use fleetio::agent::PretrainedModel;
use fleetio::config::FleetIoConfig;
use fleetio::states::{StateHistory, StateVector};
use fleetio_des::rng::SmallRng;
use fleetio_rl::{ObsNormalizer, PpoPolicy};

/// The registry tag the fleet files its fallback model under.
pub const DEFAULT_MODEL_TAG: &str = "default";

/// A frozen fallback model with FleetIO's deployment dimensions and a
/// passthrough normalizer — the bank's model zero when no pre-trained
/// checkpoint is supplied. Seeded, so fleets are reproducible without a
/// registry on disk.
pub fn default_model(seed: u64) -> PretrainedModel {
    let cfg = FleetIoConfig::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let policy = PpoPolicy::new(
        cfg.obs_dim(),
        &cfg.action_dims(),
        &cfg.hidden_layers,
        &mut rng,
    );
    let mut normalizer = ObsNormalizer::new(cfg.obs_dim(), 10.0);
    normalizer.freeze();
    PretrainedModel { policy, normalizer }
}

/// Per-tenant histories over shared frozen models, batch-inferred.
#[derive(Debug)]
pub struct PolicyBank {
    models: Vec<(String, PretrainedModel)>,
    /// Tenant index → model index.
    assignment: Vec<usize>,
    histories: Vec<StateHistory>,
    obs_dim: usize,
}

impl PolicyBank {
    /// A bank of `n_tenants` tenants all assigned to `default` (filed
    /// under [`DEFAULT_MODEL_TAG`]), each with a zero-padded
    /// `history_windows`-deep state history. The model's normalizer is
    /// frozen on entry, matching `FleetIoAgent::new`.
    ///
    /// # Panics
    ///
    /// Panics if `n_tenants` or `history_windows` is zero.
    pub fn new(default: PretrainedModel, n_tenants: usize, history_windows: usize) -> Self {
        assert!(n_tenants > 0, "need at least one tenant");
        let obs_dim = default.normalizer.dim();
        let mut bank = PolicyBank {
            models: Vec::new(),
            assignment: vec![0; n_tenants],
            histories: (0..n_tenants)
                .map(|_| StateHistory::new(history_windows))
                .collect(),
            obs_dim,
        };
        bank.intern(DEFAULT_MODEL_TAG, default);
        bank
    }

    fn intern(&mut self, tag: &str, model: PretrainedModel) -> usize {
        if let Some(i) = self.models.iter().position(|(t, _)| t == tag) {
            return i;
        }
        assert_eq!(
            model.normalizer.dim(),
            self.obs_dim,
            "model {tag:?} has mismatched observation dimension"
        );
        let mut model = model;
        model.normalizer.freeze();
        self.models.push((tag.to_string(), model));
        self.models.len() - 1
    }

    /// Reassigns `tenant` to the model filed under `tag`, interning
    /// `model` if the tag is new, and resets the tenant's history (a
    /// migrated tenant's stacked windows describe the old placement).
    pub fn assign(&mut self, tenant: u32, tag: &str, model: PretrainedModel) {
        let idx = self.intern(tag, model);
        self.assignment[tenant as usize] = idx;
        self.reset_history(tenant);
    }

    /// Clears `tenant`'s stacked windows (migration without a model
    /// change).
    pub fn reset_history(&mut self, tenant: u32) {
        self.histories[tenant as usize].reset();
    }

    /// The tag of the model `tenant` currently runs.
    pub fn tag_of(&self, tenant: u32) -> &str {
        &self.models[self.assignment[tenant as usize]].0
    }

    /// Distinct models interned.
    pub fn n_models(&self) -> usize {
        self.models.len()
    }

    /// Feeds each tenant's newest window state and returns every
    /// tenant's greedy action, in ascending tenant order. Tenants are
    /// grouped by model; each group is one batched normalizer apply and
    /// one batched actor pass.
    pub fn decide_all(&mut self, states: &[(u32, StateVector)]) -> Vec<(u32, AgentAction)> {
        for (tenant, state) in states {
            self.histories[*tenant as usize].push(*state);
        }
        let mut out: Vec<(u32, AgentAction)> = Vec::with_capacity(states.len());
        for (mi, (_, model)) in self.models.iter().enumerate() {
            let group: Vec<u32> = states
                .iter()
                .map(|(t, _)| *t)
                .filter(|t| self.assignment[*t as usize] == mi)
                .collect();
            if group.is_empty() {
                continue;
            }
            let mut flat = Vec::with_capacity(group.len() * self.obs_dim);
            for &t in &group {
                flat.extend_from_slice(&self.histories[t as usize].observation());
            }
            let mut norm = Vec::with_capacity(flat.len());
            model.normalizer.normalize_batch(&flat, &mut norm);
            for (heads, &t) in model
                .policy
                .act_greedy_batch(&norm, group.len())
                .iter()
                .zip(&group)
            {
                out.push((t, AgentAction::from_heads(heads)));
            }
        }
        out.sort_by_key(|(t, _)| *t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio::agent::FleetIoAgent;

    fn state(i: u32) -> StateVector {
        let mut s = StateVector::zero();
        s.avg_bw = 1e6 * f64::from(i + 1);
        s.avg_iops = 250.0 * f64::from(i + 1);
        s.slo_vio = 0.01 * f64::from(i % 3);
        s
    }

    /// The bank's batched path must reproduce serial per-tenant
    /// `FleetIoAgent::decide` exactly, window after window.
    #[test]
    fn batched_decisions_match_serial_agents() {
        let model = default_model(3);
        let mut bank = PolicyBank::new(model.clone(), 5, 3);
        let mut agents: Vec<FleetIoAgent> = (0..5).map(|_| FleetIoAgent::new(&model, 3)).collect();
        for round in 0..4 {
            let states: Vec<(u32, StateVector)> =
                (0..5u32).map(|t| (t, state(t * 7 + round))).collect();
            let batched = bank.decide_all(&states);
            for (tenant, action) in batched {
                let serial = agents[tenant as usize].decide(states[tenant as usize].1);
                assert_eq!(action, serial, "tenant {tenant} round {round}");
            }
        }
    }

    #[test]
    fn assign_interns_by_tag_and_resets_history() {
        let mut bank = PolicyBank::new(default_model(3), 3, 3);
        assert_eq!(bank.n_models(), 1);
        assert_eq!(bank.tag_of(1), DEFAULT_MODEL_TAG);
        let other = default_model(99);
        bank.assign(1, "bi", other.clone());
        bank.assign(2, "bi", other.clone());
        assert_eq!(bank.n_models(), 2, "same tag interned once");
        assert_eq!(bank.tag_of(1), "bi");
        // Tenant 1's history restarted: its first post-assign decision
        // matches a fresh agent's first decision.
        let mut fresh = FleetIoAgent::new(&other, 3);
        let states: Vec<(u32, StateVector)> = (0..3u32).map(|t| (t, state(t))).collect();
        let batched = bank.decide_all(&states);
        assert_eq!(batched[1].1, fresh.decide(state(1)));
    }

    #[test]
    fn partial_state_sets_decide_only_those_tenants() {
        let mut bank = PolicyBank::new(default_model(3), 4, 3);
        let states = vec![(2u32, state(0)), (0u32, state(1))];
        let out = bank.decide_all(&states);
        let tenants: Vec<u32> = out.iter().map(|(t, _)| *t).collect();
        assert_eq!(tenants, vec![0, 2], "ascending tenant order");
    }
}
