//! Fleet-wide SLO accounting and the health-report surface.
//!
//! [`FleetObs`] is the measurement side of the control plane: it owns
//! one [`SloTracker`] per SLO-carrying tenant, the fixed-capacity
//! windowed time-series ([`fleetio_obs::SeriesSet`]), the fleet-wide
//! merged latency histogram, and the annotated migration log. The
//! runtime feeds it once per window from the **serial** merge — inputs
//! arrive in shard-index order and every fold below preserves that
//! order, so a same-seed run renders a byte-identical health report and
//! series export for any worker count.
//!
//! Overhead envelope: one histogram clone per slot per window (done in
//! the parallel shard phase), one `merge` + two percentile scans per
//! slot at the serial merge, and one ring write per registered series.
//! Nothing here allocates in the steady state except the verdict
//! history, whose capacity is reserved up front for the spec's window
//! count.

use fleetio_des::{LatencyHistogram, SimDuration};
use fleetio_obs::slo::BURN_WINDOWS;
use fleetio_obs::{SeriesId, SeriesSet, SloTracker, WindowVerdict};

use crate::control::MigrationDecision;
use crate::shard::ShardWindowReport;
use crate::spec::FleetSpec;

/// One tenant's SLO outcome for one window, produced at the merge.
/// `shard`/`slot` locate the tenant's residence (where its obs events
/// are emitted); `burn` is the tracker's rolling violation fraction
/// *after* this window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloOutcome {
    /// The tenant.
    pub tenant: u32,
    /// Resident shard this window.
    pub shard: u32,
    /// Resident slot this window.
    pub slot: u32,
    /// The window's verdict.
    pub verdict: WindowVerdict,
    /// Rolling violation fraction after this window.
    pub burn: f64,
}

/// Fleet observability state: per-tenant SLO trackers, windowed series,
/// and the annotated migration history. See the module docs.
#[derive(Debug)]
pub struct FleetObs {
    window_len: SimDuration,
    /// One tracker per tenant; `None` = tenant has no SLO.
    trackers: Vec<Option<SloTracker>>,
    /// Per-tenant verdict history, window order (capacity reserved for
    /// the spec's window count).
    verdicts: Vec<Vec<WindowVerdict>>,
    series: SeriesSet,
    tenant_p95: Vec<SeriesId>,
    tenant_p99: Vec<SeriesId>,
    shard_util: Vec<SeriesId>,
    shard_queue: Vec<SeriesId>,
    fleet_p95: SeriesId,
    fleet_p99: SeriesId,
    fleet_gc_events: SeriesId,
    fleet_harvested: SeriesId,
    fleet_migrations: SeriesId,
    /// Scratch for the cross-shard histogram merge (cleared per window).
    fleet_hist: LatencyHistogram,
    /// Executed migrations, execution order, with cause annotations.
    migrations: Vec<MigrationDecision>,
}

impl FleetObs {
    /// Builds the observability state for `spec`: registers every
    /// series with capacity for the spec's window count and installs a
    /// tracker for each tenant that carries an [`fleetio_obs::SloSpec`].
    pub fn new(spec: &FleetSpec) -> Self {
        let cap = spec.windows.max(1) as usize;
        let mut series = SeriesSet::new();
        let tenant_p95 = (0..spec.tenants.len())
            .map(|t| series.register(&format!("tenant{t}.p95_ns"), cap))
            .collect();
        let tenant_p99 = (0..spec.tenants.len())
            .map(|t| series.register(&format!("tenant{t}.p99_ns"), cap))
            .collect();
        let shard_util = (0..spec.shards)
            .map(|s| series.register(&format!("shard{s}.util"), cap))
            .collect();
        let shard_queue = (0..spec.shards)
            .map(|s| series.register(&format!("shard{s}.queue_depth"), cap))
            .collect();
        let fleet_p95 = series.register("fleet.p95_ns", cap);
        let fleet_p99 = series.register("fleet.p99_ns", cap);
        let fleet_gc_events = series.register("fleet.gc_events", cap);
        let fleet_harvested = series.register("fleet.harvested_channels", cap);
        let fleet_migrations = series.register("fleet.migrations", cap);
        FleetObs {
            window_len: spec.window,
            trackers: spec
                .tenants
                .iter()
                .map(|t| t.slo.map(SloTracker::new))
                .collect(),
            verdicts: (0..spec.tenants.len())
                .map(|_| Vec::with_capacity(cap))
                .collect(),
            series,
            tenant_p95,
            tenant_p99,
            shard_util,
            shard_queue,
            fleet_p95,
            fleet_p99,
            fleet_gc_events,
            fleet_harvested,
            fleet_migrations,
            fleet_hist: LatencyHistogram::new(),
            migrations: Vec::new(),
        }
    }

    /// Folds one window's shard reports into trackers and series.
    /// `reports` and `utils` arrive in shard-index order from the
    /// serial merge; the returned outcomes follow (shard, slot) order.
    pub fn record_window(
        &mut self,
        window: u32,
        reports: &[ShardWindowReport],
        utils: &[f64],
        executed_migrations: usize,
    ) -> Vec<SloOutcome> {
        let mut outcomes = Vec::new();
        let mut gc_events = 0u64;
        let mut harvested = 0u64;
        self.fleet_hist.clear();
        for (s, report) in reports.iter().enumerate() {
            self.series.push(self.shard_util[s], window, utils[s]);
            self.series
                .push(self.shard_queue[s], window, report.queue_depth as f64);
            for (slot, hist) in report.latencies.iter().enumerate() {
                // Per-shard partial histograms merge in shard-index
                // (then slot) order — the fleet-wide percentile is a
                // pure fold over the ordered reports.
                self.fleet_hist.merge(hist);
                let Some(tenant) = report.tenants[slot] else {
                    continue;
                };
                let Some(tracker) = &mut self.trackers[tenant as usize] else {
                    continue;
                };
                let bytes = report.summaries[slot].1.total_bytes;
                let verdict = tracker.observe(window, hist, bytes, self.window_len);
                self.verdicts[tenant as usize].push(verdict);
                self.series.push(
                    self.tenant_p95[tenant as usize],
                    window,
                    verdict.p95.as_nanos() as f64,
                );
                self.series.push(
                    self.tenant_p99[tenant as usize],
                    window,
                    verdict.p99.as_nanos() as f64,
                );
                outcomes.push(SloOutcome {
                    tenant,
                    shard: report.shard,
                    slot: slot as u32,
                    verdict,
                    burn: tracker.burn_rate(),
                });
            }
            for (_, w) in &report.summaries {
                gc_events += w.gc_events;
            }
            for snap in &report.snapshots {
                harvested += snap.harvested_channels as u64;
            }
        }
        let p95 = self
            .fleet_hist
            .percentile(95.0)
            .unwrap_or(SimDuration::ZERO);
        let p99 = self
            .fleet_hist
            .percentile(99.0)
            .unwrap_or(SimDuration::ZERO);
        self.series
            .push(self.fleet_p95, window, p95.as_nanos() as f64);
        self.series
            .push(self.fleet_p99, window, p99.as_nanos() as f64);
        self.series
            .push(self.fleet_gc_events, window, gc_events as f64);
        self.series
            .push(self.fleet_harvested, window, harvested as f64);
        self.series
            .push(self.fleet_migrations, window, executed_migrations as f64);
        outcomes
    }

    /// Appends executed migrations (execution order) to the annotated
    /// timeline.
    pub fn record_migrations(&mut self, executed: &[MigrationDecision]) {
        self.migrations.extend_from_slice(executed);
    }

    /// The recorded time-series.
    pub fn series(&self) -> &SeriesSet {
        &self.series
    }

    /// The SLO tracker of `tenant`, if it carries an SLO.
    pub fn tracker(&self, tenant: u32) -> Option<&SloTracker> {
        self.trackers[tenant as usize].as_ref()
    }

    /// All window verdicts of `tenant` so far, window order.
    pub fn verdicts(&self, tenant: u32) -> &[WindowVerdict] {
        &self.verdicts[tenant as usize]
    }

    /// Renders the text fleet-health dashboard: header, per-tenant SLO
    /// attainment table, worst-window drill-down, migration timeline
    /// and series inventory. Pure function of recorded state —
    /// byte-identical for same-seed runs.
    pub fn render_report(&self, spec: &FleetSpec) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let tracked: Vec<(u32, &SloTracker)> = self
            .trackers
            .iter()
            .enumerate()
            .filter_map(|(t, tr)| tr.as_ref().map(|tr| (t as u32, tr)))
            .collect();
        let observed: u32 = tracked.iter().map(|(_, tr)| tr.observed()).sum();
        let violated: u32 = tracked.iter().map(|(_, tr)| tr.violations()).sum();
        let fleet_att = if observed == 0 {
            1.0
        } else {
            f64::from(observed - violated) / f64::from(observed)
        };
        let _ = writeln!(out, "FLEET HEALTH REPORT");
        let _ = writeln!(out, "===================");
        let _ = writeln!(
            out,
            "shards: {}  slots/shard: {}  tenants: {} ({} tracked)  window: {} ms",
            spec.shards,
            spec.slots_per_shard,
            spec.tenants.len(),
            tracked.len(),
            spec.window.as_millis_f64()
        );
        let _ = writeln!(
            out,
            "tracked windows: {observed}  violations: {violated}  fleet attainment: {:.1}%  \
             migrations: {}",
            fleet_att * 100.0,
            self.migrations.len()
        );
        let _ = writeln!(out);

        let _ = writeln!(out, "PER-TENANT SLO ATTAINMENT");
        let _ = writeln!(
            out,
            "{:<8}{:<16}{:>8}{:>8}{:>8}{:>9}{:>8}",
            "tenant", "kind", "windows", "viol", "att%", "streak", "burn"
        );
        for (t, tr) in &tracked {
            let _ = writeln!(
                out,
                "{:<8}{:<16}{:>8}{:>8}{:>7.1}%{:>9}{:>8.3}",
                format!("t{t}"),
                spec.tenants[*t as usize].kind.name(),
                tr.observed(),
                tr.violations(),
                tr.attainment() * 100.0,
                tr.longest_streak(),
                tr.burn_rate()
            );
        }
        let _ = writeln!(out);

        let _ = writeln!(out, "WORST WINDOWS (top 5 by miss ratio)");
        let mut worst: Vec<(u32, f64, &WindowVerdict)> = tracked
            .iter()
            .filter_map(|(t, tr)| {
                tr.worst_severity()
                    .zip(tr.worst_window())
                    .map(|(s, v)| (*t, s, v))
            })
            .collect();
        // Severity descending, tenant index ascending on exact ties.
        worst.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        if worst.is_empty() {
            let _ = writeln!(out, "(no violations)");
        }
        for (t, severity, v) in worst.iter().take(5) {
            let _ = writeln!(
                out,
                "t{t} w{}: p95 {:.3} ms, p99 {:.3} ms, {:.1} MB/s, {} ops, miss x{:.2} \
                 [p95_ok={} p99_ok={} tp_ok={}]",
                v.window,
                v.p95.as_millis_f64(),
                v.p99.as_millis_f64(),
                v.throughput / 1e6,
                v.ops,
                severity,
                v.p95_ok,
                v.p99_ok,
                v.throughput_ok
            );
        }
        let _ = writeln!(out);

        let _ = writeln!(out, "MIGRATION TIMELINE");
        if self.migrations.is_empty() {
            let _ = writeln!(out, "(none)");
        }
        for m in &self.migrations {
            let _ = writeln!(
                out,
                "w{}: t{} {} -> {} cause={} mean={:.3} src {:.3}->{:.3} dst {:.3}->{:.3}",
                m.window,
                m.tenant,
                m.from,
                m.to,
                m.cause.tag(),
                m.mean_util,
                m.src_util,
                m.src_util_after,
                m.dst_util,
                m.dst_util_after
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "series: {} registered, {} points dropped (burn horizon: {BURN_WINDOWS} windows)",
            self.series.n_series(),
            self.series.total_dropped()
        );
        out
    }
}
