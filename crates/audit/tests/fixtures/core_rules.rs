//! scan-as: crates/vssd/src/core_fixture.rs
//!
//! One violating snippet per line-local rule that applies to the
//! simulator core scope (`crates/vssd/src/` is in core, sim, and quiet
//! scope, but outside the engine event-handler directory).

pub fn convert(total_ns: u64) -> f64 {
    total_ns as f64 / 1e9 //~ raw-time-arith
}

pub fn lookup(v: &[u32]) -> u32 {
    *v.first().unwrap() //~ no-unwrap
}

pub fn lookup_expect(v: &[u32]) -> u32 {
    *v.first().expect("short") //~ no-unwrap
}

pub fn count(keys: &[u32]) -> usize {
    let mut seen = std::collections::HashMap::new(); //~ hash-iteration
    for k in keys {
        seen.insert(*k, ());
    }
    seen.len()
}

pub fn roll() -> u32 {
    thread_rng().gen_range(0..4) //~ entropy
}

pub fn report(n: usize) {
    println!("{n} events"); //~ no-println
}

pub fn persist(data: &[u8]) {
    std::fs::write("out.bin", data).ok(); //~ atomic-io
}
