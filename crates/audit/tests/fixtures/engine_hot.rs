//! scan-as: crates/vssd/src/engine/hot_fixture.rs
//!
//! Engine event-handler scope rules: the flow-aware
//! `hot-path-collections` rule must flag both the map type mention (the
//! struct field) and the per-event operation on the map-typed binding at
//! a line that never names the type; `unchecked-ops` must flag unchecked
//! indexing.

pub struct Tracker {
    index: std::collections::BTreeMap<u64, u64>, //~ hot-path-collections
}

impl Tracker {
    pub fn handle(&mut self, key: u64) -> Option<u64> {
        self.index.get(&key).copied() //~ hot-path-collections
    }

    pub fn first(&self, slots: &[u64]) -> u64 {
        unsafe { *slots.get_unchecked(0) } //~ unchecked-ops
    }
}
