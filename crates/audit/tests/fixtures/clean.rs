//! scan-as: crates/vssd/src/engine/clean_fixture.rs
//!
//! Zero expected diagnostics: dense storage on the hot path, and every
//! would-be violation properly gated behind `#[cfg(test)]` or
//! `#[cfg(feature = "audit")]` (both exempt from line-local and
//! cost-based rules).

pub struct Dense {
    slots: Vec<Option<u64>>,
}

impl Dense {
    pub fn handle(&mut self, idx: usize) -> Option<u64> {
        self.slots.get(idx).copied().flatten()
    }
}

#[cfg(feature = "audit")]
pub fn cross_check(slots: &[Option<u64>]) -> usize {
    let mut seen = std::collections::BTreeMap::new();
    for (i, s) in slots.iter().enumerate() {
        if s.is_some() {
            seen.insert(i, ());
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles() {
        let mut d = Dense {
            slots: vec![Some(7)],
        };
        let started = std::time::Instant::now();
        assert_eq!(d.handle(0).unwrap(), 7);
        assert!(started.elapsed().as_secs() < 60);
    }
}
