//! scan-as: crates/vssd/src/engine/taint_fixture.rs
//!
//! Synthetic taint chain: a nondeterminism source (`Instant::now`) two
//! calls below `Engine::dispatch_event`. The taint rule must report the
//! source line with the full root-to-source call chain; the line-local
//! `host-time-scope` rule fires on the same line independently.

pub struct Engine;

impl Engine {
    pub fn dispatch_event(&self) {
        self.helper();
    }

    fn helper(&self) {
        leaf_timestamp();
    }
}

fn leaf_timestamp() -> u64 {
    let t = std::time::Instant::now(); //~ host-time-scope //~ determinism-taint
    t.elapsed().as_nanos() as u64
}
