//! Golden test pinning the determinism-taint analysis on the real tree.
//!
//! The summary is deliberately line-number free (roots with their defining
//! files, per-file nondeterminism-source counts with sanctioned markers,
//! and the finding count), so ordinary refactors inside a file do not
//! churn it — but a root failing to resolve, a source appearing or
//! disappearing in sim scope, or a new reachable finding all do.
//!
//! To refresh after an intentional change:
//!   cargo run -p fleetio-audit -- taint > crates/audit/tests/golden/taint_summary.txt

use fleetio_audit::{build_workspace, default_root, graph, parse_dep_graph, scan_workspace};

#[test]
fn taint_summary_matches_golden() {
    let root = default_root();
    let scanned = scan_workspace(&root).unwrap();
    let deps = parse_dep_graph(&root).unwrap();
    let ws = build_workspace(&scanned, &deps);
    let actual = graph::taint_summary(&ws);
    let golden = include_str!("golden/taint_summary.txt");
    assert_eq!(
        actual, golden,
        "taint summary drifted from golden; if intentional, regenerate with\n  \
         cargo run -p fleetio-audit -- taint > crates/audit/tests/golden/taint_summary.txt"
    );
}

#[test]
fn all_roots_resolve_on_the_real_tree() {
    // Belt-and-braces beyond the golden text: an unresolved root means the
    // taint rule silently checks nothing from that entry point.
    let root = default_root();
    let scanned = scan_workspace(&root).unwrap();
    let deps = parse_dep_graph(&root).unwrap();
    let ws = build_workspace(&scanned, &deps);
    for (name, ids) in ws.root_resolutions() {
        assert!(!ids.is_empty(), "taint root `{name}` did not resolve");
    }
}
