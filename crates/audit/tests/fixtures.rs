//! Seeded-violation fixtures: every rule must fire at the exact annotated
//! line, and only there.
//!
//! Each file under `tests/fixtures/` declares the workspace-relative path
//! it should be scanned as on its first line (`//! scan-as: <path>`) and
//! marks every expected diagnostic with one `//~ <rule-id>` annotation per
//! expected finding on the violating line. Each fixture is analyzed as a
//! single-file workspace with an unrestricted dependency graph, so the
//! expectations are local to the file.

use std::collections::BTreeMap;
use std::path::PathBuf;

use fleetio_audit::graph::DepGraph;
use fleetio_audit::scan::ScannedFile;
use fleetio_audit::{analyze, rules::Diagnostic};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Parses `//~ rule` annotations into a `(line, rule) -> count` multiset.
fn expected_of(source: &str) -> BTreeMap<(usize, String), usize> {
    let mut out = BTreeMap::new();
    for (i, line) in source.lines().enumerate() {
        for seg in line.split("//~").skip(1) {
            let rule = seg
                .split_whitespace()
                .next()
                .unwrap_or_else(|| panic!("line {}: empty //~ annotation", i + 1));
            *out.entry((i + 1, rule.to_string())).or_insert(0) += 1;
        }
    }
    out
}

fn found_of(diags: &[Diagnostic]) -> BTreeMap<(usize, String), usize> {
    let mut out = BTreeMap::new();
    for d in diags {
        *out.entry((d.line, d.rule.to_string())).or_insert(0) += 1;
    }
    out
}

fn scan_as(source: &str, fixture: &str) -> String {
    source
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("//! scan-as: "))
        .unwrap_or_else(|| panic!("{fixture}: first line must be `//! scan-as: <path>`"))
        .trim()
        .to_string()
}

fn analyze_fixture(fixture: &str) -> (String, Vec<Diagnostic>) {
    let path = fixtures_dir().join(fixture);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let scanned = ScannedFile::new(&scan_as(&source, fixture), &source);
    let diags = analyze(std::slice::from_ref(&scanned), &DepGraph::unrestricted());
    (source, diags)
}

#[test]
fn every_fixture_matches_its_annotations_exactly() {
    let dir = fixtures_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("listing {}: {e}", dir.display()))
        .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(names.len() >= 4, "fixture tree went missing: {names:?}");
    for name in names {
        let (source, diags) = analyze_fixture(&name);
        let expected = expected_of(&source);
        let found = found_of(&diags);
        assert_eq!(
            expected, found,
            "{name}: annotated vs reported (line, rule) mismatch.\nreported: {diags:#?}"
        );
    }
}

#[test]
fn every_rule_is_covered_by_a_fixture() {
    // The fixture suite must stay exhaustive: adding a rule without a
    // seeded violation fails here, not silently.
    let mut covered: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(fixtures_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rs") {
            let source = std::fs::read_to_string(&path).unwrap();
            covered.extend(expected_of(&source).keys().map(|(_, r)| r.clone()));
        }
    }
    for rule in fleetio_audit::rules::RULE_IDS {
        assert!(
            covered.iter().any(|c| c == rule),
            "rule `{rule}` has no seeded-violation fixture"
        );
    }
}

#[test]
fn taint_fixture_reports_the_full_call_chain() {
    let (_, diags) = analyze_fixture("taint_chain.rs");
    let taint: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == "determinism-taint")
        .collect();
    assert_eq!(taint.len(), 1, "{diags:#?}");
    assert_eq!(
        taint[0].chain,
        vec![
            "Engine::dispatch_event".to_string(),
            "Engine::helper".to_string(),
            "leaf_timestamp".to_string(),
        ],
        "{:#?}",
        taint[0]
    );
    assert!(
        taint[0].message.contains("host-time"),
        "source kind missing from message: {}",
        taint[0].message
    );
}

#[test]
fn clean_fixture_is_clean() {
    let (_, diags) = analyze_fixture("clean.rs");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn real_workspace_is_clean() {
    // The acceptance bar for the whole pipeline: the actual tree passes
    // with the taint rule enabled (and the checked-in allowlist).
    let outcome = fleetio_audit::run_check(&fleetio_audit::default_root()).unwrap();
    assert!(
        outcome.is_clean(),
        "violations: {:#?}\nstale: {:#?}",
        outcome.violations,
        outcome.stale_allowlist
    );
}
