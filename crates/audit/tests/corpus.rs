//! Masking/tokenizer corpus: the Rust surface syntax that broke (or could
//! break) the v1 masked-line scanner. Every snippet is real, compilable
//! Rust shape; each test pins both the masked text and the token stream so
//! a regression in either layer fails with the exact snippet named.

use fleetio_audit::scan::{mask_source, ScannedFile};
use fleetio_audit::token::{tokenize, TokKind};

/// Masking must be byte-length preserving (offsets in masked text ==
/// offsets in raw text) and newline preserving on every corpus snippet.
fn assert_mask_invariants(src: &str) {
    let masked = mask_source(src);
    assert_eq!(masked.len(), src.len(), "mask changed byte length:\n{src}");
    assert_eq!(
        masked.matches('\n').count(),
        src.matches('\n').count(),
        "mask changed line count:\n{src}"
    );
}

#[test]
fn lifetime_is_not_a_char_literal() {
    // v1's naive `'` handling treated `'a` as an unterminated char literal
    // and blanked the rest of the line, hiding `HashMap` from the rules.
    let src = "fn first<'a>(m: &'a str, h: &'a HashMap<u8, u8>) -> &'a str { m }\n";
    assert_mask_invariants(src);
    let masked = mask_source(src);
    assert!(masked.contains("HashMap"), "lifetime ate code: {masked}");
    assert!(masked.contains("&'a str"), "lifetime blanked: {masked}");

    let toks = tokenize(src);
    assert!(
        toks.iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"),
        "no lifetime token: {toks:?}"
    );
    assert!(
        toks.iter().all(|t| t.kind != TokKind::Char),
        "lifetime lexed as char: {toks:?}"
    );
    assert!(toks.iter().any(|t| t.is_ident("HashMap")));
}

#[test]
fn char_literals_including_escapes_are_blanked() {
    let src = r#"let a = 'x'; let b = '\n'; let c = '\''; let d = '\u{1F600}'; let e = 'é';"#;
    assert_mask_invariants(src);
    let masked = mask_source(src);
    assert!(!masked.contains('x') || masked.contains("x "), "{masked}");
    for frag in ["'x'", "\\n", "\\'", "1F600", "é"] {
        assert!(
            !masked.contains(frag),
            "char body `{frag}` survived: {masked}"
        );
    }
    let toks = tokenize(src);
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::Char).count(),
        5,
        "{toks:?}"
    );
}

#[test]
fn raw_strings_with_hashes() {
    // A raw string whose body contains `"#` must only close at `"##`.
    let src = "let s = r##\"quote \"# inside, and Instant::now() too\"##; let after = 1;\n";
    assert_mask_invariants(src);
    let masked = mask_source(src);
    assert!(
        !masked.contains("Instant"),
        "raw-string body survived masking: {masked}"
    );
    assert!(
        masked.contains("after"),
        "masking overshot the raw string: {masked}"
    );
    let toks = tokenize(src);
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    assert!(toks.iter().any(|t| t.is_ident("after")));
    assert!(!toks.iter().any(|t| t.is_ident("Instant")));
}

#[test]
fn byte_strings_and_byte_literals() {
    let src = "let b = b\"SystemTime bytes\"; let rb = br#\"raw \" body\"#; let x = b'\\n'; let ok = 2;\n";
    assert_mask_invariants(src);
    let masked = mask_source(src);
    assert!(!masked.contains("SystemTime"), "{masked}");
    assert!(!masked.contains("raw"), "{masked}");
    assert!(masked.contains("ok"), "{masked}");
    let toks = tokenize(src);
    assert!(!toks.iter().any(|t| t.is_ident("SystemTime")));
    assert!(toks.iter().any(|t| t.is_ident("ok")));
}

#[test]
fn prefix_only_applies_at_identifier_start() {
    // `herb"x"` is ident `herb` followed by a plain string — the trailing
    // `b` must not be folded into the literal as a byte-string prefix.
    let src = "let herb\"x\" = 1;\n"; // not valid Rust, but the lexer must not panic
    assert_mask_invariants(src);
    let masked = mask_source(src);
    assert!(masked.contains("herb"), "{masked}");
    assert!(!masked.contains('x'), "{masked}");
}

#[test]
fn nested_block_comments() {
    let src = "/* outer /* inner HashMap */ still comment Instant::now() */ let live = 3;\n";
    assert_mask_invariants(src);
    let masked = mask_source(src);
    assert!(!masked.contains("HashMap"), "{masked}");
    assert!(!masked.contains("Instant"), "{masked}");
    assert!(masked.contains("live"), "{masked}");
    let toks = tokenize(src);
    assert!(toks.iter().any(|t| t.is_ident("live")));
    assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
}

#[test]
fn multiline_string_keeps_line_numbers() {
    let src = "let s = \"line one\nline two with HashMap\nline three\";\nlet after = 4;\n";
    assert_mask_invariants(src);
    let masked = mask_source(src);
    assert!(!masked.contains("HashMap"), "{masked}");
    // `after` sits on line 4 in both views.
    assert_eq!(
        masked.lines().nth(3).map(|l| l.contains("after")),
        Some(true)
    );
    let toks = tokenize(src);
    let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
    assert_eq!(after.line, 4);
    // The string token carries its START line (1), so rules attributing a
    // finding inside a multi-line literal point at the opening quote.
    let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
    assert_eq!(s.line, 1);
}

#[test]
fn escaped_quote_does_not_end_string() {
    let src = r#"let s = "say \" HashMap \\"; let live = 5;"#;
    assert_mask_invariants(src);
    let masked = mask_source(src);
    assert!(!masked.contains("HashMap"), "{masked}");
    assert!(masked.contains("live"), "{masked}");
}

#[test]
fn raw_identifiers_lex_as_their_name() {
    let src = "fn r#match(r#type: u8) -> u8 { r#type }\n";
    let toks = tokenize(src);
    assert!(toks.iter().any(|t| t.is_ident("match")), "{toks:?}");
    assert!(toks.iter().any(|t| t.is_ident("type")), "{toks:?}");
}

#[test]
fn composed_puncts_and_numbers() {
    let src = "let x: u64 = 0x9e37_79b9; let y = 1.5e3 + x as f64; v += 1; p::<u8>();\n";
    let toks = tokenize(src);
    assert!(
        toks.iter()
            .any(|t| t.kind == TokKind::Int && t.text == "0x9e37_79b9"),
        "{toks:?}"
    );
    assert!(
        toks.iter()
            .any(|t| t.kind == TokKind::Float && t.text == "1.5e3"),
        "{toks:?}"
    );
    assert!(toks.iter().any(|t| t.is_punct("+=")), "{toks:?}");
    assert!(toks.iter().any(|t| t.is_punct("::")), "{toks:?}");
}

#[test]
fn attribute_gating_sees_through_literal_laden_attrs() {
    // The test attr search runs on RAW text because masking blanks the
    // string inside `#[cfg(feature = "audit")]`.
    let src = "\
struct S;

#[cfg(feature = \"audit\")]
fn audit_only() {
    let m = std::collections::HashMap::<u8, u8>::new();
    drop(m);
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let h = std::time::Instant::now();
        drop(h);
    }
}

fn live() {}
";
    let f = ScannedFile::new("crates/x/src/lib.rs", src);
    assert!(f.line_is_audit(5), "HashMap line should be audit-gated");
    assert!(!f.line_is_test(5));
    assert!(f.line_is_test(13), "Instant line should be test-gated");
    assert!(!f.line_is_audit(18));
    assert!(!f.line_is_test(18));
}

#[test]
fn lexer_never_panics_on_malformed_input() {
    // Truncated / garbage inputs: the scanner runs over work-in-progress
    // trees, so every state machine must terminate gracefully.
    for src in [
        "let s = \"unterminated",
        "let c = 'u",
        "r###\"never closed",
        "/* never closed /* nested",
        "'",
        "\\",
        "b'",
        "r#",
        "0x",
        "ident\u{0}with\u{0}nul",
    ] {
        let _ = mask_source(src);
        let _ = tokenize(src);
        let _ = ScannedFile::new("x.rs", src);
    }
}
