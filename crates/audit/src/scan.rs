//! Source-text preprocessing for the lint rules.
//!
//! Each file is scanned once into three coordinated views:
//!
//! * **Masked lines** — comments and string/char literals blanked out
//!   (replaced by spaces, newlines kept) so substring rules cannot match
//!   prose. Masking is byte-for-byte: offsets and line/column positions in
//!   the masked text equal those in the raw text.
//! * **Tokens** — the [`crate::token`] lexer's stream, for the item
//!   extractor, call graph, and flow-aware rules.
//! * **Line classes** — every line is classified as test code (covered by
//!   a `#[cfg(test)]` / `#[test]` attribute's item) and/or audit-only code
//!   (covered by `#[cfg(feature = "audit")]`), by brace-matching from the
//!   attribute to the end of the item it gates.

use crate::token::{tokenize, Tok};

/// A scanned source file ready for rule evaluation.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path with forward slashes, e.g. `crates/des/src/time.rs`.
    pub path: String,
    /// Raw source lines (for snippets and string-literal inspection).
    pub raw_lines: Vec<String>,
    /// Masked source lines (comments and literals blanked).
    pub masked_lines: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` / `#[test]` regions.
    pub is_test_line: Vec<bool>,
    /// `true` for lines inside `#[cfg(feature = "audit")]` regions — code
    /// compiled only when runtime invariant auditing is on, absent from
    /// release/perf builds.
    pub is_audit_line: Vec<bool>,
    /// The file's token stream (comments and whitespace dropped).
    pub toks: Vec<Tok>,
}

impl ScannedFile {
    /// Scans a single source text.
    pub fn new(path: &str, source: &str) -> ScannedFile {
        let masked = mask_source(source);
        let raw_lines: Vec<String> = source.lines().map(str::to_string).collect();
        let masked_lines: Vec<String> = masked.lines().map(str::to_string).collect();
        let n = raw_lines.len();
        let is_test_line = attr_item_map(source, &masked, &["#[cfg(test)]", "#[test]"], n);
        let is_audit_line = attr_item_map(source, &masked, &["#[cfg(feature = \"audit\")]"], n);
        let toks = tokenize(source);
        ScannedFile {
            path: path.to_string(),
            raw_lines,
            masked_lines,
            is_test_line,
            is_audit_line,
            toks,
        }
    }

    /// Iterates `(1-based line number, masked line, raw line)` over non-test lines.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str, &str)> {
        self.masked_lines
            .iter()
            .zip(&self.raw_lines)
            .enumerate()
            .filter(|(i, _)| !self.is_test_line.get(*i).copied().unwrap_or(false))
            .map(|(i, (m, r))| (i + 1, m.as_str(), r.as_str()))
    }

    /// Whether 1-based `line` is inside a test region.
    pub fn line_is_test(&self, line: usize) -> bool {
        line >= 1 && self.is_test_line.get(line - 1).copied().unwrap_or(false)
    }

    /// Whether 1-based `line` is inside a `cfg(feature = "audit")` region.
    pub fn line_is_audit(&self, line: usize) -> bool {
        line >= 1 && self.is_audit_line.get(line - 1).copied().unwrap_or(false)
    }

    /// The raw text of 1-based `line`, trimmed, for diagnostics.
    pub fn snippet(&self, line: usize) -> String {
        self.raw_lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Replaces comments and string/char literals with spaces, preserving
/// newlines (and total byte length) so line/column positions survive.
pub fn mask_source(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut st = St::Code;
    let mut i = 0;
    // Last raw byte emitted in Code state; a literal prefix (`r"`, `b"`)
    // is only a prefix when it starts an identifier, so `herb"x"` keeps
    // its `b`.
    let mut prev_code = b' ';
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                let after_ident = prev_code.is_ascii_alphanumeric() || prev_code == b'_';
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::LineComment;
                    out.push(b' ');
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(1);
                    out.push(b' ');
                } else if c == b'"' {
                    st = St::Str;
                    out.push(b' ');
                } else if (c == b'r' || c == b'b') && !after_ident {
                    // Possible raw/byte string start: r", r#", br", b"...
                    let mut j = i + 1;
                    if c == b'b' && b.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') && (j > i + 1 || c == b'r') {
                        out.extend(std::iter::repeat_n(b' ', j - i + 1));
                        i = j;
                        st = St::RawStr(hashes);
                    } else if c == b'b' && b.get(i + 1) == Some(&b'"') {
                        out.push(b' ');
                    } else {
                        out.push(c);
                    }
                } else if c == b'\'' {
                    // Char literal vs lifetime: a literal is one escape or
                    // one scalar (of any UTF-8 width) followed by a
                    // closing quote; a lifetime has no closing quote.
                    let is_char = match b.get(i + 1) {
                        Some(b'\\') => true,
                        Some(&n) => {
                            let w = match n {
                                0x00..=0x7f => 1,
                                0xc0..=0xdf => 2,
                                0xe0..=0xef => 3,
                                _ => 4,
                            };
                            b.get(i + 1 + w) == Some(&b'\'')
                        }
                        None => false,
                    };
                    if is_char {
                        st = St::Char;
                    }
                    out.push(if is_char { b' ' } else { c });
                } else {
                    out.push(c);
                }
                prev_code = c;
            }
            St::LineComment => {
                if c == b'\n' {
                    st = St::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
            }
            St::BlockComment(depth) => {
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(depth + 1);
                    out.push(b' ');
                    out.push(b' ');
                    i += 1;
                } else if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push(b' ');
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
            St::Str => {
                if c == b'\\' {
                    out.push(b' ');
                    if let Some(&n) = b.get(i + 1) {
                        out.push(if n == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else if c == b'"' {
                    st = St::Code;
                    out.push(b' ');
                    prev_code = b' ';
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
            St::RawStr(hashes) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && b.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        out.extend(std::iter::repeat_n(b' ', j - i));
                        i = j - 1;
                        st = St::Code;
                        prev_code = b' ';
                    } else {
                        out.push(b' ');
                    }
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
            St::Char => {
                if c == b'\\' {
                    out.push(b' ');
                    if b.get(i + 1).is_some() {
                        out.push(b' ');
                        i += 1;
                    }
                } else if c == b'\'' {
                    st = St::Code;
                    out.push(b' ');
                    prev_code = b' ';
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
        }
        i += 1;
    }
    String::from_utf8(out).expect("masking preserves UTF-8: replaced bytes are ASCII spaces")
}

/// Marks every line covered by one of `attrs`'s items (attribute line
/// through the item's closing brace, or through the `;` for brace-less
/// items).
///
/// Attributes are located in the raw text (they may contain string
/// literals, which masking blanks) and validated against the masked text
/// (an attribute spelled inside a comment or string is masked to spaces
/// there, so it cannot match). Brace matching runs on the masked text,
/// where braces inside strings and comments do not exist.
fn attr_item_map(raw: &str, masked: &str, attrs: &[&str], n_lines: usize) -> Vec<bool> {
    let mut map = vec![false; n_lines];
    let bytes = masked.as_bytes();
    for attr in attrs {
        let mut from = 0;
        while let Some(pos) = find_from(raw, attr, from) {
            from = pos + attr.len();
            // Inside a comment or string, masking blanked the `#`.
            if bytes.get(pos) != Some(&b'#') {
                continue;
            }
            let start_line = line_of(bytes, pos);
            let mut depth = 0i32;
            let mut started = false;
            let mut end = bytes.len().saturating_sub(1);
            let mut j = pos + attr.len();
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => {
                        depth += 1;
                        started = true;
                    }
                    b'}' => {
                        depth -= 1;
                        if started && depth == 0 {
                            end = j;
                            break;
                        }
                    }
                    b';' if !started && depth == 0 => {
                        end = j;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let end_line = line_of(bytes, end.min(bytes.len().saturating_sub(1)));
            let last = end_line.min(n_lines.saturating_sub(1));
            if start_line <= last {
                map[start_line..=last].fill(true);
            }
        }
    }
    map
}

fn find_from(hay: &str, needle: &str, from: usize) -> Option<usize> {
    hay.get(from..)
        .and_then(|h| h.find(needle))
        .map(|p| p + from)
}

/// 0-based line index containing byte offset `pos`.
fn line_of(bytes: &[u8], pos: usize) -> usize {
    bytes[..pos.min(bytes.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
}

/// Splits a masked line into lowercase identifier tokens.
pub fn identifiers(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in line.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c.to_ascii_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src =
            "let x = 1; // HashMap here\nlet s = \"thread_rng\"; /* SystemTime */ let y = 2;\n";
        let m = mask_source(src);
        assert!(!m.contains("HashMap"));
        assert!(!m.contains("thread_rng"));
        assert!(!m.contains("SystemTime"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let r = r#\"unwrap() inside\"#; let c = 'x'; let lt: &'static str = id;";
        let m = mask_source(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("'static"), "lifetime survived: {m}");
    }

    #[test]
    fn masking_preserves_byte_length() {
        for src in [
            "let r = r#\"unwrap()\"#; /* c /* d */ */ let c = '\\u{41}';",
            "b\"bytes\"; br##\"raw\"## ; \"esc\\\"aped\"",
        ] {
            assert_eq!(mask_source(src).len(), src.len(), "{src}");
        }
    }

    #[test]
    fn masks_multibyte_char_literal_as_char() {
        // 'é' is two bytes: an ASCII-only closing-quote check would
        // misread it as a lifetime and leak the rest of the line.
        let src = "let c = 'é'; let x = unwrap_me;";
        let m = mask_source(src);
        assert!(m.contains("unwrap_me"), "{m}");
        assert!(!m.contains('é'), "{m}");
    }

    #[test]
    fn ident_ending_in_b_keeps_its_last_letter() {
        let src = "let herb\"x\" = 1;";
        let m = mask_source(src);
        assert!(m.contains("herb"), "{m}");
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ let z = 3;";
        let m = mask_source(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let z = 3;"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn prod() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn prod2() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(!f.is_test_line[0]);
        assert!(f.is_test_line[1] && f.is_test_line[2] && f.is_test_line[3] && f.is_test_line[4]);
        assert!(!f.is_test_line[5]);
    }

    #[test]
    fn test_regions_cover_test_fn() {
        let src = "#[test]\nfn works() {\n    x.unwrap();\n}\nfn prod() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.is_test_line[0] && f.is_test_line[1] && f.is_test_line[2] && f.is_test_line[3]);
        assert!(!f.is_test_line[4]);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse crate::rng::SmallRng;\nfn prod() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.is_test_line[0] && f.is_test_line[1]);
        assert!(!f.is_test_line[2]);
    }

    #[test]
    fn audit_regions_cover_gated_items() {
        let src = "#[cfg(feature = \"audit\")]\nfn sweep() {\n    check();\n}\nfn hot() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.line_is_audit(1) && f.line_is_audit(2) && f.line_is_audit(3));
        assert!(!f.line_is_audit(5));
        // Statement-level gating ends at the semicolon.
        let src =
            "fn f() {\n    #[cfg(feature = \"audit\")]\n    self.audit_event();\n    other();\n}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.line_is_audit(2) && f.line_is_audit(3));
        assert!(!f.line_is_audit(4));
    }

    #[test]
    fn attr_inside_string_or_comment_is_ignored() {
        let src = "let s = \"#[cfg(test)]\";\n// #[cfg(test)]\nfn prod() { x.unwrap(); }\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.is_test_line.iter().all(|t| !t), "{:?}", f.is_test_line);
    }

    #[test]
    fn identifiers_tokenize() {
        assert_eq!(
            identifiers("bus_ns_per_kib = x9 + Foo::BAR"),
            ["bus_ns_per_kib", "x9", "foo", "bar"]
        );
    }

    #[test]
    fn scanned_file_carries_tokens() {
        let f = ScannedFile::new("x.rs", "fn f() { g(); }\n");
        assert!(f.toks.iter().any(|t| t.is_ident("g")));
    }
}
