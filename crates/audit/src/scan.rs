//! Source-text preprocessing for the lint rules.
//!
//! The rules work line-by-line on a *masked* copy of each file: comments and
//! string/char literals are blanked out (replaced by spaces, newlines kept)
//! so token searches cannot match prose, and every line is classified as
//! test or non-test by tracking `#[cfg(test)]` / `#[test]` attribute blocks.
//! This is deliberately not a full parser — the rules are conservative
//! pattern checks, and keeping the scanner dumb keeps its behaviour easy to
//! predict and to grep for.

/// A scanned source file ready for rule evaluation.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path with forward slashes, e.g. `crates/des/src/time.rs`.
    pub path: String,
    /// Raw source lines (for snippets and string-literal inspection).
    pub raw_lines: Vec<String>,
    /// Masked source lines (comments and literals blanked).
    pub masked_lines: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` / `#[test]` regions.
    pub is_test_line: Vec<bool>,
}

impl ScannedFile {
    /// Scans a single source text.
    pub fn new(path: &str, source: &str) -> ScannedFile {
        let masked = mask_source(source);
        let raw_lines: Vec<String> = source.lines().map(str::to_string).collect();
        let masked_lines: Vec<String> = masked.lines().map(str::to_string).collect();
        let is_test_line = test_line_map(&masked, raw_lines.len());
        ScannedFile {
            path: path.to_string(),
            raw_lines,
            masked_lines,
            is_test_line,
        }
    }

    /// Iterates `(1-based line number, masked line, raw line)` over non-test lines.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str, &str)> {
        self.masked_lines
            .iter()
            .zip(&self.raw_lines)
            .enumerate()
            .filter(|(i, _)| !self.is_test_line.get(*i).copied().unwrap_or(false))
            .map(|(i, (m, r))| (i + 1, m.as_str(), r.as_str()))
    }
}

/// Replaces comments and string/char literals with spaces, preserving
/// newlines so line/column positions survive.
pub fn mask_source(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::LineComment;
                    out.push(b' ');
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(1);
                    out.push(b' ');
                } else if c == b'"' {
                    st = St::Str;
                    out.push(b' ');
                } else if c == b'r' || c == b'b' {
                    // Possible raw/byte string start: r", r#", br", b"...
                    let mut j = i + 1;
                    if c == b'b' && b.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') && (j > i + 1 || c == b'r') {
                        out.extend(std::iter::repeat_n(b' ', j - i + 1));
                        i = j;
                        st = St::RawStr(hashes);
                    } else if c == b'b' && b.get(i + 1) == Some(&b'"') {
                        out.push(b' ');
                    } else {
                        out.push(c);
                    }
                } else if c == b'\'' {
                    // Char literal vs lifetime: a literal is 'x' or an
                    // escape; a lifetime has no closing quote right after.
                    let is_char = match b.get(i + 1) {
                        Some(b'\\') => true,
                        Some(_) => b.get(i + 2) == Some(&b'\''),
                        None => false,
                    };
                    if is_char {
                        st = St::Char;
                    }
                    out.push(if is_char { b' ' } else { c });
                } else {
                    out.push(c);
                }
            }
            St::LineComment => {
                if c == b'\n' {
                    st = St::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
            }
            St::BlockComment(depth) => {
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(depth + 1);
                    out.push(b' ');
                    out.push(b' ');
                    i += 1;
                } else if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push(b' ');
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
            St::Str => {
                if c == b'\\' {
                    out.push(b' ');
                    if let Some(&n) = b.get(i + 1) {
                        out.push(if n == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else if c == b'"' {
                    st = St::Code;
                    out.push(b' ');
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
            St::RawStr(hashes) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && b.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        out.extend(std::iter::repeat_n(b' ', j - i));
                        i = j - 1;
                        st = St::Code;
                    } else {
                        out.push(b' ');
                    }
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
            St::Char => {
                if c == b'\\' {
                    out.push(b' ');
                    if b.get(i + 1).is_some() {
                        out.push(b' ');
                        i += 1;
                    }
                } else if c == b'\'' {
                    st = St::Code;
                    out.push(b' ');
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
        }
        i += 1;
    }
    String::from_utf8(out).expect("masking preserves UTF-8: replaced bytes are ASCII spaces")
}

/// Marks every line covered by a `#[cfg(test)]` or `#[test]` attribute's
/// item (attribute line through the item's closing brace, or through the
/// `;` for brace-less items).
fn test_line_map(masked: &str, n_lines: usize) -> Vec<bool> {
    let mut map = vec![false; n_lines];
    let bytes = masked.as_bytes();
    for attr in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(pos) = find_from(masked, attr, from) {
            from = pos + attr.len();
            let start_line = line_of(bytes, pos);
            let mut depth = 0i32;
            let mut started = false;
            let mut end = bytes.len() - 1;
            let mut j = pos + attr.len();
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => {
                        depth += 1;
                        started = true;
                    }
                    b'}' => {
                        depth -= 1;
                        if started && depth == 0 {
                            end = j;
                            break;
                        }
                    }
                    b';' if !started && depth == 0 => {
                        end = j;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let end_line = line_of(bytes, end.min(bytes.len().saturating_sub(1)));
            let last = end_line.min(n_lines.saturating_sub(1));
            if start_line <= last {
                map[start_line..=last].fill(true);
            }
        }
    }
    map
}

fn find_from(hay: &str, needle: &str, from: usize) -> Option<usize> {
    hay.get(from..)
        .and_then(|h| h.find(needle))
        .map(|p| p + from)
}

/// 0-based line index containing byte offset `pos`.
fn line_of(bytes: &[u8], pos: usize) -> usize {
    bytes[..pos.min(bytes.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
}

/// Splits a masked line into lowercase identifier tokens.
pub fn identifiers(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in line.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c.to_ascii_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src =
            "let x = 1; // HashMap here\nlet s = \"thread_rng\"; /* SystemTime */ let y = 2;\n";
        let m = mask_source(src);
        assert!(!m.contains("HashMap"));
        assert!(!m.contains("thread_rng"));
        assert!(!m.contains("SystemTime"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let r = r#\"unwrap() inside\"#; let c = 'x'; let lt: &'static str = id;";
        let m = mask_source(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("'static"), "lifetime survived: {m}");
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ let z = 3;";
        let m = mask_source(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let z = 3;"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn prod() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn prod2() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(!f.is_test_line[0]);
        assert!(f.is_test_line[1] && f.is_test_line[2] && f.is_test_line[3] && f.is_test_line[4]);
        assert!(!f.is_test_line[5]);
    }

    #[test]
    fn test_regions_cover_test_fn() {
        let src = "#[test]\nfn works() {\n    x.unwrap();\n}\nfn prod() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.is_test_line[0] && f.is_test_line[1] && f.is_test_line[2] && f.is_test_line[3]);
        assert!(!f.is_test_line[4]);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse crate::rng::SmallRng;\nfn prod() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.is_test_line[0] && f.is_test_line[1]);
        assert!(!f.is_test_line[2]);
    }

    #[test]
    fn identifiers_tokenize() {
        assert_eq!(
            identifiers("bus_ns_per_kib = x9 + Foo::BAR"),
            ["bus_ns_per_kib", "x9", "foo", "bar"]
        );
    }
}
