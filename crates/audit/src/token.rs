//! A token-level lexer for Rust source.
//!
//! The line-oriented rules in [`crate::rules`] work on masked text; the
//! item extractor ([`crate::items`]), the call graph ([`crate::graph`]) and
//! the flow-aware rules need real tokens: identifiers, literals and
//! punctuation with line positions. This lexer is deliberately smaller
//! than rustc's — it does not interpret literal values and it folds every
//! string flavour into one `Str` kind — but it must *classify* correctly:
//! a lifetime is not a char literal, a raw string's body is not code, and
//! a nested block comment ends where rustc says it ends. The corpus test
//! (`tests/corpus.rs`) pins those edge cases.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`) — the text excludes the quote.
    Lifetime,
    /// Integer literal, with its suffix if any.
    Int,
    /// Float literal (has a `.`, an exponent, or an `f32`/`f64` suffix).
    Float,
    /// Any string literal flavour (`"…"`, `r#"…"#`, `b"…"`, `br"…"`,
    /// `c"…"`). The text is empty: prose must never look like code.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`). Text is empty.
    Char,
    /// Punctuation. Multi-character operators that the analyses care
    /// about (`::` and `+=`) are emitted as single tokens; everything
    /// else is one character per token.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lexes `src` into tokens, skipping whitespace and comments.
///
/// Invalid input (an unterminated string, a stray byte) never panics: the
/// lexer emits what it can and moves one byte forward, so the analyses
/// degrade to seeing less rather than dying on a file rustc would reject
/// anyway.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                i = skip_string(b, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal: a char literal closes after
                // one scalar (of any UTF-8 width) or one escape; a
                // lifetime is `'` + identifier with no closing quote.
                if let Some(end) = char_literal_end(b, i) {
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                    line += count_newlines(&b[i..end]);
                    i = end;
                } else {
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && is_ident_byte(b[j]) {
                        j += 1;
                    }
                    let text = src.get(start..j).unwrap_or("").to_string();
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                    });
                    i = j.max(i + 1);
                }
            }
            c if c.is_ascii_digit() => {
                let (end, kind) = scan_number(b, i);
                toks.push(Tok {
                    kind,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            c if is_ident_start(c) => {
                // Possible literal prefixes: r"", r#"", b"", br"", b'',
                // c"", cr"" and the raw identifier r#ident.
                let start_line = line;
                if let Some((end, kind)) = prefixed_literal(b, i, &mut line) {
                    toks.push(Tok {
                        kind,
                        text: String::new(),
                        line: start_line,
                    });
                    i = end;
                    continue;
                }
                let start = if b[i] == b'r' && b.get(i + 1) == Some(&b'#') {
                    i + 2 // raw identifier: keep the name, drop `r#`
                } else {
                    i
                };
                let mut j = start;
                while j < b.len() && is_ident_byte(b[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..j].to_string(),
                    line,
                });
                i = j;
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "::".to_string(),
                    line,
                });
                i += 2;
            }
            b'+' if b.get(i + 1) == Some(&b'=') => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "+=".to_string(),
                    line,
                });
                i += 2;
            }
            c if c.is_ascii() => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
            _ => {
                // Non-ASCII outside strings/idents: skip the scalar.
                let w = utf8_width(c);
                i += w;
            }
        }
    }
    toks
}

/// If a char/byte literal starts at `b[i]` (which is `'`), returns the
/// index just past its closing quote; `None` means lifetime.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    match b.get(i + 1) {
        Some(b'\\') => {
            // Escape: scan to the closing quote (handles \', \u{…}).
            let mut j = i + 2;
            if b.get(j).is_some() {
                j += 1; // the escaped character itself
            }
            if b.get(i + 2) == Some(&b'u') && b.get(i + 3) == Some(&b'{') {
                j = i + 4;
                while j < b.len() && b[j] != b'}' {
                    j += 1;
                }
                j += 1;
            }
            (b.get(j) == Some(&b'\'')).then_some(j + 1)
        }
        Some(&c) => {
            // One scalar of any UTF-8 width, then a closing quote. An
            // ASCII-only check here would misread `'é'` as a lifetime.
            let w = utf8_width(c);
            (b.get(i + 1 + w) == Some(&b'\'')).then_some(i + 2 + w)
        }
        None => None,
    }
}

/// If a prefixed literal (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`,
/// `c"…"`) starts at `i`, consumes it and returns `(end, kind)`.
fn prefixed_literal(b: &[u8], i: usize, line: &mut u32) -> Option<(usize, TokKind)> {
    let c = b[i];
    if !matches!(c, b'r' | b'b' | b'c') {
        return None;
    }
    // `b'x'` byte literal.
    if c == b'b' && b.get(i + 1) == Some(&b'\'') {
        let end = char_literal_end(b, i + 1)?;
        return Some((end, TokKind::Char));
    }
    let mut j = i + 1;
    if (c == b'b' || c == b'c') && b.get(j) == Some(&b'r') {
        j += 1;
    }
    let raw = j > i + 1 || c == b'r';
    let mut hashes = 0usize;
    while raw && b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    if raw && (hashes > 0 || j > i) {
        // Raw string (or raw identifier fallthrough was excluded by the
        // quote check above): scan to `"` + `hashes` hashes.
        let mut k = j + 1;
        loop {
            match b.get(k) {
                None => return Some((k, TokKind::Str)),
                Some(b'\n') => {
                    *line += 1;
                    k += 1;
                }
                Some(b'"') => {
                    let mut seen = 0usize;
                    let mut m = k + 1;
                    while seen < hashes && b.get(m) == Some(&b'#') {
                        seen += 1;
                        m += 1;
                    }
                    if seen == hashes {
                        return Some((m, TokKind::Str));
                    }
                    k += 1;
                }
                Some(_) => k += 1,
            }
        }
    }
    // Cooked prefixed string: `b"…"` / `c"…"`.
    let end = skip_string(b, j, line);
    Some((end, TokKind::Str))
}

/// Skips a cooked string whose opening `"` is at `i`; returns the index
/// just past the closing quote (or `b.len()` if unterminated).
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => {
                // A line-continuation escape still ends a source line.
                if b.get(j + 1) == Some(&b'\n') {
                    *line += 1;
                }
                j += 2;
            }
            b'"' => return j + 1,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Scans a numeric literal starting at a digit; returns `(end, kind)`.
fn scan_number(b: &[u8], i: usize) -> (usize, TokKind) {
    let mut j = i;
    let mut float = false;
    if b[i] == b'0' && matches!(b.get(i + 1), Some(b'x' | b'o' | b'b')) {
        j = i + 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, TokKind::Int);
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fractional part: a digit must follow the dot (so `0..n` ranges and
    // `1.max(x)` method calls stay punctuation/idents).
    if b.get(j) == Some(&b'.') && b.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    }
    // Exponent.
    if matches!(b.get(j), Some(b'e' | b'E')) {
        let mut k = j + 1;
        if matches!(b.get(k), Some(b'+' | b'-')) {
            k += 1;
        }
        if b.get(k).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Suffix (`u64`, `f32`, …).
    let suffix_start = j;
    while j < b.len() && is_ident_byte(b[j]) {
        j += 1;
    }
    if b[suffix_start..j].starts_with(b"f32") || b[suffix_start..j].starts_with(b"f64") {
        float = true;
    }
    (j, if float { TokKind::Float } else { TokKind::Int })
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

fn utf8_width(c: u8) -> usize {
    match c {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn count_newlines(b: &[u8]) -> u32 {
    b.iter().filter(|&&c| c == b'\n').count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_literals_punct() {
        let t = kinds("let x = foo(1, 2.5);");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Ident, "foo".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Int, "1".into()),
                (TokKind::Punct, ",".into()),
                (TokKind::Float, "2.5".into()),
                (TokKind::Punct, ")".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(s: &'a str) -> char { 'x' }");
        assert!(t.contains(&(TokKind::Lifetime, "a".into())));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
        // Multi-byte char literal is a char, not a lifetime.
        let t = kinds("let c = 'é';");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
        assert!(!t.iter().any(|(k, _)| *k == TokKind::Lifetime));
        // Escapes, including the escaped quote.
        for src in ["'\\''", "'\\n'", "'\\u{1F600}'"] {
            let t = kinds(src);
            assert_eq!(t, vec![(TokKind::Char, String::new())], "{src}");
        }
    }

    #[test]
    fn string_flavours_are_opaque() {
        for src in [
            "\"plain unwrap()\"",
            "r\"raw unwrap()\"",
            "r#\"hashed \" unwrap()\"#",
            "b\"bytes unwrap()\"",
            "br#\"raw bytes unwrap()\"#",
        ] {
            let t = kinds(src);
            assert_eq!(t, vec![(TokKind::Str, String::new())], "{src}");
        }
    }

    #[test]
    fn raw_identifiers_drop_the_prefix() {
        assert_eq!(kinds("r#match"), vec![(TokKind::Ident, "match".into())]);
    }

    #[test]
    fn nested_block_comments_skipped() {
        let t = kinds("a /* x /* y */ z */ b");
        assert_eq!(
            t,
            vec![(TokKind::Ident, "a".into()), (TokKind::Ident, "b".into())]
        );
    }

    #[test]
    fn line_numbers_follow_newlines() {
        let t = tokenize("a\nb\n\nc \"multi\nline\" d");
        let find = |name: &str| t.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("c"), 4);
        assert_eq!(find("d"), 5);
    }

    #[test]
    fn double_colon_and_plus_eq_compose() {
        let t = kinds("std::mem::take(x); n += 1;");
        assert_eq!(
            t.iter()
                .filter(|(k, t)| *k == TokKind::Punct && t == "::")
                .count(),
            2
        );
        assert!(t.contains(&(TokKind::Punct, "+=".into())));
    }

    #[test]
    fn numbers_with_bases_and_suffixes() {
        assert_eq!(
            kinds("0x9e37_79b9"),
            vec![(TokKind::Int, "0x9e37_79b9".into())]
        );
        assert_eq!(kinds("1_000_000"), vec![(TokKind::Int, "1_000_000".into())]);
        assert_eq!(kinds("1e9"), vec![(TokKind::Float, "1e9".into())]);
        assert_eq!(kinds("2f64"), vec![(TokKind::Float, "2f64".into())]);
        // A range is two ints and two dots, not a float.
        let t = kinds("0..n");
        assert_eq!(t[0], (TokKind::Int, "0".into()));
        assert_eq!(t[1], (TokKind::Punct, ".".into()));
    }

    #[test]
    fn ident_ending_in_b_or_r_is_not_a_literal_prefix() {
        let t = kinds("herb\"s\" + tar\"s\"");
        assert!(t.contains(&(TokKind::Ident, "herb".into())), "{t:?}");
        assert!(t.contains(&(TokKind::Ident, "tar".into())), "{t:?}");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
    }
}
