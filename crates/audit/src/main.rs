//! CLI entry point:
//! `fleetio-audit check [--root DIR] [--json FILE] [--sarif FILE]` runs
//! the full rule set; `fleetio-audit taint [--root DIR]` prints the
//! call-graph/taint-analysis summary (the golden-test format).
//!
//! Exit codes: 0 clean, 1 violations (or stale allowlist entries),
//! 2 usage / IO / allowlist-parse errors.

use std::path::PathBuf;
use std::process::ExitCode;

use fleetio_audit::{default_root, graph, report, run_check};

const USAGE: &str = "usage: fleetio-audit check [--root DIR] [--json FILE] [--sarif FILE] \
                     [--quiet]\n       fleetio-audit taint [--root DIR]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd == "taint" {
        return taint_summary_cmd(args);
    }
    if cmd != "check" {
        eprintln!("unknown command `{cmd}`\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut root = default_root();
    let mut json_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage_error("--json needs a value"),
            },
            "--sarif" => match args.next() {
                Some(v) => sarif_path = Some(PathBuf::from(v)),
                None => return usage_error("--sarif needs a value"),
            },
            "--quiet" => quiet = true,
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }

    let outcome = match run_check(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fleetio-audit: {e}");
            return ExitCode::from(2);
        }
    };
    if !quiet {
        print!("{}", report::render_text(&outcome));
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report::render_json(&outcome)) {
            eprintln!("fleetio-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = sarif_path {
        if let Err(e) = std::fs::write(&path, report::render_sarif(&outcome)) {
            eprintln!("fleetio-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn taint_summary_cmd(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root = default_root();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }
    let scanned = match fleetio_audit::scan_workspace(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fleetio-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let deps = match fleetio_audit::parse_dep_graph(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("fleetio-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let ws = fleetio_audit::build_workspace(&scanned, &deps);
    print!("{}", graph::taint_summary(&ws));
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}\n{USAGE}");
    ExitCode::from(2)
}
