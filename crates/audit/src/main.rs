//! CLI entry point: `fleetio-audit check [--root DIR] [--json FILE]`.
//!
//! Exit codes: 0 clean, 1 violations (or stale allowlist entries),
//! 2 usage / IO / allowlist-parse errors.

use std::path::PathBuf;
use std::process::ExitCode;

use fleetio_audit::{default_root, report, run_check};

const USAGE: &str = "usage: fleetio-audit check [--root DIR] [--json FILE] [--quiet]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "check" {
        eprintln!("unknown command `{cmd}`\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut root = default_root();
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage_error("--json needs a value"),
            },
            "--quiet" => quiet = true,
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }

    let outcome = match run_check(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fleetio-audit: {e}");
            return ExitCode::from(2);
        }
    };
    if !quiet {
        print!("{}", report::render_text(&outcome));
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report::render_json(&outcome)) {
            eprintln!("fleetio-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}\n{USAGE}");
    ExitCode::from(2)
}
