//! The repo-specific lint rules.
//!
//! Each rule is a conservative, line-oriented pattern check over a
//! [`ScannedFile`] (comments/strings masked, test regions excluded). Rules
//! are scoped by path: the simulator core (`des`, `flash`, `vssd`) carries
//! the strictest rules; wall-clock crates (`bench`, `audit` itself) are
//! exempt from the simulated-time and entropy rules because they
//! legitimately measure host time.

use crate::scan::{identifiers, ScannedFile};
use crate::token::TokKind;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `raw-time-arith`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// For reachability findings (`determinism-taint`): the call chain
    /// from the root to the fn containing the source. Empty otherwise.
    pub chain: Vec<String>,
}

/// Stable identifiers for every rule, in reporting order.
pub const RULE_IDS: [&str; 10] = [
    "raw-time-arith",
    "no-unwrap",
    "hash-iteration",
    "entropy",
    "host-time-scope",
    "no-println",
    "atomic-io",
    "hot-path-collections",
    "unchecked-ops",
    "determinism-taint",
];

/// Simulator core: the crates whose sources model the device and must be
/// deterministic and panic-free.
fn in_core(path: &str) -> bool {
    ["crates/des/src/", "crates/flash/src/", "crates/vssd/src/"]
        .iter()
        .any(|p| path.starts_with(p))
}

/// Crates that participate in *simulated* time and seeded randomness.
/// `bench` (wall-clock harness) and `audit` are exempt.
pub(crate) fn in_sim(path: &str) -> bool {
    [
        "crates/des/src/",
        "crates/flash/src/",
        "crates/vssd/src/",
        "crates/workloads/src/",
        "crates/ml/src/",
        "crates/rl/src/",
        "crates/model/src/",
        "crates/fleetio/src/",
        "crates/fleet/src/",
        "crates/obs/src/",
        "crates/store/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

/// The host-time profiler sources (`crates/obs/src/prof.rs` and any
/// future `prof/` submodules): the one sanctioned home for wall-clock
/// measurement inside the simulation scope.
fn is_prof_path(path: &str) -> bool {
    path.starts_with("crates/obs/src/prof")
}

/// The engine's event-handler scope: every source under
/// `crates/vssd/src/engine/` runs (transitively) from `dispatch_event`,
/// so per-event work there is the simulator's hot path.
fn in_engine_hot_path(path: &str) -> bool {
    path.starts_with("crates/vssd/src/engine/")
}

/// Library crates whose sources must stay silent on stdout/stderr: the
/// simulator core plus the ML/RL stack and the observability layer. All
/// reporting goes through `fleetio-obs` sinks/exporters or the CLI bins;
/// allowlisted bins (e.g. the `fleetio-obs summarize` entry point) are
/// grandfathered via `audit.toml`.
fn in_quiet(path: &str) -> bool {
    [
        "crates/des/src/",
        "crates/flash/src/",
        "crates/vssd/src/",
        "crates/ml/src/",
        "crates/rl/src/",
        "crates/model/src/",
        "crates/fleet/src/",
        "crates/obs/src/",
        "crates/store/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

/// Runs every rule against one scanned file.
pub fn check_file(file: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    raw_time_arith(file, &mut out);
    no_unwrap(file, &mut out);
    hash_iteration(file, &mut out);
    entropy(file, &mut out);
    host_time_scope(file, &mut out);
    no_println(file, &mut out);
    atomic_io(file, &mut out);
    hot_path_collections(file, &mut out);
    unchecked_ops(file, &mut out);
    out
}

/// `raw-time-arith`: nanoseconds-per-second literals used in time
/// arithmetic outside `crates/des/src/time.rs`. All simulated-time
/// conversion belongs in `SimTime`/`SimDuration`, so f64-seconds math
/// cannot silently drift from the canonical nanosecond representation.
///
/// A line is flagged when it contains an `1e9`-scale literal *and* a
/// time-unit identifier (`*_ns`, `secs`, `latency_*`, ...). The identifier
/// requirement keeps byte-scale literals (`bytes as f64 / 1e9` for GB)
/// out of scope.
fn raw_time_arith(file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    // The profiler formats *host* nanoseconds for reports; it never
    // produces simulated time, so the drift concern does not apply.
    if !in_sim(&file.path) || file.path == "crates/des/src/time.rs" || is_prof_path(&file.path) {
        return;
    }
    const NS_LITERALS: [&str; 5] = ["1_000_000_000", "1e9", "1E9", "1e+9", "999_999_999"];
    for (line_no, masked, raw) in file.code_lines() {
        if !NS_LITERALS.iter().any(|l| masked.contains(l)) {
            continue;
        }
        if identifiers(masked).iter().any(|id| is_time_identifier(id)) {
            out.push(Diagnostic {
                rule: "raw-time-arith",
                path: file.path.clone(),
                line: line_no,
                message: "raw f64 seconds/ns arithmetic outside des::time; convert via \
                          SimTime/SimDuration instead"
                    .to_string(),
                snippet: raw.trim().to_string(),
                chain: Vec::new(),
            });
        }
    }
}

/// Whether an identifier names a time quantity.
fn is_time_identifier(id: &str) -> bool {
    const SUBSTRINGS: [&str; 7] = [
        "nano", "micro", "milli", "time", "duration", "latency", "deadline",
    ];
    const SEGMENTS: [&str; 8] = ["ns", "us", "ms", "sec", "secs", "msec", "usec", "nsec"];
    SUBSTRINGS.iter().any(|s| id.contains(s)) || id.split('_').any(|seg| SEGMENTS.contains(&seg))
}

/// `no-unwrap`: in the simulator core, `.unwrap()` is banned and
/// `.expect(...)` must carry an invariant-documenting message (at least
/// [`MIN_EXPECT_MESSAGE`] characters). A panic in the core aborts a whole
/// multi-hour training run; any remaining panic site must at minimum say
/// which invariant broke.
fn no_unwrap(file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !in_core(&file.path) {
        return;
    }
    for (line_no, masked, raw) in file.code_lines() {
        if masked.contains(".unwrap()") {
            out.push(Diagnostic {
                rule: "no-unwrap",
                path: file.path.clone(),
                line: line_no,
                message: "unwrap() in simulator core; return a typed error or use expect() \
                          with an invariant-documenting message"
                    .to_string(),
                snippet: raw.trim().to_string(),
                chain: Vec::new(),
            });
        }
        if let Some(col) = masked.find(".expect(") {
            match expect_message(file, line_no - 1, col) {
                Some(msg) if msg.chars().count() >= MIN_EXPECT_MESSAGE => {}
                Some(msg) => out.push(Diagnostic {
                    rule: "no-unwrap",
                    path: file.path.clone(),
                    line: line_no,
                    message: format!(
                        "expect() message \"{msg}\" too short to document an invariant \
                         (need >= {MIN_EXPECT_MESSAGE} chars)"
                    ),
                    snippet: raw.trim().to_string(),
                    chain: Vec::new(),
                }),
                None => out.push(Diagnostic {
                    rule: "no-unwrap",
                    path: file.path.clone(),
                    line: line_no,
                    message: "expect() without a literal invariant-documenting message".to_string(),
                    snippet: raw.trim().to_string(),
                    chain: Vec::new(),
                }),
            }
        }
    }
}

/// Minimum length of an `.expect(...)` message in the simulator core.
pub const MIN_EXPECT_MESSAGE: usize = 12;

/// Extracts the string literal following `.expect(` at `(line_idx, col)`,
/// looking up to two raw lines ahead for rustfmt-wrapped messages.
fn expect_message(file: &ScannedFile, line_idx: usize, col: usize) -> Option<String> {
    for (i, raw) in file.raw_lines.iter().enumerate().skip(line_idx).take(3) {
        let hay = if i == line_idx {
            raw.get(col..)?
        } else {
            raw.as_str()
        };
        if let Some(start) = hay.find('"') {
            let rest = &hay[start + 1..];
            let mut msg = String::new();
            let mut chars = rest.chars();
            while let Some(c) = chars.next() {
                match c {
                    '"' => return Some(msg),
                    '\\' => {
                        if let Some(esc) = chars.next() {
                            msg.push(esc);
                        }
                    }
                    c => msg.push(c),
                }
            }
            return Some(msg);
        }
    }
    None
}

/// `hash-iteration`: `HashMap`/`HashSet` in the simulator core. Their
/// iteration order varies per process and per instance, so any use risks
/// feeding a simulation decision; the core must use `BTreeMap`/`BTreeSet`
/// (or sorted vectors).
fn hash_iteration(file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !in_core(&file.path) {
        return;
    }
    for (line_no, masked, raw) in file.code_lines() {
        for ty in ["HashMap", "HashSet"] {
            if contains_identifier(masked, ty) {
                out.push(Diagnostic {
                    rule: "hash-iteration",
                    path: file.path.clone(),
                    line: line_no,
                    message: format!(
                        "{ty} in simulator core: iteration order is nondeterministic; use \
                         BTree{} or sorted iteration",
                        &ty[4..]
                    ),
                    snippet: raw.trim().to_string(),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// `entropy`: ambient randomness in simulation crates. Every random
/// stream must derive from `des::rng` seeds so runs replay
/// bit-identically. (Wall-clock reads are the `host-time-scope` rule.)
fn entropy(file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !in_sim(&file.path) || file.path == "crates/des/src/rng.rs" {
        return;
    }
    const SOURCES: [&str; 3] = ["thread_rng", "from_entropy", "getrandom"];
    for (line_no, masked, raw) in file.code_lines() {
        for src in SOURCES {
            if contains_identifier(masked, src) {
                out.push(Diagnostic {
                    rule: "entropy",
                    path: file.path.clone(),
                    line: line_no,
                    message: format!(
                        "entropy source `{src}` outside des::rng; seed explicitly via \
                         fleetio_des::rng"
                    ),
                    snippet: raw.trim().to_string(),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// `host-time-scope`: wall-clock reads (`Instant`, `SystemTime`) in the
/// simulation scope. Host time is quarantined to `crates/bench` and the
/// profiler (`crates/obs/src/prof*`); anywhere else it could leak into
/// deterministic sim logic, where two same-seed runs would diverge.
fn host_time_scope(file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !in_sim(&file.path) || is_prof_path(&file.path) {
        return;
    }
    const SOURCES: [&str; 2] = ["Instant", "SystemTime"];
    for (line_no, masked, raw) in file.code_lines() {
        for src in SOURCES {
            if contains_identifier(masked, src) {
                out.push(Diagnostic {
                    rule: "host-time-scope",
                    path: file.path.clone(),
                    line: line_no,
                    message: format!(
                        "wall-clock source `{src}` outside crates/bench and obs::prof; take \
                         time from fleetio_des::SimTime or profile via fleetio_obs::prof"
                    ),
                    snippet: raw.trim().to_string(),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// `no-println`: ad-hoc stdout/stderr writes in quiet library crates.
/// Structured output belongs in `fleetio-obs` events/metrics; stray
/// `println!` in the hot path skews timing-sensitive benchmarks and
/// pollutes exporter streams. CLI bins are grandfathered in `audit.toml`.
fn no_println(file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !in_quiet(&file.path) {
        return;
    }
    const MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];
    for (line_no, masked, raw) in file.code_lines() {
        for mac in MACROS {
            if contains_macro_call(masked, mac) {
                out.push(Diagnostic {
                    rule: "no-println",
                    path: file.path.clone(),
                    line: line_no,
                    message: format!(
                        "`{mac}!` in a quiet library crate; emit a fleetio-obs event or \
                         metric instead (CLI bins go through audit.toml)"
                    ),
                    snippet: raw.trim().to_string(),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// `atomic-io`: direct file-writing APIs in simulation crates. A crash
/// (or a concurrently-reading trainer) must never observe a half-written
/// checkpoint, so every persistent write goes through
/// `fleetio_model::atomic_write` (tmp file + fsync + rename) — the one
/// file exempt from this rule. `fs::write`, `File::create` and
/// `OpenOptions` anywhere else in the simulation scope are flagged;
/// wall-clock crates (`bench`, `audit`) and CLI report exporters outside
/// the scope stay free to write directly.
fn atomic_io(file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !in_sim(&file.path) || file.path == "crates/model/src/atomic.rs" {
        return;
    }
    const APIS: [&str; 3] = ["fs::write", "File::create", "OpenOptions"];
    for (line_no, masked, raw) in file.code_lines() {
        for api in APIS {
            let hit = match api {
                // Path-qualified call: substring is unambiguous.
                "fs::write" | "File::create" => masked.contains(api),
                _ => contains_identifier(masked, api),
            };
            if hit {
                out.push(Diagnostic {
                    rule: "atomic-io",
                    path: file.path.clone(),
                    line: line_no,
                    message: format!(
                        "direct file write via `{api}` in a simulation crate; persist \
                         through fleetio_model::atomic_write (crash-safe tmp+rename)"
                    ),
                    snippet: raw.trim().to_string(),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// `hot-path-collections`: node-based map/set types in the engine's
/// event-handler scope (`crates/vssd/src/engine/`). Everything under that
/// directory runs from `dispatch_event`, so a `BTreeMap` lookup there is a
/// pointer-chasing tree walk paid per simulated event — per-event state
/// belongs in slab/dense-vec storage indexed by handle (see
/// `vssd::engine::vstate` and `vssd::stride::DenseStride`). `HashMap`/
/// `HashSet` are additionally nondeterministic (also `hash-iteration`).
/// Genuinely cold control-plane maps (vSSD create/destroy, per-admission-
/// tick snapshots) are grandfathered per-file in `audit.toml`.
fn hot_path_collections(file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !in_engine_hot_path(&file.path) {
        return;
    }
    const TYPES: [&str; 4] = ["BTreeMap", "BTreeSet", "HashMap", "HashSet"];
    const OPS: [&str; 14] = [
        "get",
        "get_mut",
        "insert",
        "remove",
        "entry",
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "range",
        "contains_key",
        "contains",
        "pop_first",
    ];
    let toks = &file.toks;
    let live = |line: u32| !file.line_is_test(line as usize) && !file.line_is_audit(line as usize);
    // Pass 1: map-typed binding names (`let m = BTreeMap::new()`, struct
    // fields and `let m: BTreeMap<..>` annotations).
    let mut bindings: Vec<(String, &'static str)> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !live(t.line) {
            continue;
        }
        let Some(ty) = TYPES.iter().find(|ty| t.text == **ty) else {
            continue;
        };
        // Walk back over `std :: collections ::`-style path segments.
        let mut j = k;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        let bound = match toks[j - 1].text.as_str() {
            ":" | "=" => toks.get(j.wrapping_sub(2)),
            _ => None,
        };
        if let Some(name_tok) = bound.filter(|n| n.kind == TokKind::Ident) {
            bindings.push((name_tok.text.clone(), ty));
        }
    }
    // Pass 2: flag the type mentions themselves, plus per-event
    // operations on the bindings found in pass 1 (lines that never name
    // the type — the sites the line-local v1 rule could not see).
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !live(t.line) {
            continue;
        }
        if let Some(ty) = TYPES.iter().find(|ty| t.text == **ty) {
            out.push(Diagnostic {
                rule: "hot-path-collections",
                path: file.path.clone(),
                line: t.line as usize,
                message: format!(
                    "{ty} in the engine event-handler scope: per-event lookups must \
                     use slab/dense-vec storage indexed by handle; cold control-plane \
                     maps go through audit.toml"
                ),
                snippet: file.snippet(t.line as usize),
                chain: Vec::new(),
            });
            continue;
        }
        let is_op = OPS.contains(&t.text.as_str())
            && k >= 2
            && toks[k - 1].is_punct(".")
            && toks[k - 2].kind == TokKind::Ident
            && toks.get(k + 1).is_some_and(|n| n.is_punct("("));
        if is_op {
            let recv = &toks[k - 2].text;
            if let Some((_, ty)) = bindings.iter().find(|(n, _)| n == recv) {
                out.push(Diagnostic {
                    rule: "hot-path-collections",
                    path: file.path.clone(),
                    line: t.line as usize,
                    message: format!(
                        "per-event `.{}()` on map-typed binding `{recv}` ({ty}) in the \
                         engine event-handler scope; move this state to slab/dense-vec \
                         storage indexed by handle",
                        t.text
                    ),
                    snippet: file.snippet(t.line as usize),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// `unchecked-ops`: unchecked indexing/arithmetic in the engine's
/// event-handler scope. `get_unchecked`, `unwrap_unchecked`,
/// `unchecked_add` and friends trade the bounds/overflow check — the last
/// line of defense behind the slab generation checks — for nanoseconds,
/// and a wrong index there corrupts simulation state silently instead of
/// panicking. The profiler shows none of these sites are hot enough to
/// justify that.
fn unchecked_ops(file: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if !in_engine_hot_path(&file.path) {
        return;
    }
    for t in &file.toks {
        let line = t.line as usize;
        if t.kind != TokKind::Ident || file.line_is_test(line) || file.line_is_audit(line) {
            continue;
        }
        if t.text.ends_with("_unchecked") || t.text.starts_with("unchecked_") {
            out.push(Diagnostic {
                rule: "unchecked-ops",
                path: file.path.clone(),
                line,
                message: format!(
                    "`{}` in the engine event-handler scope: keep the bounds/overflow \
                     check; unchecked ops turn index bugs into silent state corruption",
                    t.text
                ),
                snippet: file.snippet(line),
                chain: Vec::new(),
            });
        }
    }
}

/// Whether `hay` invokes the macro `name` (`name` as a whole identifier
/// immediately followed by `!`). The whole-identifier requirement keeps
/// `print` from matching inside `println` or `eprint`.
fn contains_macro_call(hay: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(p) = hay.get(from..).and_then(|h| h.find(name)) {
        let start = from + p;
        let end = start + name.len();
        let before_ok = start == 0
            || !hay[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && hay[end..].starts_with('!') {
            return true;
        }
        from = end;
    }
    false
}

/// Whether `needle` occurs in `hay` as a whole identifier (not as part of
/// a longer identifier).
fn contains_identifier(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(p) = hay.get(from..).and_then(|h| h.find(needle)) {
        let start = from + p;
        let end = start + needle.len();
        let before_ok = start == 0
            || !hay[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !hay[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScannedFile;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(&ScannedFile::new(path, src))
    }

    #[test]
    fn raw_time_flags_ns_conversion() {
        let d = diags(
            "crates/flash/src/timing.rs",
            "fn f(bps: f64) -> u64 { (1024.0 * 1e9 / bps) as u64 } // no ident\nfn g(bps: f64) -> u64 { let bus_ns = 1e9 / bps; bus_ns as u64 }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "raw-time-arith");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn raw_time_ignores_byte_scale_literals() {
        let d = diags(
            "crates/fleetio/src/states.rs",
            "let gb = free_capacity_bytes as f64 / 1e9;\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn raw_time_exempts_time_rs_and_bench() {
        assert!(diags("crates/des/src/time.rs", "let ns = secs * 1e9;").is_empty());
        assert!(diags(
            "crates/bench/src/harness.rs",
            "let s = ns / 1_000_000_000.0;"
        )
        .is_empty());
    }

    #[test]
    fn unwrap_flagged_in_core_only() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(diags("crates/des/src/queue.rs", src).len(), 1);
        assert!(diags("crates/rl/src/ppo.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_tests_allowed() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(diags("crates/des/src/queue.rs", src).is_empty());
    }

    #[test]
    fn expect_needs_long_message() {
        let ok = "fn f() { x.expect(\"listed gSB exists in pool\"); }\n";
        let short = "fn f() { x.expect(\"oops\"); }\n";
        assert!(diags("crates/vssd/src/gsb.rs", ok).is_empty());
        assert_eq!(diags("crates/vssd/src/gsb.rs", short).len(), 1);
    }

    #[test]
    fn expect_message_found_on_next_line() {
        let src = "fn f() {\n x.expect(\n   \"event queue nonempty while inflight\",\n ); }\n";
        assert!(
            diags("crates/des/src/queue.rs", src).is_empty(),
            "{:?}",
            diags("crates/des/src/queue.rs", src)
        );
    }

    #[test]
    fn hashmap_flagged_in_core() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(diags("crates/vssd/src/gsb.rs", src).len(), 1);
        assert!(diags("crates/bench/src/context.rs", src).is_empty());
        // Inside the engine scope the same line also trips the hot-path rule.
        let d = diags("crates/vssd/src/engine/mod.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.rule == "hash-iteration"));
        assert!(d.iter().any(|d| d.rule == "hot-path-collections"));
    }

    #[test]
    fn tree_maps_flagged_in_engine_scope_only() {
        for src in [
            "use std::collections::BTreeMap;\n",
            "let mut claimed = std::collections::BTreeSet::new();\n",
            "pub(crate) id_to_idx: BTreeMap<VssdId, usize>,\n",
        ] {
            let d = diags("crates/vssd/src/engine/harvest.rs", src);
            assert_eq!(d.len(), 1, "{src:?}: {d:?}");
            assert_eq!(d[0].rule, "hot-path-collections");
        }
        // BTree types are fine (deterministic) outside the engine scope...
        assert!(diags(
            "crates/vssd/src/gsb.rs",
            "use std::collections::BTreeMap;\n"
        )
        .is_empty());
        assert!(diags(
            "crates/des/src/queue.rs",
            "use std::collections::BTreeSet;\n"
        )
        .is_empty());
        // ...and in engine test modules.
        let in_test = "#[cfg(test)]\nmod tests {\n use std::collections::BTreeMap;\n}\n";
        assert!(diags("crates/vssd/src/engine/mod.rs", in_test).is_empty());
        // Lookalike identifiers and doc comments don't fire.
        assert!(diags(
            "crates/vssd/src/engine/vstate.rs",
            "/// replaces a `BTreeMap<u64, Ppa>` walk with one array index\nlet x = MyBTreeMapLike::new();\n"
        )
        .is_empty());
    }

    #[test]
    fn entropy_flagged_outside_rng() {
        let src = "let mut rng = thread_rng();\n";
        assert_eq!(diags("crates/workloads/src/gen.rs", src).len(), 1);
        assert_eq!(diags("crates/workloads/src/gen.rs", src)[0].rule, "entropy");
        assert!(diags("crates/des/src/rng.rs", src).is_empty());
        assert!(diags("crates/bench/src/harness.rs", src).is_empty());
    }

    #[test]
    fn host_time_flagged_outside_bench_and_prof() {
        let src = "let t = std::time::Instant::now();\n";
        for path in [
            "crates/workloads/src/gen.rs",
            "crates/des/src/queue.rs",
            "crates/vssd/src/engine/mod.rs",
            "crates/rl/src/ppo.rs",
            "crates/fleetio/src/driver.rs",
            "crates/model/src/registry.rs",
            "crates/obs/src/sink.rs",
        ] {
            let d = diags(path, src);
            assert_eq!(d.len(), 1, "{path}: {d:?}");
            assert_eq!(d[0].rule, "host-time-scope");
        }
        let sys = "let now = SystemTime::now();\n";
        assert_eq!(
            diags("crates/rl/src/ppo.rs", sys)[0].rule,
            "host-time-scope"
        );
        // The two sanctioned homes for wall clock.
        assert!(diags("crates/bench/src/harness.rs", src).is_empty());
        assert!(diags("crates/obs/src/prof.rs", src).is_empty());
        assert!(diags("crates/obs/src/prof/alloc.rs", src).is_empty());
    }

    #[test]
    fn prof_path_exempt_from_raw_time_arith() {
        let src = "let s = total_ns / 1_000_000_000.0;\n";
        assert!(diags("crates/obs/src/prof.rs", src).is_empty());
        assert_eq!(diags("crates/obs/src/export.rs", src).len(), 1);
    }

    #[test]
    fn println_flagged_in_quiet_crates_only() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert_eq!(diags("crates/des/src/queue.rs", src).len(), 1);
        assert_eq!(diags("crates/rl/src/ppo.rs", src).len(), 1);
        assert_eq!(diags("crates/obs/src/main.rs", src).len(), 1);
        assert!(diags("crates/bench/src/harness.rs", src).is_empty());
        assert!(diags("crates/fleetio/src/driver.rs", src).is_empty());
    }

    #[test]
    fn println_rule_covers_all_print_macros() {
        for mac in ["println", "eprintln", "print", "eprint", "dbg"] {
            let src = format!("fn f() {{ {mac}!(\"x\"); }}\n");
            let d = diags("crates/ml/src/mlp.rs", &src);
            assert_eq!(d.len(), 1, "{mac}: {d:?}");
            assert_eq!(d[0].rule, "no-println");
        }
    }

    #[test]
    fn println_allowed_in_tests_and_ignores_lookalikes() {
        let in_test = "#[cfg(test)]\nmod tests {\n fn t() { println!(\"x\"); }\n}\n";
        assert!(diags("crates/des/src/queue.rs", in_test).is_empty());
        // Not a macro call: identifier without `!`, or part of a longer name.
        assert!(!contains_macro_call("self.print_report();", "print"));
        assert!(!contains_macro_call("my_println!(\"x\")", "println"));
        // `print` must not fire inside `println!`/`eprint!`.
        assert!(!contains_macro_call("println!(\"x\")", "print"));
        assert!(!contains_macro_call("eprint!(\"x\")", "print"));
        assert!(contains_macro_call("eprintln!(\"x\")", "eprintln"));
    }

    #[test]
    fn atomic_io_flags_direct_writes_in_sim_scope() {
        for src in [
            "fn f() { std::fs::write(p, b).unwrap(); }\n",
            "fn f() { let f = File::create(p)?; }\n",
            "fn f() { let f = OpenOptions::new().write(true).open(p)?; }\n",
        ] {
            for path in [
                "crates/rl/src/ppo.rs",
                "crates/model/src/registry.rs",
                "crates/fleetio/src/agent.rs",
            ] {
                let d: Vec<_> = diags(path, src)
                    .into_iter()
                    .filter(|d| d.rule == "atomic-io")
                    .collect();
                assert_eq!(d.len(), 1, "{path}: {src:?}: {d:?}");
            }
        }
    }

    #[test]
    fn atomic_io_exempts_writer_tests_and_wall_clock_crates() {
        let src = "fn f() { let f = File::create(p)?; }\n";
        assert!(diags("crates/model/src/atomic.rs", src).is_empty());
        assert!(diags("crates/bench/src/harness.rs", src).is_empty());
        assert!(diags("crates/audit/src/scan.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n fn t() { std::fs::write(p, b); }\n}\n";
        assert!(diags("crates/model/src/registry.rs", in_test).is_empty());
        // Lookalike identifiers don't fire.
        assert!(diags(
            "crates/rl/src/ppo.rs",
            "let x = MyOpenOptionsLike::new();\n"
        )
        .is_empty());
    }

    #[test]
    fn identifier_match_is_whole_word() {
        assert!(contains_identifier("let x: HashMap<u8, u8>;", "HashMap"));
        assert!(!contains_identifier(
            "let x = MyHashMapLike::new();",
            "HashMap"
        ));
        assert!(!contains_identifier("instantaneous", "Instant"));
    }
}
