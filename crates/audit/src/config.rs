//! Hand-parsed `audit.toml` allowlist.
//!
//! The allowlist grandfathers existing violations without letting them
//! grow: each entry caps the number of diagnostics for one `(rule, path)`
//! pair. The check fails when a site exceeds its cap **or** when an entry
//! no longer matches anything (a stale entry must be deleted, ratcheting
//! the cap downward). Only the tiny TOML subset below is supported — the
//! auditor has no dependencies, and a restricted grammar keeps the file
//! reviewable:
//!
//! ```toml
//! [[allow]]
//! rule = "no-unwrap"
//! path = "crates/vssd/src/gsb.rs"
//! max = 2
//! reason = "pre-audit sites, issue #2"
//! ```
//!
//! Reachability rules (`determinism-taint`) additionally accept an
//! optional `chain` key: a `" -> "`-joined fragment of the reported call
//! chain. When present, the entry only suppresses findings whose chain
//! contains that fragment, so an allowlisted path through one sanctioned
//! helper cannot silently absorb a new, unrelated path into the same file.

/// One grandfathered `(rule, path)` cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule identifier the entry applies to.
    pub rule: String,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Maximum tolerated diagnostics; must be at least 1.
    pub max: usize,
    /// Why the site is grandfathered.
    pub reason: String,
    /// For chain-carrying rules: a `" -> "`-joined call-chain fragment
    /// the finding's chain must contain for this entry to apply.
    pub chain: Option<String>,
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "audit.toml:{}: {}", self.line, self.message)
    }
}

/// Parses the allowlist file contents.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, ParseError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut cur: Option<(usize, PartialEntry)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some((at, p)) = cur.take() {
                entries.push(p.finish(at)?);
            }
            cur = Some((line_no, PartialEntry::default()));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ParseError {
                line: line_no,
                message: format!("expected `key = value` or `[[allow]]`, got `{line}`"),
            });
        };
        let Some((_, p)) = cur.as_mut() else {
            return Err(ParseError {
                line: line_no,
                message: "key outside an [[allow]] table".to_string(),
            });
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "rule" => p.rule = Some(parse_string(value, line_no)?),
            "path" => p.path = Some(parse_string(value, line_no)?),
            "reason" => p.reason = Some(parse_string(value, line_no)?),
            "chain" => p.chain = Some(parse_string(value, line_no)?),
            "max" => {
                p.max = Some(value.parse().map_err(|_| ParseError {
                    line: line_no,
                    message: format!("`max` must be a positive integer, got `{value}`"),
                })?)
            }
            other => {
                return Err(ParseError {
                    line: line_no,
                    message: format!("unknown key `{other}` (expected rule/path/max/reason/chain)"),
                })
            }
        }
    }
    if let Some((at, p)) = cur.take() {
        entries.push(p.finish(at)?);
    }
    Ok(entries)
}

#[derive(Default)]
struct PartialEntry {
    rule: Option<String>,
    path: Option<String>,
    max: Option<usize>,
    reason: Option<String>,
    chain: Option<String>,
}

impl PartialEntry {
    fn finish(self, line: usize) -> Result<AllowEntry, ParseError> {
        let missing = |what: &str| ParseError {
            line,
            message: format!("[[allow]] entry missing required key `{what}`"),
        };
        let max = self.max.ok_or_else(|| missing("max"))?;
        if max == 0 {
            return Err(ParseError {
                line,
                message: "`max = 0` is meaningless: delete the entry instead".to_string(),
            });
        }
        Ok(AllowEntry {
            rule: self.rule.ok_or_else(|| missing("rule"))?,
            path: self.path.ok_or_else(|| missing("path"))?,
            max,
            reason: self.reason.ok_or_else(|| missing("reason"))?,
            chain: self.chain,
        })
    }
}

fn parse_string(value: &str, line: usize) -> Result<String, ParseError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ParseError {
            line,
            message: format!("expected a quoted string, got `{v}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let text = r#"
# grandfathered sites — shrink, never grow
[[allow]]
rule = "no-unwrap"
path = "crates/vssd/src/gsb.rs"  # inline comment
max = 2
reason = "pre-audit sites"

[[allow]]
rule = "entropy"
path = "crates/rl/src/ppo.rs"
max = 1
reason = "wall-clock progress logging"
"#;
        let e = parse_allowlist(text).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].rule, "no-unwrap");
        assert_eq!(e[0].max, 2);
        assert_eq!(e[1].path, "crates/rl/src/ppo.rs");
    }

    #[test]
    fn chain_key_is_optional() {
        let text =
            "[[allow]]\nrule = \"determinism-taint\"\npath = \"crates/rl/src/parallel.rs\"\n\
                    max = 1\nreason = \"r\"\nchain = \"collect_parallel -> merge\"\n";
        let e = parse_allowlist(text).unwrap();
        assert_eq!(e[0].chain.as_deref(), Some("collect_parallel -> merge"));
        let without = "[[allow]]\nrule = \"x\"\npath = \"y\"\nmax = 1\nreason = \"r\"\n";
        assert_eq!(parse_allowlist(without).unwrap()[0].chain, None);
    }

    #[test]
    fn empty_file_is_empty_allowlist() {
        assert!(parse_allowlist("# nothing grandfathered\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn missing_key_rejected() {
        let err = parse_allowlist("[[allow]]\nrule = \"entropy\"\n").unwrap_err();
        assert!(err.message.contains("missing required key"), "{err}");
    }

    #[test]
    fn zero_max_rejected() {
        let text = "[[allow]]\nrule = \"x\"\npath = \"y\"\nmax = 0\nreason = \"z\"\n";
        let err = parse_allowlist(text).unwrap_err();
        assert!(err.message.contains("delete the entry"), "{err}");
    }

    #[test]
    fn unquoted_string_rejected() {
        let err = parse_allowlist("[[allow]]\nrule = entropy\n").unwrap_err();
        assert!(err.message.contains("quoted string"), "{err}");
    }
}
