//! Human and machine-readable output for a check run.

use crate::CheckOutcome;

/// Renders `file:line: [rule] message` diagnostics, grandfathered notes,
/// and a closing summary line.
pub fn render_text(outcome: &CheckOutcome) -> String {
    let mut out = String::new();
    for d in &outcome.violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            d.path, d.line, d.rule, d.message, d.snippet
        ));
        if !d.chain.is_empty() {
            out.push_str(&format!("    call chain: {}\n", d.chain.join(" -> ")));
        }
    }
    for s in &outcome.stale_allowlist {
        out.push_str(&format!(
            "audit.toml: stale [[allow]] entry (rule \"{}\", path \"{}\"): no matching \
             violations remain — delete it\n",
            s.rule, s.path
        ));
    }
    for (entry, count) in &outcome.grandfathered {
        out.push_str(&format!(
            "note: {}: {} grandfathered `{}` site(s) (cap {}, reason: {})\n",
            entry.path, count, entry.rule, entry.max, entry.reason
        ));
        if *count < entry.max {
            out.push_str(&format!(
                "note: {}: cap can ratchet down to {} in audit.toml\n",
                entry.path, count
            ));
        }
    }
    out.push_str(&format!(
        "fleetio-audit: {} file(s) scanned, {} violation(s), {} grandfathered, {} stale \
         allowlist entr(ies) — {}\n",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.grandfathered.iter().map(|(_, c)| c).sum::<usize>(),
        outcome.stale_allowlist.len(),
        if outcome.is_clean() { "clean" } else { "FAIL" }
    ));
    out
}

/// Renders the outcome as a JSON document (hand-rolled; zero-dep crate).
pub fn render_json(outcome: &CheckOutcome) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"fleetio-audit/2\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n",
        outcome.files_scanned
    ));
    out.push_str(&format!("  \"clean\": {},\n", outcome.is_clean()));
    out.push_str("  \"violations\": [");
    for (i, d) in outcome.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let chain = d
            .chain
            .iter()
            .map(|c| json_str(c))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}, \
             \"chain\": [{chain}]}}",
            json_str(d.rule),
            json_str(&d.path),
            d.line,
            json_str(&d.message),
            json_str(&d.snippet)
        ));
    }
    if !outcome.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"grandfathered\": [");
    for (i, (e, count)) in outcome.grandfathered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"count\": {}, \"max\": {}, \"reason\": {}}}",
            json_str(&e.rule),
            json_str(&e.path),
            count,
            e.max,
            json_str(&e.reason)
        ));
    }
    if !outcome.grandfathered.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"stale_allowlist\": [");
    for (i, e) in outcome.stale_allowlist.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}}}",
            json_str(&e.rule),
            json_str(&e.path)
        ));
    }
    if !outcome.stale_allowlist.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the outcome as a SARIF 2.1.0 log (hand-rolled; zero-dep
/// crate), so CI can upload findings where code-scanning UIs annotate
/// PRs. Violations map to `error` results; stale allowlist entries map to
/// `warning` results anchored on `audit.toml`; taint chains ride in the
/// result message (the chain fns have no resolved line numbers, so a full
/// SARIF codeFlow would be fabricated location data).
pub fn render_sarif(outcome: &CheckOutcome) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [{\n");
    out.push_str("    \"tool\": {\"driver\": {\"name\": \"fleetio-audit\", \"rules\": [");
    for (i, id) in crate::rules::RULE_IDS
        .iter()
        .chain(std::iter::once(&"stale-allowlist"))
        .enumerate()
    {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"id\": {}}}", json_str(id)));
    }
    out.push_str("]}},\n");
    out.push_str("    \"results\": [");
    let mut first = true;
    let mut push_result =
        |out: &mut String, rule: &str, level: &str, msg: &str, uri: &str, line: usize| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n      {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
                json_str(rule),
                json_str(level),
                json_str(msg),
                json_str(uri),
                line.max(1)
            ));
        };
    for d in &outcome.violations {
        let msg = if d.chain.is_empty() {
            d.message.clone()
        } else {
            format!("{}; call chain: {}", d.message, d.chain.join(" -> "))
        };
        push_result(&mut out, d.rule, "error", &msg, &d.path, d.line);
    }
    for s in &outcome.stale_allowlist {
        let msg = format!(
            "stale [[allow]] entry (rule \"{}\", path \"{}\"): no matching violations remain — \
             delete it",
            s.rule, s.path
        );
        push_result(
            &mut out,
            "stale-allowlist",
            "warning",
            &msg,
            "audit.toml",
            1,
        );
    }
    if !first {
        out.push_str("\n    ");
    }
    out.push_str("]\n  }]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllowEntry;
    use crate::rules::Diagnostic;

    fn outcome() -> CheckOutcome {
        CheckOutcome {
            files_scanned: 3,
            violations: vec![Diagnostic {
                rule: "no-unwrap",
                path: "crates/des/src/queue.rs".to_string(),
                line: 42,
                message: "unwrap() in simulator core".to_string(),
                snippet: "x.unwrap()".to_string(),
                chain: Vec::new(),
            }],
            grandfathered: vec![(
                AllowEntry {
                    rule: "entropy".to_string(),
                    path: "crates/rl/src/ppo.rs".to_string(),
                    max: 2,
                    reason: "r".to_string(),
                    chain: None,
                },
                1,
            )],
            stale_allowlist: vec![],
        }
    }

    fn taint_outcome() -> CheckOutcome {
        CheckOutcome {
            files_scanned: 3,
            violations: vec![Diagnostic {
                rule: "determinism-taint",
                path: "crates/vssd/src/engine/mod.rs".to_string(),
                line: 7,
                message: "nondeterminism source `Instant` (host-time) reachable from \
                          `Engine::dispatch_event`"
                    .to_string(),
                snippet: "in fn leaf".to_string(),
                chain: vec![
                    "Engine::dispatch_event".to_string(),
                    "Engine::helper".to_string(),
                    "leaf".to_string(),
                ],
            }],
            grandfathered: vec![],
            stale_allowlist: vec![],
        }
    }

    #[test]
    fn text_has_file_line_rule() {
        let t = render_text(&outcome());
        assert!(t.contains("crates/des/src/queue.rs:42: [no-unwrap]"), "{t}");
        assert!(t.contains("FAIL"), "{t}");
        assert!(t.contains("ratchet down to 1"), "{t}");
    }

    #[test]
    fn text_and_json_carry_the_call_chain() {
        let o = taint_outcome();
        let t = render_text(&o);
        assert!(
            t.contains("call chain: Engine::dispatch_event -> Engine::helper -> leaf"),
            "{t}"
        );
        let j = render_json(&o);
        assert!(j.contains("\"schema\": \"fleetio-audit/2\""), "{j}");
        assert!(
            j.contains("\"chain\": [\"Engine::dispatch_event\", \"Engine::helper\", \"leaf\"]"),
            "{j}"
        );
        // Chain-less diagnostics serialize an empty array, not a missing key.
        assert!(render_json(&outcome()).contains("\"chain\": []"));
    }

    #[test]
    fn sarif_is_balanced_and_locates_results() {
        let mut o = taint_outcome();
        o.stale_allowlist.push(AllowEntry {
            rule: "no-println".to_string(),
            path: "crates/obs/src/main.rs".to_string(),
            max: 22,
            reason: "r".to_string(),
            chain: None,
        });
        let s = render_sarif(&o);
        assert!(s.contains("\"version\": \"2.1.0\""), "{s}");
        assert!(s.contains("\"ruleId\": \"determinism-taint\""), "{s}");
        assert!(
            s.contains("\"uri\": \"crates/vssd/src/engine/mod.rs\""),
            "{s}"
        );
        assert!(s.contains("\"startLine\": 7"), "{s}");
        assert!(s.contains("call chain: Engine::dispatch_event"), "{s}");
        assert!(s.contains("\"ruleId\": \"stale-allowlist\""), "{s}");
        assert!(s.contains("\"level\": \"warning\""), "{s}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(s.matches(open).count(), s.matches(close).count(), "{s}");
        }
        // An empty run still produces a well-formed log.
        let empty = CheckOutcome {
            files_scanned: 1,
            violations: vec![],
            grandfathered: vec![],
            stale_allowlist: vec![],
        };
        let s = render_sarif(&empty);
        assert!(s.contains("\"results\": []"), "{s}");
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let mut o = outcome();
        o.violations[0].snippet = "say \"hi\"".to_string();
        let j = render_json(&o);
        assert!(j.contains("\"rule\": \"no-unwrap\""), "{j}");
        assert!(j.contains("say \\\"hi\\\""), "{j}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(j.matches(open).count(), j.matches(close).count(), "{j}");
        }
    }
}
