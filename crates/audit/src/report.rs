//! Human and machine-readable output for a check run.

use crate::CheckOutcome;

/// Renders `file:line: [rule] message` diagnostics, grandfathered notes,
/// and a closing summary line.
pub fn render_text(outcome: &CheckOutcome) -> String {
    let mut out = String::new();
    for d in &outcome.violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            d.path, d.line, d.rule, d.message, d.snippet
        ));
    }
    for s in &outcome.stale_allowlist {
        out.push_str(&format!(
            "audit.toml: stale [[allow]] entry (rule \"{}\", path \"{}\"): no matching \
             violations remain — delete it\n",
            s.rule, s.path
        ));
    }
    for (entry, count) in &outcome.grandfathered {
        out.push_str(&format!(
            "note: {}: {} grandfathered `{}` site(s) (cap {}, reason: {})\n",
            entry.path, count, entry.rule, entry.max, entry.reason
        ));
        if *count < entry.max {
            out.push_str(&format!(
                "note: {}: cap can ratchet down to {} in audit.toml\n",
                entry.path, count
            ));
        }
    }
    out.push_str(&format!(
        "fleetio-audit: {} file(s) scanned, {} violation(s), {} grandfathered, {} stale \
         allowlist entr(ies) — {}\n",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.grandfathered.iter().map(|(_, c)| c).sum::<usize>(),
        outcome.stale_allowlist.len(),
        if outcome.is_clean() { "clean" } else { "FAIL" }
    ));
    out
}

/// Renders the outcome as a JSON document (hand-rolled; zero-dep crate).
pub fn render_json(outcome: &CheckOutcome) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"fleetio-audit/1\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n",
        outcome.files_scanned
    ));
    out.push_str(&format!("  \"clean\": {},\n", outcome.is_clean()));
    out.push_str("  \"violations\": [");
    for (i, d) in outcome.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
            json_str(d.rule),
            json_str(&d.path),
            d.line,
            json_str(&d.message),
            json_str(&d.snippet)
        ));
    }
    if !outcome.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"grandfathered\": [");
    for (i, (e, count)) in outcome.grandfathered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"count\": {}, \"max\": {}, \"reason\": {}}}",
            json_str(&e.rule),
            json_str(&e.path),
            count,
            e.max,
            json_str(&e.reason)
        ));
    }
    if !outcome.grandfathered.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"stale_allowlist\": [");
    for (i, e) in outcome.stale_allowlist.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}}}",
            json_str(&e.rule),
            json_str(&e.path)
        ));
    }
    if !outcome.stale_allowlist.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllowEntry;
    use crate::rules::Diagnostic;

    fn outcome() -> CheckOutcome {
        CheckOutcome {
            files_scanned: 3,
            violations: vec![Diagnostic {
                rule: "no-unwrap",
                path: "crates/des/src/queue.rs".to_string(),
                line: 42,
                message: "unwrap() in simulator core".to_string(),
                snippet: "x.unwrap()".to_string(),
            }],
            grandfathered: vec![(
                AllowEntry {
                    rule: "entropy".to_string(),
                    path: "crates/rl/src/ppo.rs".to_string(),
                    max: 2,
                    reason: "r".to_string(),
                },
                1,
            )],
            stale_allowlist: vec![],
        }
    }

    #[test]
    fn text_has_file_line_rule() {
        let t = render_text(&outcome());
        assert!(t.contains("crates/des/src/queue.rs:42: [no-unwrap]"), "{t}");
        assert!(t.contains("FAIL"), "{t}");
        assert!(t.contains("ratchet down to 1"), "{t}");
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let mut o = outcome();
        o.violations[0].snippet = "say \"hi\"".to_string();
        let j = render_json(&o);
        assert!(j.contains("\"rule\": \"no-unwrap\""), "{j}");
        assert!(j.contains("say \\\"hi\\\""), "{j}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(j.matches(open).count(), j.matches(close).count(), "{j}");
        }
    }
}
