//! `fleetio-audit`: repo-specific static lints for simulator determinism
//! and correctness.
//!
//! The FleetIO reproduction's results depend on the discrete-event
//! simulator being deterministic (same seed → bit-identical run) and
//! panic-free in its core. Those properties are invisible to the compiler,
//! so this crate enforces them as source-level rules:
//!
//! * [`raw-time-arith`](rules) — simulated-time conversion only in
//!   `crates/des/src/time.rs` (`SimTime`/`SimDuration`).
//! * [`no-unwrap`](rules) — no `.unwrap()` in `des`/`flash`/`vssd` src;
//!   `.expect()` needs an invariant-documenting message.
//! * [`hash-iteration`](rules) — no `HashMap`/`HashSet` in the core;
//!   iteration order must be deterministic.
//! * [`entropy`](rules) — randomness only via `des::rng` seeds.
//! * [`host-time-scope`](rules) — wall clock (`Instant`/`SystemTime`)
//!   only in `crates/bench` and the profiler (`crates/obs/src/prof*`);
//!   simulation crates take time from `SimTime`.
//! * [`no-println`](rules) — no `println!`/`eprintln!`/`print!`/`eprint!`/
//!   `dbg!` in quiet library crates (`des`/`flash`/`vssd`/`ml`/`rl`/`model`/
//!   `obs`); reporting goes through `fleetio-obs` sinks and exporters.
//! * [`atomic-io`](rules) — no direct `fs::write`/`File::create`/
//!   `OpenOptions` in simulation crates; persistent state (checkpoints,
//!   registries) goes through `fleetio_model::atomic_write` so a crash can
//!   never leave a half-written file behind.
//!
//! Run `cargo run -p fleetio-audit -- check` from anywhere in the
//! workspace; `audit.toml` at the repo root grandfathers legacy sites with
//! shrink-only caps (see [`config`]). The runtime half of the audit layer
//! (the `SimAuditor` invariant hooks) lives in the simulator crates behind
//! their `audit` cargo feature; this crate only covers what can be checked
//! without running the simulator.

use std::path::{Path, PathBuf};

pub mod config;
pub mod graph;
pub mod items;
pub mod report;
pub mod rules;
pub mod scan;
pub mod token;

use config::AllowEntry;
use rules::Diagnostic;

/// Result of a full check run, before rendering.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations not covered by the allowlist.
    pub violations: Vec<Diagnostic>,
    /// Allowlist entries that matched, with their current counts.
    pub grandfathered: Vec<(AllowEntry, usize)>,
    /// Allowlist entries that matched nothing (must be deleted).
    pub stale_allowlist: Vec<AllowEntry>,
}

impl CheckOutcome {
    /// Whether the tree passes: no violations and no stale allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allowlist.is_empty()
    }
}

/// Errors from a check run (I/O or allowlist parse failures).
#[derive(Debug)]
pub enum CheckError {
    /// Reading a source file or directory failed.
    Io(PathBuf, std::io::Error),
    /// `audit.toml` is malformed.
    Allowlist(config::ParseError),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            CheckError::Allowlist(e) => write!(f, "{e}"),
        }
    }
}

/// Runs the full static pass over the workspace rooted at `root`.
///
/// `root` must contain `crates/`; `audit.toml` beside it is optional (a
/// missing file means an empty allowlist).
pub fn run_check(root: &Path) -> Result<CheckOutcome, CheckError> {
    let allowlist = match std::fs::read_to_string(root.join("audit.toml")) {
        Ok(text) => config::parse_allowlist(&text).map_err(CheckError::Allowlist)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(CheckError::Io(root.join("audit.toml"), e)),
    };

    let scanned = scan_workspace(root)?;
    let deps = parse_dep_graph(root)?;
    let diagnostics = analyze(&scanned, &deps);
    Ok(apply_allowlist(scanned.len(), diagnostics, allowlist))
}

/// Scans every `.rs` file under `root/crates/` in sorted path order.
pub fn scan_workspace(root: &Path) -> Result<Vec<scan::ScannedFile>, CheckError> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut scanned = Vec::with_capacity(files.len());
    for file in &files {
        let source = std::fs::read_to_string(file).map_err(|e| CheckError::Io(file.clone(), e))?;
        scanned.push(scan::ScannedFile::new(&relative_path(root, file), &source));
    }
    Ok(scanned)
}

/// Runs the full rule set — per-file rules plus the workspace-level
/// determinism-taint reachability analysis — over already-scanned files.
/// This is the shared entry point for `run_check` and the fixture tests.
pub fn analyze(scanned: &[scan::ScannedFile], deps: &graph::DepGraph) -> Vec<Diagnostic> {
    let ws = graph::build(scanned, deps);
    let mut diagnostics = Vec::new();
    for file in scanned {
        diagnostics.extend(rules::check_file(file));
    }
    // Cost-based rules do not apply to whole files that are compiled only
    // under the `audit` feature (gated at their `mod` declaration): that
    // code is absent from release/perf builds, so it is never hot.
    diagnostics.retain(|d| {
        !(ws.file_is_audit_gated(&d.path)
            && (d.rule == "hot-path-collections" || d.rule == "unchecked-ops"))
    });
    diagnostics.extend(graph::determinism_taint(&ws));
    diagnostics
}

/// Builds the analyzed workspace (call graph + taint sources) alone, for
/// the summary/golden-test path.
pub fn build_workspace(scanned: &[scan::ScannedFile], deps: &graph::DepGraph) -> graph::Workspace {
    graph::build(scanned, deps)
}

/// Parses every `crates/*/Cargo.toml` `[dependencies]` section into the
/// crate dependency graph used to direction-restrict call resolution.
/// Only `fleetio-*` entries matter; dev-dependencies are excluded (test
/// code is outside the graph anyway, and dev edges may be cyclic).
pub fn parse_dep_graph(root: &Path) -> Result<graph::DepGraph, CheckError> {
    let crates_dir = root.join("crates");
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| CheckError::Io(crates_dir.clone(), e))?;
    let mut edges: Vec<(String, Vec<String>)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CheckError::Io(crates_dir.clone(), e))?;
        let manifest = entry.path().join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let name = entry.file_name().to_string_lossy().to_string();
        let mut deps = Vec::new();
        let mut in_deps = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
                continue;
            }
            if in_deps {
                let key: String = line
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '-')
                    .collect();
                if let Some(dep) = key.strip_prefix("fleetio-") {
                    deps.push(dep.to_string());
                } else if key == "fleetio" {
                    deps.push(key);
                }
            }
        }
        edges.push((name, deps));
    }
    edges.sort();
    Ok(graph::DepGraph::new(&edges))
}

/// Splits raw diagnostics into suppressed (grandfathered) and failing
/// sets according to the allowlist, and spots stale entries.
pub fn apply_allowlist(
    files_scanned: usize,
    diagnostics: Vec<Diagnostic>,
    allowlist: Vec<AllowEntry>,
) -> CheckOutcome {
    let mut violations = Vec::new();
    let mut counts: Vec<usize> = vec![0; allowlist.len()];
    for d in diagnostics {
        let chain_str = d.chain.join(" -> ");
        match allowlist.iter().position(|e| {
            e.rule == d.rule
                && e.path == d.path
                && e.chain.as_ref().is_none_or(|frag| chain_str.contains(frag))
        }) {
            Some(i) => {
                counts[i] += 1;
                if counts[i] > allowlist[i].max {
                    violations.push(d);
                }
            }
            None => violations.push(d),
        }
    }
    let mut grandfathered = Vec::new();
    let mut stale = Vec::new();
    for (entry, count) in allowlist.into_iter().zip(counts) {
        if count == 0 {
            stale.push(entry);
        } else {
            let capped = count.min(entry.max);
            grandfathered.push((entry, capped));
        }
    }
    CheckOutcome {
        files_scanned,
        violations,
        grandfathered,
        stale_allowlist: stale,
    }
}

/// Recursively collects `.rs` files under each crate's `src/` directory.
/// `tests/`, `benches/` and `examples/` trees are test code by definition
/// and out of scope.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), CheckError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CheckError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| CheckError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "tests" || name == "benches" || name == "examples" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The workspace root this crate was compiled in (two levels up from the
/// crate directory). Used as the default `--root`.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("audit crate lives at <root>/crates/audit")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real tree must be clean: this makes `cargo test` itself a
    /// determinism/correctness gate, independent of CI wiring.
    #[test]
    fn repo_is_clean() {
        let outcome = run_check(&default_root()).expect("check runs");
        assert!(
            outcome.is_clean(),
            "repo violates audit rules:\n{}",
            report::render_text(&outcome)
        );
        assert!(outcome.files_scanned > 50, "suspiciously few files scanned");
    }

    #[test]
    fn allowlist_caps_and_stale_detection() {
        let d = |rule: &'static str, path: &str, line: usize| Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
            snippet: String::new(),
            chain: Vec::new(),
        };
        let allow = vec![
            AllowEntry {
                rule: "no-unwrap".to_string(),
                path: "crates/des/src/queue.rs".to_string(),
                max: 1,
                reason: "r".to_string(),
                chain: None,
            },
            AllowEntry {
                rule: "entropy".to_string(),
                path: "crates/rl/src/ppo.rs".to_string(),
                max: 3,
                reason: "r".to_string(),
                chain: None,
            },
        ];
        let diags = vec![
            d("no-unwrap", "crates/des/src/queue.rs", 1),
            d("no-unwrap", "crates/des/src/queue.rs", 2),
            d("hash-iteration", "crates/vssd/src/gsb.rs", 3),
        ];
        let outcome = apply_allowlist(10, diags, allow);
        // Second queue.rs unwrap exceeds the cap; gsb.rs has no entry;
        // the ppo.rs entry is stale.
        assert_eq!(outcome.violations.len(), 2);
        assert_eq!(outcome.stale_allowlist.len(), 1);
        assert_eq!(outcome.grandfathered.len(), 1);
        assert!(!outcome.is_clean());
    }

    #[test]
    fn seeded_violation_is_caught() {
        // Acceptance criterion: introducing a violation must fail the
        // check. Simulate by scanning a poisoned source in-memory.
        let scanned = scan::ScannedFile::new(
            "crates/des/src/queue.rs",
            "pub fn pop(&mut self) { self.heap.pop().unwrap(); }\n",
        );
        let outcome = apply_allowlist(1, rules::check_file(&scanned), Vec::new());
        assert!(!outcome.is_clean());
        assert_eq!(outcome.violations[0].line, 1);
        assert_eq!(outcome.violations[0].rule, "no-unwrap");
    }

    #[test]
    fn chain_entries_only_match_their_fragment() {
        let taint = |chain: &[&str]| Diagnostic {
            rule: "determinism-taint",
            path: "crates/rl/src/parallel.rs".to_string(),
            line: 1,
            message: String::new(),
            snippet: String::new(),
            chain: chain.iter().map(|s| s.to_string()).collect(),
        };
        let allow = vec![AllowEntry {
            rule: "determinism-taint".to_string(),
            path: "crates/rl/src/parallel.rs".to_string(),
            max: 1,
            reason: "r".to_string(),
            chain: Some("collect_parallel -> merge".to_string()),
        }];
        // Matching chain is grandfathered; a different path through the
        // same file is not absorbed by the entry.
        let outcome = apply_allowlist(
            1,
            vec![
                taint(&["collect_parallel", "merge", "leaf"]),
                taint(&["collect_frozen", "other"]),
            ],
            allow,
        );
        assert_eq!(outcome.violations.len(), 1);
        assert_eq!(outcome.violations[0].chain[0], "collect_frozen");
        assert_eq!(outcome.grandfathered.len(), 1);
    }
}
