//! Workspace call graph and the determinism-taint reachability rule.
//!
//! The graph is built from [`crate::items`] extraction over every scanned
//! file: one node per `fn` item, edges from call sites resolved by name
//! with a suffix-qualified path filter (`Engine::idx` only matches fns in
//! an `impl Engine` or `mod idx`-shaped scope) and a crate
//! dependency-direction filter (a call in `vssd` can only land in `vssd`'s
//! dependency closure, so a bench-crate `Instant` can never look reachable
//! from the engine). Method calls (`x.f()`) are a conservative
//! over-approximation: they match every workspace fn named `f` that the
//! dependency filter admits.
//!
//! The taint rule seeds the graph with nondeterminism sources — host time,
//! hash-ordered collections, process environment, thread identity,
//! unordered channel polling, and float reductions across joined threads —
//! and walks forward from the DES dispatch path and the rollout workers.
//! Any path to a source is a finding, reported with the full call chain.
//! Two sinks are sanctioned and never traversed: the host-time profiler
//! (`crates/obs/src/prof*`) and `#[cfg(feature = "audit")]`-gated code,
//! neither of which runs in a release simulation.

use crate::items::{self, FnItem};
use crate::rules::Diagnostic;
use crate::scan::ScannedFile;
use crate::token::TokKind;

/// Reachability roots: the DES dispatch path and the rollout workers.
/// Every simulated decision flows through one of these.
pub const TAINT_ROOTS: [&str; 6] = [
    "Engine::dispatch_event",
    "Engine::run_until",
    "collect_frozen",
    "collect_parallel",
    "collect_parallel_envs",
    "FleetRuntime::run_window",
];

/// One nondeterminism source occurrence.
#[derive(Debug, Clone)]
pub struct TaintSource {
    /// Source category: `host-time`, `hash-collection`, `env`,
    /// `thread-identity`, `unordered-recv`, or `float-join`.
    pub kind: &'static str,
    /// The offending token or pattern, e.g. `Instant` or `thread::current`.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

#[derive(Debug)]
struct FnNode {
    file: usize,
    item: FnItem,
    /// Sanctioned sinks are kept in the graph but never traversed, and
    /// their own sources are never reported.
    sanctioned: bool,
    sources: Vec<TaintSource>,
    callees: Vec<usize>,
}

/// Crate dependency closure for call-resolution direction filtering.
#[derive(Debug, Default)]
pub struct DepGraph {
    /// `crate -> crates it may call into` (transitive, includes itself).
    closure: Vec<(String, Vec<String>)>,
}

impl DepGraph {
    /// Builds the transitive closure from direct-dependency edges.
    pub fn new(edges: &[(String, Vec<String>)]) -> DepGraph {
        let mut closure = Vec::new();
        for (krate, _) in edges {
            let mut reach = vec![krate.clone()];
            let mut i = 0;
            while i < reach.len() {
                let cur = reach[i].clone();
                if let Some((_, deps)) = edges.iter().find(|(k, _)| *k == cur) {
                    for d in deps {
                        if !reach.contains(d) {
                            reach.push(d.clone());
                        }
                    }
                }
                i += 1;
            }
            reach.sort();
            closure.push((krate.clone(), reach));
        }
        DepGraph { closure }
    }

    /// A graph that allows every edge (used by in-memory tests).
    pub fn unrestricted() -> DepGraph {
        DepGraph::default()
    }

    /// Whether a call in `caller` may resolve into `callee`. Unknown
    /// callers are unrestricted (conservative over-approximation).
    pub fn allows(&self, caller: &str, callee: &str) -> bool {
        if caller == callee || self.closure.is_empty() {
            return true;
        }
        match self.closure.iter().find(|(k, _)| k == caller) {
            Some((_, reach)) => reach.iter().any(|r| r == callee),
            None => true,
        }
    }
}

/// The analyzed workspace: files, fn nodes, call edges, taint sources.
#[derive(Debug)]
pub struct Workspace {
    paths: Vec<String>,
    fns: Vec<FnNode>,
    /// `(root name, resolved node ids)` for every entry in [`TAINT_ROOTS`].
    roots: Vec<(&'static str, Vec<usize>)>,
    /// Files whose `mod x;` declaration is `cfg(feature = "audit")`-gated.
    gated: Vec<String>,
}

impl Workspace {
    /// Whether the whole file is compiled only under the `audit` feature
    /// (its `mod` declaration is gated). Cost-based rules do not apply to
    /// such files: they are absent from release/perf builds.
    pub fn file_is_audit_gated(&self, path: &str) -> bool {
        self.gated.iter().any(|p| p == path)
    }

    /// `(root name, resolved fn-node ids)` per [`TAINT_ROOTS`] entry; an
    /// empty id list means the root did not resolve anywhere in the tree.
    pub fn root_resolutions(&self) -> impl Iterator<Item = (&'static str, &[usize])> {
        self.roots.iter().map(|(name, ids)| (*name, ids.as_slice()))
    }
}

/// Builds the workspace graph from scanned files.
pub fn build(files: &[ScannedFile], deps: &DepGraph) -> Workspace {
    let extracted: Vec<items::FileItems> = files.iter().map(items::extract).collect();
    let audit_gated = audit_gated_files(files, &extracted);

    // Nodes.
    let mut fns: Vec<FnNode> = Vec::new();
    let mut node_of: Vec<Vec<usize>> = Vec::with_capacity(files.len());
    for (fi, (file, ext)) in files.iter().zip(&extracted).enumerate() {
        let file_sanctioned = is_prof_file(&file.path) || audit_gated.contains(&file.path);
        let mut ids = Vec::with_capacity(ext.fns.len());
        for item in &ext.fns {
            ids.push(fns.len());
            fns.push(FnNode {
                file: fi,
                sanctioned: file_sanctioned || item.is_audit,
                item: item.clone(),
                sources: Vec::new(),
                callees: Vec::new(),
            });
        }
        node_of.push(ids);
    }
    let paths: Vec<String> = files.iter().map(|f| f.path.clone()).collect();

    // Name index over non-test fns.
    let mut by_name: Vec<(String, Vec<usize>)> = Vec::new();
    for (id, node) in fns.iter().enumerate() {
        if node.item.is_test {
            continue;
        }
        match by_name.binary_search_by(|(n, _)| n.as_str().cmp(&node.item.name)) {
            Ok(i) => by_name[i].1.push(id),
            Err(i) => by_name.insert(i, (node.item.name.clone(), vec![id])),
        }
    }

    // Calls and sources, file by file.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut srcs: Vec<(usize, TaintSource)> = Vec::new();
    for (fi, (file, ext)) in files.iter().zip(&extracted).enumerate() {
        scan_file(
            file,
            ext,
            &node_of[fi],
            &fns,
            &paths,
            &by_name,
            deps,
            &mut edges,
            &mut srcs,
        );
    }
    for (from, to) in edges {
        if !fns[from].callees.contains(&to) {
            fns[from].callees.push(to);
        }
    }
    for (id, s) in srcs {
        fns[id].sources.push(s);
    }

    // Resolve roots by exact qualified name.
    let roots = TAINT_ROOTS
        .iter()
        .map(|root| {
            let ids = fns
                .iter()
                .enumerate()
                .filter(|(_, n)| !n.item.is_test && n.item.qualified() == *root)
                .map(|(id, _)| id)
                .collect();
            (*root, ids)
        })
        .collect();

    Workspace {
        paths,
        fns,
        roots,
        gated: audit_gated,
    }
}

/// Files reached only through a `#[cfg(feature = "audit")] mod x;`
/// declaration: the whole file is audit-gated.
fn audit_gated_files(files: &[ScannedFile], extracted: &[items::FileItems]) -> Vec<String> {
    let mut out = Vec::new();
    for (file, ext) in files.iter().zip(extracted) {
        for (name, line) in &ext.mod_decls {
            if !file.line_is_audit(*line as usize) {
                continue;
            }
            let dir = match file.path.rsplit_once('/') {
                Some((dir, stem)) => {
                    let stem = stem.trim_end_matches(".rs");
                    if stem == "mod" || stem == "lib" || stem == "main" {
                        dir.to_string()
                    } else {
                        format!("{dir}/{stem}")
                    }
                }
                None => String::new(),
            };
            out.push(format!("{dir}/{name}.rs"));
            out.push(format!("{dir}/{name}/mod.rs"));
        }
    }
    out
}

fn is_prof_file(path: &str) -> bool {
    path.starts_with("crates/obs/src/prof")
}

/// The crate a workspace-relative path belongs to (`crates/<name>/...`).
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or(path)
}

/// File stem (module name the file defines): `engine/harvest.rs` →
/// `harvest`; `engine/mod.rs` → `engine` (the directory).
fn file_module(path: &str) -> &str {
    let stem = path
        .rsplit_once('/')
        .map(|(_, s)| s)
        .unwrap_or(path)
        .trim_end_matches(".rs");
    if stem == "mod" || stem == "lib" || stem == "main" {
        path.rsplit_once('/')
            .map(|(d, _)| d.rsplit('/').next().unwrap_or(d))
            .unwrap_or(stem)
    } else {
        stem
    }
}

/// Idents that look like calls but are control flow or declarations.
const CALL_KEYWORDS: [&str; 15] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "let", "else", "break",
    "continue", "where", "await",
];

/// Single-token source idents, by kind.
const IDENT_SOURCES: [(&str, &str); 6] = [
    ("Instant", "host-time"),
    ("SystemTime", "host-time"),
    ("HashMap", "hash-collection"),
    ("HashSet", "hash-collection"),
    ("RandomState", "hash-collection"),
    ("try_recv", "unordered-recv"),
];

#[allow(clippy::too_many_arguments)]
fn scan_file(
    file: &ScannedFile,
    ext: &items::FileItems,
    local_ids: &[usize],
    fns: &[FnNode],
    paths: &[String],
    by_name: &[(String, Vec<usize>)],
    deps: &DepGraph,
    edges: &mut Vec<(usize, usize)>,
    srcs: &mut Vec<(usize, TaintSource)>,
) {
    let toks = &file.toks;
    let caller_crate = crate_of(&file.path);
    // Per-local-fn float-join aggregation.
    let mut join_line: Vec<Option<u32>> = vec![None; ext.fns.len()];
    let mut has_float: Vec<bool> = vec![false; ext.fns.len()];

    for (k, t) in toks.iter().enumerate() {
        let line = t.line as usize;
        if file.line_is_test(line) || file.line_is_audit(line) {
            continue;
        }
        let owner_local = ext.owner.get(k).copied().flatten();
        let owner = owner_local.map(|l| local_ids[l]);

        // -- taint sources ------------------------------------------------
        if t.kind == TokKind::Ident {
            let mut push_src = |kind: &'static str, what: &str| {
                if let Some(o) = owner {
                    srcs.push((
                        o,
                        TaintSource {
                            kind,
                            what: what.to_string(),
                            line: t.line,
                        },
                    ));
                }
            };
            for (name, kind) in IDENT_SOURCES {
                if t.text == name {
                    push_src(kind, name);
                }
            }
            // `env::...` — process environment reads (std::env::args/var).
            // The compile-time `env!` macro does not match (`!`, not `::`).
            if t.text == "env" && toks.get(k + 1).is_some_and(|n| n.is_punct("::")) {
                push_src("env", "std::env");
            }
            // `thread::current` — thread identity.
            if t.text == "thread"
                && toks.get(k + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(k + 2).is_some_and(|n| n.is_ident("current"))
            {
                push_src("thread-identity", "thread::current");
            }
            if t.text == "f64" || t.text == "f32" {
                if let Some(l) = owner_local {
                    has_float[l] = true;
                }
            }
            // `.join()` with no arguments: a thread join (Path::join and
            // slice::join take an argument).
            if t.text == "join"
                && k > 0
                && toks[k - 1].is_punct(".")
                && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
                && toks.get(k + 2).is_some_and(|n| n.is_punct(")"))
            {
                if let Some(l) = owner_local {
                    join_line[l].get_or_insert(t.line);
                }
            }
        }
        if t.kind == TokKind::Float || t.is_punct("+=") {
            if let Some(l) = owner_local {
                has_float[l] = true;
            }
        }

        // -- call edges ---------------------------------------------------
        if t.kind != TokKind::Ident || CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let Some(o) = owner else { continue };
        if fns[o].item.is_test {
            continue;
        }
        // `name(` or `name::<T>(`, but not `name!(` (macro).
        let mut p = k + 1;
        if toks.get(p).is_some_and(|n| n.is_punct("::"))
            && toks.get(p + 1).is_some_and(|n| n.is_punct("<"))
        {
            let mut angle = 0i32;
            let mut q = p + 1;
            while q < toks.len() {
                if toks[q].is_punct("<") {
                    angle += 1;
                } else if toks[q].is_punct(">") {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                }
                q += 1;
            }
            p = q + 1;
        }
        if !toks.get(p).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let qualifier =
            if k >= 2 && toks[k - 1].is_punct("::") && toks[k - 2].kind == TokKind::Ident {
                Some(toks[k - 2].text.as_str())
            } else {
                None
            };
        let Some(candidates) = by_name
            .binary_search_by(|(n, _)| n.as_str().cmp(&t.text))
            .ok()
            .map(|i| &by_name[i].1)
        else {
            continue;
        };
        for &cand in candidates {
            let cand_path = &paths[fns[cand].file];
            if !deps.allows(caller_crate, crate_of(cand_path)) {
                continue;
            }
            match qualifier {
                // Module-relative path: restrict to the caller's crate.
                Some("self") | Some("crate") | Some("super")
                    if crate_of(cand_path) != caller_crate =>
                {
                    continue;
                }
                Some("self") | Some("crate") | Some("super") => {}
                Some(q) => {
                    let q = match (q, &fns[o].item.self_ty) {
                        ("Self", Some(ty)) => ty.as_str(),
                        _ => q,
                    };
                    let item = &fns[cand].item;
                    let matches = item.self_ty.as_deref() == Some(q)
                        || item.module.as_deref() == Some(q)
                        || file_module(cand_path) == q;
                    if !matches {
                        continue;
                    }
                }
                // Bare or method call: any same-name fn (over-approximate).
                None => {}
            }
            edges.push((o, cand));
        }
    }

    for (l, jl) in join_line.iter().enumerate() {
        if let (Some(line), true) = (jl, has_float[l]) {
            srcs.push((
                local_ids[l],
                TaintSource {
                    kind: "float-join",
                    what: "float reduction across joined threads".to_string(),
                    line: *line,
                },
            ));
        }
    }
}

/// Runs the determinism-taint reachability rule: BFS from every resolved
/// root, stopping at sanctioned sinks, reporting each reachable fn's
/// sources with the full call chain.
pub fn determinism_taint(ws: &Workspace) -> Vec<Diagnostic> {
    let mut pred: Vec<Option<usize>> = vec![None; ws.fns.len()];
    let mut visited = vec![false; ws.fns.len()];
    let mut order: Vec<usize> = Vec::new();
    let mut root_of: Vec<Option<&'static str>> = vec![None; ws.fns.len()];
    let mut queue = std::collections::VecDeque::new();
    for (root, ids) in &ws.roots {
        for &id in ids {
            if !visited[id] && !ws.fns[id].sanctioned {
                visited[id] = true;
                root_of[id] = Some(root);
                queue.push_back(id);
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for &next in &ws.fns[id].callees {
            if visited[next] || ws.fns[next].sanctioned || ws.fns[next].item.is_test {
                continue;
            }
            visited[next] = true;
            pred[next] = Some(id);
            root_of[next] = root_of[id];
            queue.push_back(next);
        }
    }

    let mut out = Vec::new();
    for &id in &order {
        let node = &ws.fns[id];
        for s in &node.sources {
            let mut chain: Vec<String> = Vec::new();
            let mut cur = Some(id);
            while let Some(c) = cur {
                chain.push(ws.fns[c].item.qualified());
                cur = pred[c];
            }
            chain.reverse();
            out.push(Diagnostic {
                rule: "determinism-taint",
                path: ws.paths[node.file].clone(),
                line: s.line as usize,
                message: format!(
                    "nondeterminism source `{}` ({}) reachable from `{}`",
                    s.what,
                    s.kind,
                    root_of[id].unwrap_or("?"),
                ),
                snippet: format!("in fn {}", node.item.qualified()),
                chain,
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// A stable, line-number-free summary of the analysis for the golden
/// test: resolved roots, the sim-scope source inventory (with sanctioned
/// markers), and the finding count. Engine refactors that move lines do
/// not churn it; regressions in extraction, resolution, or sanctioning do.
pub fn taint_summary(ws: &Workspace) -> String {
    let mut out = String::from("taint roots:\n");
    for (root, ids) in &ws.roots {
        if ids.is_empty() {
            out.push_str(&format!("  {root} [UNRESOLVED]\n"));
        } else {
            for &id in ids {
                out.push_str(&format!("  {root} @ {}\n", ws.paths[ws.fns[id].file]));
            }
        }
    }
    out.push_str("sim-scope sources:\n");
    let mut rows: Vec<(String, &'static str, bool)> = Vec::new();
    for node in &ws.fns {
        let path = &ws.paths[node.file];
        if !crate::rules::in_sim(path) {
            continue;
        }
        for s in &node.sources {
            rows.push((path.clone(), s.kind, node.sanctioned));
        }
    }
    rows.sort();
    let mut i = 0;
    while i < rows.len() {
        let (path, kind, sanctioned) = rows[i].clone();
        let mut n = 0;
        while i < rows.len() && rows[i].0 == path && rows[i].1 == kind {
            n += 1;
            i += 1;
        }
        let mark = if sanctioned { " [sanctioned]" } else { "" };
        out.push_str(&format!("  {path}: {kind} x{n}{mark}\n"));
    }
    let findings = determinism_taint(ws);
    out.push_str(&format!("findings: {}\n", findings.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let scanned: Vec<ScannedFile> = files.iter().map(|(p, s)| ScannedFile::new(p, s)).collect();
        build(&scanned, &DepGraph::unrestricted())
    }

    #[test]
    fn taint_flows_through_a_call_chain() {
        let w = ws(&[(
            "crates/vssd/src/engine/mod.rs",
            "impl Engine {\n\
             pub fn dispatch_event(&mut self) { self.helper(); }\n\
             fn helper(&self) { leaf(); }\n\
             }\n\
             fn leaf() { let t = std::time::Instant::now(); }\n",
        )]);
        let d = determinism_taint(&w);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "determinism-taint");
        assert_eq!(d[0].line, 5);
        assert_eq!(
            d[0].chain,
            ["Engine::dispatch_event", "Engine::helper", "leaf"]
        );
    }

    #[test]
    fn unreachable_source_is_not_reported() {
        let w = ws(&[(
            "crates/vssd/src/engine/mod.rs",
            "impl Engine {\n pub fn dispatch_event(&mut self) {}\n }\n\
             fn lonely() { let t = std::time::Instant::now(); }\n",
        )]);
        assert!(determinism_taint(&w).is_empty());
    }

    #[test]
    fn prof_and_cfg_audit_are_sanctioned_sinks() {
        let w = ws(&[
            (
                "crates/vssd/src/engine/mod.rs",
                "impl Engine {\n\
                 pub fn dispatch_event(&mut self) { span(); self.audit_event(); }\n\
                 }\n\
                 #[cfg(feature = \"audit\")]\n\
                 impl Engine {\n\
                 fn audit_event(&self) { let t = std::time::Instant::now(); }\n\
                 }\n",
            ),
            (
                "crates/obs/src/prof.rs",
                "pub fn span() { let t = std::time::Instant::now(); }\n",
            ),
        ]);
        assert!(determinism_taint(&w).is_empty());
    }

    #[test]
    fn audit_gated_mod_decl_sanctions_the_whole_file() {
        let w = ws(&[
            (
                "crates/vssd/src/engine/mod.rs",
                "#[cfg(feature = \"audit\")]\nmod audit;\n\
                 impl Engine {\n pub fn dispatch_event(&mut self) { self.check(); }\n }\n",
            ),
            (
                "crates/vssd/src/engine/audit.rs",
                "impl Engine {\n pub fn check(&self) { let m = std::collections::HashMap::new(); }\n }\n",
            ),
        ]);
        assert!(determinism_taint(&w).is_empty());
    }

    #[test]
    fn dependency_direction_restricts_resolution() {
        let files = [
            (
                "crates/vssd/src/engine/mod.rs",
                "impl Engine {\n pub fn dispatch_event(&mut self) { measure(); }\n }\n",
            ),
            (
                "crates/bench/src/harness.rs",
                "pub fn measure() { let t = std::time::Instant::now(); }\n",
            ),
        ];
        // Unrestricted: the bench fn resolves and taints the root.
        assert_eq!(determinism_taint(&ws(&files)).len(), 1);
        // With the real dependency direction (vssd does not depend on
        // bench) the call cannot land there.
        let scanned: Vec<ScannedFile> = files.iter().map(|(p, s)| ScannedFile::new(p, s)).collect();
        let deps = DepGraph::new(&[
            ("vssd".to_string(), vec!["des".to_string()]),
            ("bench".to_string(), vec!["vssd".to_string()]),
        ]);
        assert!(determinism_taint(&build(&scanned, &deps)).is_empty());
    }

    #[test]
    fn qualified_calls_respect_the_self_type() {
        let w = ws(&[(
            "crates/vssd/src/engine/mod.rs",
            "impl Engine {\n pub fn dispatch_event(&mut self) { Other::poke(); }\n }\n\
             struct Other;\n\
             impl Other {\n fn poke() {}\n }\n\
             struct Timer;\n\
             impl Timer {\n fn poke() { let t = std::time::Instant::now(); }\n }\n",
        )]);
        // `Other::poke` must not resolve to `Timer::poke`.
        assert!(determinism_taint(&w).is_empty());
    }

    #[test]
    fn float_join_requires_both_join_and_float_evidence() {
        let float_join = "fn collect_parallel() {\n\
             let mut total = 0.0f64;\n\
             for h in handles { total += h.join().unwrap(); }\n\
             }\n";
        let int_join = "fn collect_parallel() {\n\
             for h in handles { out.push(h.join().unwrap()); }\n\
             }\n";
        let path_join = "fn collect_parallel() {\n\
             let avg = 0.5f64;\n\
             let p = dir.join(name);\n\
             }\n";
        let d = determinism_taint(&ws(&[("crates/rl/src/parallel.rs", float_join)]));
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("float-join"), "{d:?}");
        assert!(determinism_taint(&ws(&[("crates/rl/src/parallel.rs", int_join)])).is_empty());
        assert!(determinism_taint(&ws(&[("crates/rl/src/parallel.rs", path_join)])).is_empty());
    }

    #[test]
    fn sources_in_test_code_are_ignored() {
        let w = ws(&[(
            "crates/vssd/src/engine/mod.rs",
            "impl Engine {\n pub fn dispatch_event(&mut self) { self.go(); }\n\
             fn go(&self) {}\n }\n\
             #[cfg(test)]\nmod tests {\n fn t() { let m = std::collections::HashMap::new(); }\n}\n",
        )]);
        assert!(determinism_taint(&w).is_empty());
    }

    #[test]
    fn summary_is_line_free_and_lists_roots() {
        let w = ws(&[(
            "crates/vssd/src/engine/mod.rs",
            "impl Engine {\n pub fn run_until(&mut self) {}\n pub fn dispatch_event(&mut self) {}\n }\n",
        )]);
        let s = taint_summary(&w);
        assert!(s.contains("Engine::dispatch_event @ crates/vssd/src/engine/mod.rs"));
        assert!(s.contains("collect_frozen [UNRESOLVED]"));
        assert!(s.contains("findings: 0"));
        assert!(!s.contains(" line"), "{s}");
    }
}
