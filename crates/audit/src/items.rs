//! Item extraction: per-file `fn` / `impl` / `mod` discovery over the
//! token stream.
//!
//! This is the middle layer of the analysis pipeline: the tokenizer
//! ([`crate::token`]) feeds it, and the workspace call graph
//! ([`crate::graph`]) consumes its output. Extraction is a single linear
//! pass with a brace-depth counter and a scope stack — no expression
//! parsing — so it is deliberately approximate: good enough to name every
//! function item, attribute every body token to its enclosing function,
//! and recover the `impl` self type for `Type::method` call resolution.

use crate::scan::ScannedFile;
use crate::token::{Tok, TokKind};

/// One `fn` item (free function, inherent/trait method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Self type when declared inside `impl Ty` / `impl Trait for Ty`
    /// (last path segment, generics stripped) or a `trait Ty` block.
    pub self_ty: Option<String>,
    /// Innermost enclosing inline `mod` name, if any.
    pub module: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the item sits in a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// Whether the item sits in a `#[cfg(feature = "audit")]` region.
    pub is_audit: bool,
}

impl FnItem {
    /// `Ty::name` when the item has a self type, else just `name`.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Extraction result for one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// For each token index, the innermost `fn` (index into `fns`) whose
    /// body contains it; `None` for tokens outside any function body.
    pub owner: Vec<Option<usize>>,
    /// `mod name;` declarations (out-of-line modules): `(name, line)`.
    /// Used to propagate `cfg(feature = "audit")` gating to whole files.
    pub mod_decls: Vec<(String, u32)>,
}

#[derive(Debug)]
enum Scope {
    Mod(String),
    Impl(Option<String>),
    Trait(String),
    /// A fn body: index into `FileItems::fns`.
    Fn(usize),
    /// Any other brace pair (struct, match, block, ...).
    Other,
}

/// Extracts items from a scanned file.
pub fn extract(file: &ScannedFile) -> FileItems {
    let toks = &file.toks;
    let mut out = FileItems {
        owner: vec![None; toks.len()],
        ..FileItems::default()
    };
    // Scopes opened by a brace, with the depth they opened at.
    let mut stack: Vec<(u32, Scope)> = Vec::new();
    let mut pending: Option<Scope> = None;
    let mut depth = 0u32;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
            stack.push((depth, pending.take().unwrap_or(Scope::Other)));
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            while stack.last().is_some_and(|(d, _)| *d == depth) {
                stack.pop();
            }
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "impl" => {
                    let (scope, next) = parse_impl_header(toks, i);
                    if let Some(s) = scope {
                        pending = Some(s);
                    }
                    record_owner(&mut out, &stack, i, next);
                    i = next;
                    continue;
                }
                "mod" => {
                    if let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        match toks.get(i + 2) {
                            Some(n) if n.is_punct(";") => {
                                out.mod_decls.push((name_tok.text.clone(), t.line));
                            }
                            Some(n) if n.is_punct("{") => {
                                pending = Some(Scope::Mod(name_tok.text.clone()));
                            }
                            _ => {}
                        }
                        record_owner(&mut out, &stack, i, i + 2);
                        i += 2;
                        continue;
                    }
                }
                "trait" => {
                    if let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        pending = Some(Scope::Trait(name_tok.text.clone()));
                        // Skip the header (supertraits, generics) up to the
                        // opening brace so `fn`-like idents in bounds are
                        // not misread as items.
                        let next = scan_to_block_or_semi(toks, i + 2);
                        record_owner(&mut out, &stack, i, next);
                        i = next;
                        continue;
                    }
                }
                "fn" => {
                    if let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        let idx = out.fns.len();
                        out.fns.push(FnItem {
                            name: name_tok.text.clone(),
                            self_ty: enclosing_ty(&stack),
                            module: enclosing_mod(&stack),
                            line: t.line,
                            is_test: file.line_is_test(t.line as usize),
                            is_audit: file.line_is_audit(t.line as usize),
                        });
                        // Skip the signature (params, return type, where
                        // clause) to the body brace or the trailing `;` of
                        // a body-less trait-method declaration.
                        let next = scan_to_block_or_semi(toks, i + 2);
                        record_owner(&mut out, &stack, i, next);
                        if toks.get(next).is_some_and(|n| n.is_punct("{")) {
                            pending = Some(Scope::Fn(idx));
                        }
                        i = next;
                        continue;
                    }
                }
                _ => {}
            }
        }
        record_owner(&mut out, &stack, i, i + 1);
        i += 1;
    }
    out
}

/// Assigns the innermost enclosing fn (if any) to tokens `[from, to)`.
fn record_owner(out: &mut FileItems, stack: &[(u32, Scope)], from: usize, to: usize) {
    let owner = stack.iter().rev().find_map(|(_, s)| match s {
        Scope::Fn(idx) => Some(*idx),
        _ => None,
    });
    if owner.is_some() {
        let to = to.min(out.owner.len());
        for slot in out.owner[from..to].iter_mut() {
            *slot = owner;
        }
    }
}

/// Innermost `impl`/`trait` self type on the stack.
fn enclosing_ty(stack: &[(u32, Scope)]) -> Option<String> {
    stack.iter().rev().find_map(|(_, s)| match s {
        Scope::Impl(ty) => ty.clone(),
        Scope::Trait(name) => Some(name.clone()),
        _ => None,
    })
}

/// Innermost inline `mod` name on the stack.
fn enclosing_mod(stack: &[(u32, Scope)]) -> Option<String> {
    stack.iter().rev().find_map(|(_, s)| match s {
        Scope::Mod(name) => Some(name.clone()),
        _ => None,
    })
}

/// Parses an `impl` header starting at token `start` (the `impl` ident).
/// Returns the scope to open at the next `{` (None when this is not an
/// item-position impl block, e.g. `-> impl Iterator`) and the index of
/// the block-opening `{` or terminating token.
fn parse_impl_header(toks: &[Tok], start: usize) -> (Option<Scope>, usize) {
    let mut angle = 0i32;
    let mut after_for = false;
    let mut last_ident: Option<String> = None;
    let mut last_ident_after_for: Option<String> = None;
    let mut j = start + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("{") && angle == 0 {
            let ty = last_ident_after_for.or(last_ident);
            return (Some(Scope::Impl(ty)), j);
        }
        // `impl Trait` in return/argument position never reaches a brace
        // before one of these terminators.
        if angle == 0 && (t.is_punct(";") || t.is_punct(")") || t.is_punct(",") || t.is_punct("="))
        {
            return (None, j);
        }
        match t.kind {
            TokKind::Punct if t.text == "<" => angle += 1,
            TokKind::Punct if t.text == ">" => angle -= 1,
            TokKind::Ident if angle == 0 => match t.text.as_str() {
                "for" => after_for = true,
                "where" => {
                    // Type is settled; keep scanning for the brace.
                }
                "dyn" | "mut" | "const" | "unsafe" => {}
                name => {
                    if after_for {
                        last_ident_after_for = Some(name.to_string());
                    } else {
                        last_ident = Some(name.to_string());
                    }
                }
            },
            _ => {}
        }
        j += 1;
    }
    (None, toks.len())
}

/// Scans from `start` to the first top-level `{` or `;` (angle-bracket
/// aware, so `fn f<T: Iterator<Item = u8>>()` generics and fn-pointer
/// parens don't confuse it). Returns the index of that token.
fn scan_to_block_or_semi(toks: &[Tok], start: usize) -> usize {
    let mut angle = 0i32;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "{" | ";" if angle == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> FileItems {
        extract(&ScannedFile::new("crates/x/src/lib.rs", src))
    }

    #[test]
    fn free_fn_and_method_extraction() {
        let fi = items(
            "fn free() {}\n\
             impl Engine {\n    pub fn dispatch_event(&mut self) { self.idx(); }\n}\n\
             impl fmt::Display for Engine {\n    fn fmt(&self) {}\n}\n",
        );
        let names: Vec<String> = fi.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, ["free", "Engine::dispatch_event", "Engine::fmt"]);
        assert_eq!(fi.fns[1].line, 3);
    }

    #[test]
    fn generic_impl_resolves_last_path_segment() {
        let fi = items(
            "impl<'a, T: Clone> Wrapper<'a, T> {\n    fn get(&self) {}\n}\n\
             impl<T> From<T> for engine::Engine<T> {\n    fn from(t: T) {}\n}\n",
        );
        assert_eq!(fi.fns[0].self_ty.as_deref(), Some("Wrapper"));
        assert_eq!(fi.fns[1].self_ty.as_deref(), Some("Engine"));
    }

    #[test]
    fn trait_methods_and_nested_fns() {
        let fi = items(
            "trait Sink: Send {\n    fn emit(&self);\n    fn named(&self) -> &str { \"s\" }\n}\n\
             fn outer() {\n    fn inner() {}\n    inner();\n}\n",
        );
        let names: Vec<String> = fi.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, ["Sink::emit", "Sink::named", "outer", "inner"]);
    }

    #[test]
    fn impl_in_return_position_is_not_a_scope() {
        let fi = items(
            "fn make() -> impl Iterator<Item = u8> {\n    std::iter::empty()\n}\nfn after() {}\n",
        );
        let names: Vec<String> = fi.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, ["make", "after"]);
        assert!(fi.fns[1].self_ty.is_none());
    }

    #[test]
    fn owner_map_attributes_body_tokens() {
        let src = "fn a() { callee(); }\nfn b() { other(); }\n";
        let f = ScannedFile::new("crates/x/src/lib.rs", src);
        let fi = extract(&f);
        let callee_idx = f.toks.iter().position(|t| t.is_ident("callee")).unwrap();
        let other_idx = f.toks.iter().position(|t| t.is_ident("other")).unwrap();
        assert_eq!(fi.owner[callee_idx], Some(0));
        assert_eq!(fi.owner[other_idx], Some(1));
    }

    #[test]
    fn mod_scopes_and_declarations() {
        let fi = items("mod inner {\n    fn f() {}\n}\nmod out_of_line;\nfn top() {}\n");
        assert_eq!(fi.fns[0].module.as_deref(), Some("inner"));
        assert!(fi.fns[1].module.is_none());
        assert_eq!(fi.mod_decls, vec![("out_of_line".to_string(), 4)]);
    }

    #[test]
    fn test_and_audit_flags_follow_line_maps() {
        let fi = items(
            "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\
             #[cfg(feature = \"audit\")]\nfn sweep() {}\nfn hot() {}\n",
        );
        assert!(fi.fns[0].is_test);
        assert!(fi.fns[1].is_audit && !fi.fns[1].is_test);
        assert!(!fi.fns[2].is_audit && !fi.fns[2].is_test);
    }
}
