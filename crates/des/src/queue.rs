//! Deterministic time-ordered event queue.
//!
//! The queue orders events by timestamp; events scheduled for the same
//! instant pop in insertion (FIFO) order, which makes whole simulations
//! reproducible bit-for-bit across runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled on an [`EventQueue`].
#[derive(Debug, Clone)]
pub struct Event<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-break sequence number: among equal timestamps, lower pops first.
    pub seq: u64,
    /// The event payload.
    pub payload: T,
}

struct HeapEntry<T>(Event<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// A deterministic min-heap of timed events.
///
/// # Example
///
/// ```
/// use fleetio_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(10), 'b');
/// q.push(SimTime::from_micros(10), 'c'); // same instant: FIFO order
/// q.push(SimTime::from_micros(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
    /// Lifetime count of popped events (survives [`EventQueue::clear`]),
    /// the denominator for events/sec throughput reporting.
    popped: u64,
    /// With `--features audit`: timestamp of the last popped event, for
    /// monotonicity auditing of the heap ordering itself.
    #[cfg(feature = "audit")]
    last_popped: Option<SimTime>,
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
            #[cfg(feature = "audit")]
            last_popped: None,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            popped: 0,
            #[cfg(feature = "audit")]
            last_popped: None,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns the event's sequence
    /// number (useful for cancellation bookkeeping by the caller).
    pub fn push(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { at, seq, payload }));
        seq
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let ev = self.heap.pop().map(|e| e.0);
        if ev.is_some() {
            self.popped += 1;
        }
        #[cfg(feature = "audit")]
        if let Some(ev) = &ev {
            if let Some(prev) = self.last_popped {
                debug_assert!(
                    ev.at >= prev,
                    "event queue popped {} after {prev}: heap ordering broken",
                    ev.at
                );
            }
            self.last_popped = Some(ev.at);
        }
        ev
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event<T>> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Lifetime count of events popped from this queue (not reset by
    /// [`EventQueue::clear`]): the sim-events/sec numerator for
    /// throughput reporting.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events (and, under the `audit` feature, the
    /// popped-time watermark — a cleared queue may be reused for a new run).
    pub fn clear(&mut self) {
        self.heap.clear();
        #[cfg(feature = "audit")]
        {
            self.last_popped = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SmallRng};

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        let got: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let want: Vec<i32> = (0..100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), "early");
        q.push(SimTime::from_micros(100), "late");
        assert_eq!(
            q.pop_before(SimTime::from_micros(50)).map(|e| e.payload),
            Some("early")
        );
        assert!(q.pop_before(SimTime::from_micros(50)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|e| e.payload), None);
    }

    #[test]
    fn popped_counts_lifetime_pops_across_clear() {
        let mut q = EventQueue::new();
        assert_eq!(q.popped(), 0);
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.pop();
        assert_eq!(q.popped(), 1);
        q.clear();
        assert_eq!(q.popped(), 1, "clear drops pending, not history");
        q.push(SimTime::ZERO, 3);
        q.pop();
        q.pop(); // Empty pop does not count.
        assert_eq!(q.popped(), 2);
    }

    /// Property: pops come out sorted by time, FIFO among equal stamps.
    #[test]
    fn prop_pops_are_sorted_and_stable() {
        let mut rng = SmallRng::seed_from_u64(0x9_0e0e);
        for _case in 0..256 {
            let n = rng.gen_range(1usize..200);
            let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000)).collect();
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(*t), i);
            }
            let mut popped = Vec::new();
            while let Some(e) = q.pop() {
                popped.push((e.at, e.payload));
            }
            // Sorted by time.
            for w in popped.windows(2) {
                assert!(w[0].0 <= w[1].0);
                // FIFO among equal timestamps: insertion index increases.
                if w[0].0 == w[1].0 {
                    assert!(w[0].1 < w[1].1);
                }
            }
            assert_eq!(popped.len(), times.len());
        }
    }
}
