//! Deterministic time-ordered event queues.
//!
//! Both queues in this module order events by `(at, seq)`: timestamp
//! first, then insertion sequence, so events scheduled for the same
//! instant pop in FIFO order and whole simulations reproduce
//! bit-for-bit across runs.
//!
//! * [`EventQueue`] — the production **calendar queue**: events hash into
//!   fixed-width time buckets on a ring, the active bucket is sorted once
//!   and drained by cursor, and only far-future events (beyond the ring
//!   horizon) or same/past-time cascades touch a heap. For the engine's
//!   heavily time-clustered event distribution this replaces the
//!   per-event `O(log n)` heap percolation of a binary heap with `O(1)`
//!   pushes and amortized `O(1)` pops.
//! * [`BinaryHeapQueue`] — the straightforward binary-heap
//!   implementation the calendar queue replaced, kept as the **reference
//!   semantics** for differential testing (`prop_calendar_matches_heap`)
//!   and as a fallback for workloads without time clustering.
//!
//! See DESIGN.md § "DES internals" for the ordering argument and the
//! bucket-width selection.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled on an [`EventQueue`].
#[derive(Debug, Clone, Copy)]
pub struct Event<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-break sequence number: among equal timestamps, lower pops first.
    pub seq: u64,
    /// The event payload.
    pub payload: T,
}

struct HeapEntry<T>(Event<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// Default bucket width: `1 << 14` ns ≈ 16.4 µs. Engine events cluster at
/// sub-microsecond to tens-of-microseconds gaps (page reads ≈ 3–50 µs, bus
/// grants ≈ 64 µs), so a bucket holds a handful of events — enough to
/// amortize the per-bucket sort, small enough that the sort stays cache-hot.
const DEFAULT_SHIFT: u32 = 14;

/// Default ring size (buckets). With the default width the ring horizon is
/// `4096 << 14` ns ≈ 67 ms, which covers every recurring engine delay
/// (admission ticks at 50 ms, erases at ≈ 3 ms); only pre-submitted future
/// arrivals overflow to the heap.
const DEFAULT_RING: usize = 4096;

/// A deterministic calendar queue of timed events.
///
/// Same `(at, seq)` total order as [`BinaryHeapQueue`] — the two are
/// interchangeable, and a differential property test holds them identical.
///
/// # Example
///
/// ```
/// use fleetio_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(10), 'b');
/// q.push(SimTime::from_micros(10), 'c'); // same instant: FIFO order
/// q.push(SimTime::from_micros(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<T> {
    /// Bucket index = `at.as_nanos() >> shift`.
    shift: u32,
    /// Ring of future buckets, len a power of two; slot = `bucket & mask`.
    buckets: Vec<Vec<Event<T>>>,
    mask: u64,
    /// Absolute index of the bucket currently being drained. Every event
    /// in the ring belongs to a bucket in `(cur, cur + ring_len)`.
    cur: u64,
    /// The active bucket's events, sorted *descending* by `(at, seq)` so
    /// the front is `last()` and consumption is `pop()` — no placeholder
    /// writes, no cursor.
    cur_vec: Vec<Event<T>>,
    /// Events pushed for bucket ≤ `cur` after the bucket was opened
    /// (same-time cascades, or past-time pushes through the public API).
    late: BinaryHeap<HeapEntry<T>>,
    /// Events beyond the ring horizon (`bucket ≥ cur + ring_len`); they
    /// migrate into the ring as `cur` advances.
    overflow: BinaryHeap<HeapEntry<T>>,
    /// Events currently stored in ring buckets.
    ring_count: usize,
    len: usize,
    next_seq: u64,
    /// Lifetime count of popped events (survives [`EventQueue::clear`]),
    /// the numerator for events/sec throughput reporting.
    popped: u64,
    /// With `--features audit`: timestamp of the last popped event, for
    /// monotonicity auditing of the queue ordering itself.
    #[cfg(feature = "audit")]
    last_popped: Option<SimTime>,
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("next_seq", &self.next_seq)
            .field("cur_bucket", &self.cur)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the default geometry (16.4 µs buckets,
    /// 67 ms ring horizon).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_SHIFT, DEFAULT_RING)
    }

    /// Creates an empty queue; `capacity` is advisory (the ring geometry
    /// is fixed, bucket vectors grow on demand and keep their capacity).
    pub fn with_capacity(_capacity: usize) -> Self {
        Self::new()
    }

    /// Creates a queue with `1 << shift` ns buckets on a ring of
    /// `ring_len` buckets. Exposed so tests can force bucket rollover and
    /// overflow migration with tiny geometries.
    ///
    /// # Panics
    ///
    /// Panics if `ring_len` is not a power of two or `shift` ≥ 64.
    pub fn with_geometry(shift: u32, ring_len: usize) -> Self {
        assert!(
            ring_len.is_power_of_two(),
            "ring_len must be a power of two"
        );
        assert!(shift < 64, "shift must leave time bits");
        EventQueue {
            shift,
            buckets: (0..ring_len).map(|_| Vec::new()).collect(),
            mask: ring_len as u64 - 1,
            cur: 0,
            cur_vec: Vec::new(),
            late: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            ring_count: 0,
            len: 0,
            next_seq: 0,
            popped: 0,
            #[cfg(feature = "audit")]
            last_popped: None,
        }
    }

    #[inline]
    fn bucket_of(&self, at: SimTime) -> u64 {
        at.as_nanos() >> self.shift
    }

    #[inline]
    fn ring_len(&self) -> u64 {
        self.mask + 1
    }

    /// Schedules `payload` to fire at `at`. Returns the event's sequence
    /// number (useful for cancellation bookkeeping by the caller).
    pub fn push(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        #[cfg(feature = "audit")]
        {
            // A past-time push (tolerated by the API, never issued by the
            // engine) legitimately makes `at` the earliest poppable time,
            // so the monotonicity watermark rolls back to it.
            if self.last_popped.is_some_and(|p| at < p) {
                self.last_popped = Some(at);
            }
        }
        let ev = Event { at, seq, payload };
        let b = self.bucket_of(at);
        if b == self.cur {
            // Current-bucket cascade — the common case for flash
            // completions that land within one bucket width of `now`.
            // The active bucket is sorted descending, so a binary-searched
            // insert keeps it ordered without paying heap percolation on
            // both the push and the pop.
            let key = (at, seq);
            let idx = self.cur_vec.partition_point(|e| (e.at, e.seq) > key);
            self.cur_vec.insert(idx, ev);
        } else if b < self.cur {
            // Past-time push through the public API (the engine never
            // does this): keep it out of the sorted bucket via a heap.
            self.late.push(HeapEntry(ev));
        } else if b < self.cur + self.ring_len() {
            self.buckets[(b & self.mask) as usize].push(ev);
            self.ring_count += 1;
        } else {
            self.overflow.push(HeapEntry(ev));
        }
        seq
    }

    /// Advances `cur` until the active bucket (`cur_vec`/`late`) holds the
    /// queue's earliest event. Returns `false` when the queue is empty.
    ///
    /// Invariant on return (when `true`): every event in `cur_vec` and
    /// `late` precedes every event still in ring buckets, and ring events
    /// precede overflow events.
    fn ensure_front(&mut self) -> bool {
        loop {
            if !self.cur_vec.is_empty() || !self.late.is_empty() {
                return true;
            }
            if self.ring_count == 0 && self.overflow.is_empty() {
                return false;
            }
            if self.ring_count == 0 {
                // Ring empty: jump straight to the bucket before the
                // overflow minimum instead of scanning empty slots.
                let min_at = self
                    .overflow
                    .peek()
                    .map(|e| e.0.at)
                    .expect("overflow checked non-empty");
                let target = self.bucket_of(min_at);
                self.cur = self.cur.max(target.saturating_sub(1));
            }
            self.cur += 1;
            // Migrate overflow events that fell inside the horizon. They
            // are always ≥ cur (overflow held buckets ≥ old horizon), so
            // they land in ring slots — possibly the one drained next.
            let horizon = self.cur + self.ring_len();
            while let Some(peek) = self.overflow.peek() {
                if self.bucket_of(peek.0.at) >= horizon {
                    break;
                }
                let ev = self.overflow.pop().expect("peek observed an entry").0;
                let b = self.bucket_of(ev.at);
                debug_assert!(b >= self.cur, "overflow event migrated into the past");
                self.buckets[(b & self.mask) as usize].push(ev);
                self.ring_count += 1;
            }
            let slot = (self.cur & self.mask) as usize;
            if !self.buckets[slot].is_empty() {
                // Swap the slot's vector in as the active bucket; the
                // drained vector (with its capacity) becomes the slot's
                // storage for a future lap, so steady state allocates
                // nothing.
                std::mem::swap(&mut self.cur_vec, &mut self.buckets[slot]);
                self.ring_count -= self.cur_vec.len();
                self.cur_vec
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
                return true;
            }
        }
    }

    /// `(at, seq)` of the earliest pending event, assuming [`Self::ensure_front`]
    /// returned `true`.
    #[inline]
    fn front_key(&self) -> (SimTime, u64) {
        let sorted = self.cur_vec.last().map(|e| (e.at, e.seq));
        let late = self.late.peek().map(|e| (e.0.at, e.0.seq));
        match (sorted, late) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => unreachable!("front_key called on empty active bucket"),
        }
    }

    /// Pops the front event, assuming [`Self::ensure_front`] returned `true`.
    fn pop_front(&mut self) -> Event<T> {
        let take_late = match (self.cur_vec.last(), self.late.peek()) {
            (Some(s), Some(l)) => (l.0.at, l.0.seq) < (s.at, s.seq),
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => unreachable!("pop_front called on empty active bucket"),
        };
        let ev = if take_late {
            self.late.pop().expect("late peeked non-empty").0
        } else {
            self.cur_vec.pop().expect("cur_vec checked non-empty")
        };
        self.len -= 1;
        self.popped += 1;
        #[cfg(feature = "audit")]
        {
            if let Some(prev) = self.last_popped {
                debug_assert!(
                    ev.at >= prev,
                    "event queue popped {} after {prev}: calendar ordering broken",
                    ev.at
                );
            }
            self.last_popped = Some(ev.at);
        }
        ev
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<Event<T>> {
        if !self.ensure_front() {
            return None;
        }
        Some(self.pop_front())
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Read-only, so it cannot rotate the ring: when the active bucket is
    /// exhausted this scans ahead for the next occupied slot. Hot paths
    /// use [`EventQueue::pop_before`], which pays a single comparison.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = self.cur_vec.last().map(|e| e.at);
        if let Some(l) = self.late.peek() {
            best = Some(best.map_or(l.0.at, |b| b.min(l.0.at)));
        }
        if best.is_some() {
            return best;
        }
        if self.ring_count > 0 {
            for off in 1..=self.ring_len() {
                let slot = &self.buckets[((self.cur + off) & self.mask) as usize];
                if let Some(min) = slot.iter().map(|e| e.at).min() {
                    return Some(min);
                }
            }
        }
        self.overflow.peek().map(|e| e.0.at)
    }

    /// Removes and returns the earliest event only if it fires at or
    /// before `deadline`: the engine loop's fast path, one key comparison
    /// after the active bucket is positioned (no peek-then-pop double
    /// traversal).
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event<T>> {
        if !self.ensure_front() {
            return None;
        }
        if self.front_key().0 > deadline {
            return None;
        }
        Some(self.pop_front())
    }

    /// Like [`EventQueue::pop_before`] but strict: only events firing
    /// *before* `deadline`. Used by the engine loop to interleave newly
    /// scheduled events with an already-drained batch.
    pub fn pop_strictly_before(&mut self, deadline: SimTime) -> Option<Event<T>> {
        if !self.ensure_front() {
            return None;
        }
        if self.front_key().0 >= deadline {
            return None;
        }
        Some(self.pop_front())
    }

    /// Drains every event firing at or before `deadline` into `out`, in
    /// `(at, seq)` order. When the active bucket lies entirely inside the
    /// deadline and no late pushes are pending, the whole bucket moves in
    /// one `memcpy`-class append instead of event-by-event pops.
    pub fn drain_before(&mut self, deadline: SimTime, out: &mut Vec<Event<T>>) {
        #[cfg(feature = "audit")]
        let drained_from = out.len();
        while self.ensure_front() {
            if self.late.is_empty() {
                // `cur_vec` is sorted descending, so `first()` is its
                // latest event: when that fits the deadline the whole
                // bucket moves in one reversed append.
                if let Some(max) = self.cur_vec.first() {
                    if max.at <= deadline {
                        let n = self.cur_vec.len();
                        self.len -= n;
                        self.popped += n as u64;
                        out.extend(self.cur_vec.drain(..).rev());
                        continue;
                    }
                }
            }
            if self.front_key().0 > deadline {
                break;
            }
            out.push(self.pop_front());
        }
        #[cfg(feature = "audit")]
        {
            // The caller dispatches the drained batch in order and may
            // interleave fresh pops before later batch entries, so the
            // monotonicity watermark rolls back to the batch's *first*
            // event: nothing can legitimately pop earlier than that
            // (handlers only push at or after the entry being dispatched,
            // and everything left in the queue fires past `deadline`).
            if let Some(first) = out.get(drained_from) {
                self.last_popped = Some(first.at);
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime count of events popped from this queue (not reset by
    /// [`EventQueue::clear`]): the sim-events/sec numerator for
    /// throughput reporting.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events (and, under the `audit` feature, the
    /// popped-time watermark — a cleared queue may be reused for a new run).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.cur_vec.clear();
        self.late.clear();
        self.overflow.clear();
        self.ring_count = 0;
        self.len = 0;
        #[cfg(feature = "audit")]
        {
            self.last_popped = None;
        }
    }
}

/// The reference binary-heap event queue: identical `(at, seq)` semantics
/// to [`EventQueue`], kept for differential testing and as the simplest
/// correct implementation.
pub struct BinaryHeapQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_seq: u64,
    popped: u64,
}

impl<T> std::fmt::Debug for BinaryHeapQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinaryHeapQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<T> Default for BinaryHeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BinaryHeapQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `payload` to fire at `at`; returns its sequence number.
    pub fn push(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { at, seq, payload }));
        seq
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let ev = self.heap.pop().map(|e| e.0);
        if ev.is_some() {
            self.popped += 1;
        }
        ev
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Lifetime count of popped events.
    pub fn popped(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SmallRng};

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        let got: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let want: Vec<i32> = (0..100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), "early");
        q.push(SimTime::from_micros(100), "late");
        assert_eq!(
            q.pop_before(SimTime::from_micros(50)).map(|e| e.payload),
            Some("early")
        );
        assert!(q.pop_before(SimTime::from_micros(50)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_strictly_before_excludes_the_deadline_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), "at");
        assert!(q.pop_strictly_before(SimTime::from_micros(10)).is_none());
        assert_eq!(
            q.pop_strictly_before(SimTime::from_micros(11))
                .map(|e| e.payload),
            Some("at")
        );
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_ring_and_overflow() {
        // Tiny geometry: 1 µs buckets, 4-slot ring → 4 µs horizon.
        let mut q = EventQueue::with_geometry(10, 4);
        q.push(SimTime::from_millis(5), "overflow");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        q.push(SimTime::from_micros(2), "ring");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|e| e.payload), None);
    }

    #[test]
    fn popped_counts_lifetime_pops_across_clear() {
        let mut q = EventQueue::new();
        assert_eq!(q.popped(), 0);
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.pop();
        assert_eq!(q.popped(), 1);
        q.clear();
        assert_eq!(q.popped(), 1, "clear drops pending, not history");
        q.push(SimTime::ZERO, 3);
        q.pop();
        q.pop(); // Empty pop does not count.
        assert_eq!(q.popped(), 2);
    }

    #[test]
    fn drain_before_pops_batch_in_order() {
        let mut q = EventQueue::new();
        for (t, p) in [(30, 'c'), (10, 'a'), (20, 'b'), (90, 'z')] {
            q.push(SimTime::from_micros(t), p);
        }
        let mut out = Vec::new();
        q.drain_before(SimTime::from_micros(50), &mut out);
        let got: Vec<char> = out.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec!['a', 'b', 'c']);
        assert_eq!(q.len(), 1);
        assert_eq!(q.popped(), 3);
        out.clear();
        q.drain_before(SimTime::from_micros(50), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn past_time_pushes_still_order_correctly() {
        // The engine never pushes into the past, but the API tolerates it.
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "future");
        assert_eq!(q.pop().map(|e| e.payload), Some("future"));
        q.push(SimTime::from_micros(1), "past");
        q.push(SimTime::from_millis(20), "later");
        assert_eq!(q.pop().map(|e| e.payload), Some("past"));
        assert_eq!(q.pop().map(|e| e.payload), Some("later"));
    }

    /// Generates an engine-like schedule: bursts of same-time events,
    /// short cascades, occasional far-future jumps. Interleaves pushes
    /// and pops so the ring rotates and overflow migrates mid-stream.
    #[allow(clippy::type_complexity)]
    fn adversarial_case(
        rng: &mut SmallRng,
        shift: u32,
        ring: usize,
    ) -> (Vec<(SimTime, u32)>, Vec<(SimTime, u64, u32)>) {
        let mut cal = EventQueue::with_geometry(shift, ring);
        let mut heap = BinaryHeapQueue::new();
        let mut pushed = Vec::new();
        let mut popped = Vec::new();
        let mut now = 0u64;
        let mut payload = 0u32;
        let n_ops = rng.gen_range(10usize..400);
        for _ in 0..n_ops {
            match rng.gen_range(0u64..10) {
                // Burst: several events at one instant (FIFO tie-break).
                0..=2 => {
                    let t = now + rng.gen_range(0u64..(1 << (shift + 2)));
                    for _ in 0..rng.gen_range(1u64..6) {
                        let at = SimTime::from_nanos(t);
                        cal.push(at, payload);
                        heap.push(at, payload);
                        pushed.push((at, payload));
                        payload += 1;
                    }
                }
                // Clustered near-future push (bucket-local).
                3..=5 => {
                    let at = SimTime::from_nanos(now + rng.gen_range(0u64..(1 << shift)));
                    cal.push(at, payload);
                    heap.push(at, payload);
                    pushed.push((at, payload));
                    payload += 1;
                }
                // Far-future push beyond the ring horizon (overflow).
                6 => {
                    let horizon = (ring as u64) << shift;
                    let at = SimTime::from_nanos(now + horizon + rng.gen_range(0u64..4 * horizon));
                    cal.push(at, payload);
                    heap.push(at, payload);
                    pushed.push((at, payload));
                    payload += 1;
                }
                // Pop a few: time advances to what pops (monotone driver),
                // which rotates the ring across bucket boundaries.
                _ => {
                    for _ in 0..rng.gen_range(1u64..4) {
                        let a = cal.pop();
                        let b = heap.pop();
                        match (a, b) {
                            (None, None) => break,
                            (Some(x), Some(y)) => {
                                assert_eq!((x.at, x.seq), (y.at, y.seq));
                                assert_eq!(x.payload, y.payload);
                                now = now.max(x.at.as_nanos());
                                popped.push((x.at, x.seq, x.payload));
                            }
                            (a, b) => panic!(
                                "queues disagree on emptiness: cal={:?} heap={:?}",
                                a.map(|e| e.at),
                                b.map(|e| e.at)
                            ),
                        }
                    }
                }
            }
        }
        // Drain the rest.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            match (a, b) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!((x.at, x.seq), (y.at, y.seq));
                    assert_eq!(x.payload, y.payload);
                    popped.push((x.at, x.seq, x.payload));
                }
                _ => panic!("queues disagree on length"),
            }
        }
        assert_eq!(cal.popped(), heap.popped());
        (pushed, popped)
    }

    /// Differential property: the calendar queue pops the exact
    /// `(at, seq, payload)` stream of the reference binary heap over
    /// randomized clustered/adversarial schedules, across bucket
    /// rollover and far-future overflow, for several ring geometries.
    #[test]
    fn prop_calendar_matches_heap() {
        let mut rng = SmallRng::seed_from_u64(0xca1e_0dae);
        // Tiny rings force constant rollover + overflow migration; the
        // default geometry exercises the production fast paths.
        for (shift, ring) in [(4, 2), (6, 4), (10, 16), (DEFAULT_SHIFT, DEFAULT_RING)] {
            for _case in 0..128 {
                let (pushed, popped) = adversarial_case(&mut rng, shift, ring);
                assert_eq!(pushed.len(), popped.len());
                // Sorted by time, FIFO among equal stamps.
                for w in popped.windows(2) {
                    assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
                }
            }
        }
    }

    /// Property: pops come out sorted by time, FIFO among equal stamps.
    #[test]
    fn prop_pops_are_sorted_and_stable() {
        let mut rng = SmallRng::seed_from_u64(0x9_0e0e);
        for _case in 0..256 {
            let n = rng.gen_range(1usize..200);
            let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1_000)).collect();
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(*t), i);
            }
            let mut popped = Vec::new();
            while let Some(e) = q.pop() {
                popped.push((e.at, e.payload));
            }
            // Sorted by time.
            for w in popped.windows(2) {
                assert!(w[0].0 <= w[1].0);
                // FIFO among equal timestamps: insertion index increases.
                if w[0].0 == w[1].0 {
                    assert!(w[0].1 < w[1].1);
                }
            }
            assert_eq!(popped.len(), times.len());
        }
    }

    /// Property: drain_before equals repeated pop_before on the
    /// reference queue, including deadlines inside a bucket.
    #[test]
    fn prop_drain_matches_reference_pops() {
        let mut rng = SmallRng::seed_from_u64(0xdead_beef);
        for _case in 0..128 {
            let mut cal = EventQueue::with_geometry(8, 8);
            let mut heap = BinaryHeapQueue::new();
            let n = rng.gen_range(1usize..150);
            for i in 0..n {
                let at = SimTime::from_nanos(rng.gen_range(0u64..50_000));
                cal.push(at, i);
                heap.push(at, i);
            }
            let mut deadline = 0u64;
            while !heap.is_empty() {
                deadline += rng.gen_range(0u64..20_000);
                let d = SimTime::from_nanos(deadline);
                let mut batch = Vec::new();
                cal.drain_before(d, &mut batch);
                let mut want = Vec::new();
                while let Some(t) = heap.peek_time() {
                    if t > d {
                        break;
                    }
                    want.push(heap.pop().expect("peeked"));
                }
                assert_eq!(batch.len(), want.len(), "deadline {deadline}");
                for (a, b) in batch.iter().zip(&want) {
                    assert_eq!((a.at, a.seq, a.payload), (b.at, b.seq, b.payload));
                }
            }
            assert!(cal.is_empty());
        }
    }
}
