//! Small numeric summaries used throughout the experiment harness.

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use fleetio_des::summary::Running;
///
/// let mut r = Running::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Exact percentile of a slice using linear interpolation between ranks.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `pct` is outside `[0, 100]` or any value is NaN.
pub fn percentile(values: &[f64], pct: f64) -> Option<f64> {
    assert!(
        (0.0..=100.0).contains(&pct),
        "percentile out of range: {pct}"
    );
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Geometric mean of strictly positive values; `None` when empty or any
/// value is non-positive.
pub fn geo_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SmallRng};

    #[test]
    fn running_mean_and_std() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(9.0));
        assert_eq!(r.count(), 8);
    }

    #[test]
    fn empty_running_is_safe() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.std_dev(), 0.0);
        assert_eq!(r.count(), 0);
        // No observations: min/max must be None, never a sentinel value.
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
    }

    #[test]
    fn single_observation_min_max_coincide() {
        let mut r = Running::new();
        r.push(-3.5);
        assert_eq!(r.min(), Some(-3.5));
        assert_eq!(r.max(), Some(-3.5));
        assert_eq!(r.mean(), -3.5);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 50.0), Some(25.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[2.0, 8.0]), Some(4.0));
        assert_eq!(geo_mean(&[]), None);
        assert_eq!(geo_mean(&[1.0, 0.0]), None);
    }

    /// Property: Welford's online mean agrees with the naive sum.
    #[test]
    fn prop_running_mean_matches_naive() {
        let mut rng = SmallRng::seed_from_u64(0x50_44);
        for _case in 0..256 {
            let n = rng.gen_range(1usize..100);
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6f64..1e6)).collect();
            let mut r = Running::new();
            for x in &xs {
                r.push(*x);
            }
            let naive = xs.iter().sum::<f64>() / xs.len() as f64;
            assert!((r.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        }
    }

    /// Property: any percentile of a sample lies within its min/max.
    #[test]
    fn prop_percentile_within_range() {
        let mut rng = SmallRng::seed_from_u64(0x9c_c7);
        for _case in 0..256 {
            let n = rng.gen_range(1usize..50);
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e3f64..1e3)).collect();
            let p = rng.gen_range(0.0f64..100.0);
            let v = percentile(&xs, p).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}
