//! Runtime invariant auditing (the `audit` cargo feature).
//!
//! [`SimAuditor`] is the runtime half of the fleetio-audit layer: while the
//! static pass (`cargo run -p fleetio-audit -- check`) rejects source
//! patterns that *could* break determinism, the auditor watches a live
//! simulation and `debug_assert!`s properties that only show up at run
//! time — event-time monotonicity here, plus free-block accounting, gSB
//! conservation and token-bucket bounds in the `flash`/`vssd` hooks that
//! build on this type.
//!
//! The auditor is compiled in only with `--features audit` and its checks
//! are `debug_assert!`s, so release binaries and default builds pay
//! nothing. Tests that enable the feature (the determinism regression
//! suite) run every event through these checks.

use crate::time::SimTime;

/// Watches a stream of simulation events for ordering violations.
///
/// # Example
///
/// ```
/// use fleetio_des::audit::SimAuditor;
/// use fleetio_des::SimTime;
///
/// let mut a = SimAuditor::new();
/// a.observe_event(SimTime::from_micros(1));
/// a.observe_event(SimTime::from_micros(1)); // equal stamps are fine
/// a.observe_event(SimTime::from_micros(2));
/// assert_eq!(a.events_observed(), 3);
/// ```
#[derive(Debug, Default, Clone)]
pub struct SimAuditor {
    last_event: Option<SimTime>,
    events: u64,
    sweeps: u64,
}

impl SimAuditor {
    /// Creates an auditor that has seen nothing.
    pub fn new() -> Self {
        SimAuditor::default()
    }

    /// Records one dispatched event and asserts the simulated clock never
    /// runs backwards (the discrete-event queue must release events in
    /// non-decreasing time order).
    pub fn observe_event(&mut self, at: SimTime) {
        if let Some(prev) = self.last_event {
            debug_assert!(
                at >= prev,
                "event-time monotonicity violated: {at} fired after {prev}"
            );
        }
        self.last_event = Some(at);
        self.events += 1;
    }

    /// Number of events observed so far.
    pub fn events_observed(&self) -> u64 {
        self.events
    }

    /// Records one structural-invariant sweep (callers count their own
    /// sweeps here so tests can assert auditing actually happened).
    pub fn note_sweep(&mut self) {
        self.sweeps += 1;
    }

    /// Number of structural sweeps recorded.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Whether a sweep is due: every `interval` events, so the O(blocks)
    /// structural checks do not dominate event processing.
    pub fn sweep_due(&self, interval: u64) -> bool {
        interval > 0 && self.events.is_multiple_of(interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_events_and_sweeps() {
        let mut a = SimAuditor::new();
        a.observe_event(SimTime::from_micros(5));
        a.observe_event(SimTime::from_micros(5));
        a.note_sweep();
        assert_eq!(a.events_observed(), 2);
        assert_eq!(a.sweeps(), 1);
    }

    #[test]
    #[should_panic(expected = "event-time monotonicity violated")]
    #[cfg(debug_assertions)]
    fn backwards_event_panics() {
        let mut a = SimAuditor::new();
        a.observe_event(SimTime::from_micros(10));
        a.observe_event(SimTime::from_micros(9));
    }

    #[test]
    fn sweep_due_every_interval() {
        let mut a = SimAuditor::new();
        for i in 1..=8u64 {
            a.observe_event(SimTime::from_micros(i));
        }
        assert!(a.sweep_due(4));
        a.observe_event(SimTime::from_micros(9));
        assert!(!a.sweep_due(4));
        assert!(!a.sweep_due(0));
    }
}
