//! Per-decision-window I/O statistics.
//!
//! FleetIO's RL agents observe the storage state over fixed time windows
//! (2 seconds by default, §3.3.1 of the paper). [`WindowStats`] accumulates
//! the raw counters for one window; [`WindowSummary`] is the frozen snapshot
//! the state extractor turns into RL features.

use crate::hist::LatencyHistogram;
use crate::time::{SimDuration, SimTime};

/// Running counters for the current observation window.
#[derive(Debug, Clone, Default)]
pub struct WindowStats {
    read_bytes: u64,
    write_bytes: u64,
    read_ops: u64,
    write_ops: u64,
    slo_violations: u64,
    queue_delay_sum: SimDuration,
    latency: LatencyHistogram,
    gc_events: u64,
    gc_busy: SimDuration,
}

/// A frozen summary of one completed window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// Window start time.
    pub start: SimTime,
    /// Window length.
    pub len: SimDuration,
    /// Average read+write bandwidth over the window, bytes/s.
    pub avg_bandwidth: f64,
    /// Average I/O operations per second.
    pub avg_iops: f64,
    /// Average request latency (completion − arrival), or zero if idle.
    pub avg_latency: SimDuration,
    /// P99 request latency, or zero if idle.
    pub p99_latency: SimDuration,
    /// Fraction of requests violating the SLO, `[0, 1]`.
    pub slo_violation_rate: f64,
    /// Mean queueing delay per request.
    pub avg_queue_delay: SimDuration,
    /// Read fraction of all operations, `[0, 1]` (1 = all reads).
    pub read_ratio: f64,
    /// Number of GC events that started in the window.
    pub gc_events: u64,
    /// Fraction of the window spent with GC active on any owned channel.
    pub gc_busy_frac: f64,
    /// Total bytes moved (reads + writes).
    pub total_bytes: u64,
    /// Total operations completed.
    pub total_ops: u64,
}

impl WindowSummary {
    /// An all-zero summary for an idle window.
    pub fn idle(start: SimTime, len: SimDuration) -> Self {
        WindowSummary {
            start,
            len,
            avg_bandwidth: 0.0,
            avg_iops: 0.0,
            avg_latency: SimDuration::ZERO,
            p99_latency: SimDuration::ZERO,
            slo_violation_rate: 0.0,
            avg_queue_delay: SimDuration::ZERO,
            read_ratio: 0.0,
            gc_events: 0,
            gc_busy_frac: 0.0,
            total_bytes: 0,
            total_ops: 0,
        }
    }
}

impl WindowStats {
    /// Creates an empty window accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    ///
    /// `queue_delay` is the time the request waited before service began;
    /// `latency` is its full arrival-to-completion time.
    pub fn record_request(
        &mut self,
        is_read: bool,
        bytes: u64,
        latency: SimDuration,
        queue_delay: SimDuration,
        violated_slo: bool,
    ) {
        if is_read {
            self.read_bytes += bytes;
            self.read_ops += 1;
        } else {
            self.write_bytes += bytes;
            self.write_ops += 1;
        }
        if violated_slo {
            self.slo_violations += 1;
        }
        self.queue_delay_sum += queue_delay;
        self.latency.record(latency);
    }

    /// Records a garbage-collection event that occupied `busy` of the window.
    pub fn record_gc(&mut self, busy: SimDuration) {
        self.gc_events += 1;
        self.gc_busy += busy;
    }

    /// Total operations recorded so far in this window.
    pub fn ops(&self) -> u64 {
        self.read_ops + self.write_ops
    }

    /// Total bytes recorded so far in this window.
    pub fn bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Access to the in-window latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Freezes the window into a summary and resets the accumulator for the
    /// next window.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn finish(&mut self, start: SimTime, len: SimDuration) -> WindowSummary {
        assert!(!len.is_zero(), "window length must be positive");
        let secs = len.as_secs_f64();
        let ops = self.ops();
        let summary = WindowSummary {
            start,
            len,
            avg_bandwidth: self.bytes() as f64 / secs,
            avg_iops: ops as f64 / secs,
            avg_latency: self.latency.mean().unwrap_or(SimDuration::ZERO),
            p99_latency: self.latency.percentile(99.0).unwrap_or(SimDuration::ZERO),
            slo_violation_rate: if ops == 0 {
                0.0
            } else {
                self.slo_violations as f64 / ops as f64
            },
            avg_queue_delay: if ops == 0 {
                SimDuration::ZERO
            } else {
                self.queue_delay_sum / ops
            },
            read_ratio: if ops == 0 {
                0.0
            } else {
                self.read_ops as f64 / ops as f64
            },
            gc_events: self.gc_events,
            gc_busy_frac: (self.gc_busy.as_secs_f64() / secs).min(1.0),
            total_bytes: self.bytes(),
            total_ops: ops,
        };
        *self = WindowStats::new();
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn idle_window_is_all_zero() {
        let mut w = WindowStats::new();
        let s = w.finish(SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(
            s,
            WindowSummary::idle(SimTime::ZERO, SimDuration::from_secs(2))
        );
    }

    #[test]
    fn bandwidth_and_iops_are_rates() {
        let mut w = WindowStats::new();
        w.record_request(true, 1_000_000, us(100), us(10), false);
        w.record_request(false, 3_000_000, us(200), us(20), false);
        let s = w.finish(SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(s.avg_bandwidth, 2_000_000.0); // 4 MB over 2 s
        assert_eq!(s.avg_iops, 1.0);
        assert_eq!(s.read_ratio, 0.5);
        assert_eq!(s.avg_queue_delay, us(15));
        assert_eq!(s.total_bytes, 4_000_000);
        assert_eq!(s.total_ops, 2);
    }

    #[test]
    fn slo_violation_rate_counts_flagged_requests() {
        let mut w = WindowStats::new();
        for i in 0..10 {
            w.record_request(true, 4096, us(50), SimDuration::ZERO, i < 3);
        }
        let s = w.finish(SimTime::ZERO, SimDuration::from_secs(1));
        assert!((s.slo_violation_rate - 0.3).abs() < 1e-12);
    }

    #[test]
    fn gc_busy_fraction_clamps_to_one() {
        let mut w = WindowStats::new();
        w.record_gc(SimDuration::from_secs(5));
        let s = w.finish(SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(s.gc_events, 1);
        assert_eq!(s.gc_busy_frac, 1.0);
    }

    #[test]
    fn finish_resets_accumulator() {
        let mut w = WindowStats::new();
        w.record_request(true, 4096, us(10), SimDuration::ZERO, false);
        let _ = w.finish(SimTime::ZERO, SimDuration::from_secs(1));
        let s2 = w.finish(SimTime::from_secs(1), SimDuration::from_secs(1));
        assert_eq!(s2.total_ops, 0);
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_length_window_panics() {
        let mut w = WindowStats::new();
        let _ = w.finish(SimTime::ZERO, SimDuration::ZERO);
    }
}
