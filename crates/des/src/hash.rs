//! Dependency-free hashing primitives shared across the workspace.
//!
//! Two stable, seed-free functions used wherever the workspace needs a
//! deterministic digest of bytes:
//!
//! * [`crc32`] — CRC-32/IEEE, zlib's parameterization. Integrity check
//!   for every on-disk frame (`FIOM` checkpoint containers, run-store
//!   segment records).
//! * [`fnv1a64`] / [`Fnv64`] — FNV-1a 64-bit. The golden-fingerprint
//!   hash for determinism tests and the run store's streaming event
//!   fingerprint (cheap, incremental, order-sensitive).
//!
//! Both are tiny and fully specified, so fingerprints recorded in golden
//! tests or run manifests stay comparable across machines and versions.

/// CRC-32/IEEE (poly `0xEDB88320`, reflected, init/xorout `0xFFFFFFFF`) —
/// the same parameterization as zlib's `crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// One-shot FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Incremental FNV-1a 64-bit hasher. Feeding the same byte sequence in
/// any chunking produces the same digest as [`fnv1a64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The current digest. The hasher remains usable (streaming
    /// fingerprints snapshot mid-stream at checkpoint anchors).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Fnv64::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), fnv1a64(data));
        // Snapshotting mid-stream does not disturb the stream.
        let mut h2 = Fnv64::new();
        h2.update(&data[..10]);
        let _mid = h2.finish();
        h2.update(&data[10..]);
        assert_eq!(h2.finish(), fnv1a64(data));
    }
}
