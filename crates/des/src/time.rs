//! Simulation time types.
//!
//! Simulation time is a nanosecond counter starting at zero. Two newtypes
//! keep instants and spans apart at the type level: [`SimTime`] (a point on
//! the simulated clock) and [`SimDuration`] (a span between two points).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, measured in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use fleetio_des::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(2);
/// assert_eq!(t.as_micros(), 2_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// # Example
///
/// ```
/// use fleetio_des::SimDuration;
///
/// let d = SimDuration::from_micros(500) * 4;
/// assert_eq!(d.as_millis_f64(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds an instant from microseconds since simulation start,
    /// saturating at [`SimTime::MAX`].
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros.saturating_mul(1_000))
    }

    /// Builds an instant from milliseconds since simulation start,
    /// saturating at [`SimTime::MAX`].
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis.saturating_mul(1_000_000))
    }

    /// Builds an instant from whole seconds since simulation start,
    /// saturating at [`SimTime::MAX`].
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(1_000_000_000))
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a span from microseconds, saturating at the maximum span.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros.saturating_mul(1_000))
    }

    /// Builds a span from milliseconds, saturating at the maximum span.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis.saturating_mul(1_000_000))
    }

    /// Builds a span from whole seconds, saturating at the maximum span.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000_000))
    }

    /// Builds a span from fractional seconds, truncating to whole
    /// nanoseconds.
    ///
    /// Negative and non-finite inputs clamp to zero; values beyond the
    /// representable range saturate at the maximum span (`u64::MAX` ns,
    /// about 584 years of simulated time).
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        // `as u64` saturates on overflow, so huge inputs pin to MAX.
        SimDuration((secs * 1e9) as u64)
    }

    /// Like [`SimDuration::from_secs_f64`] but rounding to the *nearest*
    /// nanosecond — for derived rates (e.g. per-KiB bus cost) where the
    /// half-ulp bias of truncation would compound over many operations.
    pub fn from_secs_f64_rounded(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl From<SimDuration> for f64 {
    /// Seconds as a float; convenient for rate computations.
    fn from(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        let d = t - SimTime::from_micros(10);
        assert_eq!(d.as_micros(), 5);
        assert_eq!((SimDuration::from_micros(4) * 3).as_micros(), 12);
        assert_eq!((SimDuration::from_micros(12) / 4).as_micros(), 3);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_micros(5);
        let late = SimTime::from_micros(9);
        assert_eq!(late.saturating_since(early).as_micros(), 4);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis_f64(), 1500.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn max_min_order() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn constructors_saturate_at_max_span() {
        assert_eq!(SimDuration::from_secs(u64::MAX).as_nanos(), u64::MAX);
        assert_eq!(SimDuration::from_millis(u64::MAX).as_nanos(), u64::MAX);
        assert_eq!(SimDuration::from_micros(u64::MAX).as_nanos(), u64::MAX);
        assert_eq!(SimTime::from_secs(u64::MAX).as_nanos(), u64::MAX);
        assert_eq!(SimDuration::from_secs_f64(1e30).as_nanos(), u64::MAX);
        assert_eq!(
            SimDuration::from_secs_f64_rounded(1e30).as_nanos(),
            u64::MAX
        );
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        // Saturated arithmetic stays pinned rather than wrapping.
        let max = SimTime::from_nanos(u64::MAX);
        assert_eq!(max + SimDuration::from_secs(1), max);
    }

    #[test]
    fn from_secs_f64_truncates_and_rounded_rounds() {
        // 1.5 ns: truncation and rounding must disagree by exactly 1 ns.
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64_rounded(1.5e-9).as_nanos(), 2);
        // Sub-nanosecond inputs truncate to zero.
        assert_eq!(SimDuration::from_secs_f64(0.4e-9), SimDuration::ZERO);
    }

    /// Property: the f64 seconds round-trip is exact up to f64 resolution —
    /// below 2^53 ns the round trip is lossless; above it the error stays
    /// within one ulp of the magnitude.
    #[test]
    fn prop_secs_f64_roundtrip_bounds_precision_loss() {
        let mut rng = crate::rng::SmallRng::seed_from_u64(0x7157_0c1e);
        for _case in 0..4096 {
            // Log-uniform over ns..days so every scale is exercised.
            let exp = crate::rng::Rng::gen_range(&mut rng, 0u32..17);
            let mantissa = crate::rng::Rng::gen_range(&mut rng, 1u64..1000);
            let ns = mantissa * 10u64.pow(exp).min(u64::MAX / 1000);
            let d = SimDuration::from_nanos(ns);
            let back = SimDuration::from_secs_f64(d.as_secs_f64());
            let err = back.as_nanos().abs_diff(ns);
            if ns < (1u64 << 53) {
                // f64 represents the integer exactly; truncation of
                // `x * 1e9 / 1e9` may still lose at most 1 ns.
                assert!(err <= 1, "{ns} ns round-tripped to {} ns", back.as_nanos());
            } else {
                let ulp = (ns as f64 / 2f64.powi(52)).ceil() as u64;
                assert!(
                    err <= ulp,
                    "{ns} ns round-tripped to {} ns (err {err} > ulp {ulp})",
                    back.as_nanos()
                );
            }
        }
    }
}
