//! Generation-checked slab storage for hot-path simulation state.
//!
//! The engine's per-event bookkeeping (in-flight requests, GC jobs,
//! time-sliced grants) used to live in `BTreeMap<u64, T>` keyed by a
//! monotonically growing id. Every event paid a pointer-chasing tree walk
//! plus a node allocation per insert. A [`Slab`] replaces that with a
//! dense `Vec` and an intrusive free list: insert and lookup are O(1)
//! array indexing, and slots recycle their allocation forever.
//!
//! Handles carry a **generation** alongside the slot index. A slot's
//! generation bumps on every removal, so a stale handle (one kept past
//! its entry's removal) can never silently alias a recycled slot —
//! access panics instead, which is exactly what a determinism-sensitive
//! simulator wants from a bookkeeping bug.
//!
//! Determinism: the free list is LIFO and entirely driven by the
//! insert/remove sequence, so same-seed runs assign identical handles.

/// A generation-checked reference to a slab slot, packed into a `u64`
/// (`generation << 32 | slot`) so it can ride inside event payloads
/// without widening them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Handle(u64);

impl Handle {
    /// The slot index this handle points at.
    #[inline]
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    /// The generation the slot must still be at.
    #[inline]
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The packed `u64` form (for embedding in wider tag words).
    #[inline]
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`Handle::to_bits`].
    #[inline]
    pub fn from_bits(bits: u64) -> Handle {
        Handle(bits)
    }
}

impl std::fmt::Display for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}g{}", self.slot(), self.generation())
    }
}

#[derive(Debug, Clone)]
enum Entry<T> {
    /// Next free slot index, or `u32::MAX` for the list tail.
    Free {
        next: u32,
    },
    Occupied {
        value: T,
    },
}

/// A dense slab with O(1) insert/lookup/remove and generation-checked
/// handles.
///
/// # Example
///
/// ```
/// use fleetio_des::slab::Slab;
///
/// let mut slab = Slab::new();
/// let h = slab.insert("payload");
/// assert_eq!(slab[h], "payload");
/// assert_eq!(slab.remove(h), "payload");
/// assert!(slab.get(h).is_none()); // stale handle no longer resolves
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Per-slot generation, bumped on removal.
    generations: Vec<u32>,
    /// Head of the free list (`u32::MAX` when empty).
    free_head: u32,
    len: usize,
}

const NIL: u32 = u32::MAX;

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            generations: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Creates an empty slab with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(capacity),
            generations: Vec::with_capacity(capacity),
            free_head: NIL,
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value`, reusing the most recently freed slot if any.
    pub fn insert(&mut self, value: T) -> Handle {
        self.len += 1;
        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            match self.entries[slot as usize] {
                Entry::Free { next } => self.free_head = next,
                Entry::Occupied { .. } => unreachable!("free list points at occupied slot"),
            }
            self.entries[slot as usize] = Entry::Occupied { value };
            slot
        } else {
            let slot = self.entries.len() as u32;
            assert!(slot != NIL, "slab exhausted u32 slot space");
            self.entries.push(Entry::Occupied { value });
            self.generations.push(0);
            slot
        };
        Handle(u64::from(self.generations[slot as usize]) << 32 | u64::from(slot))
    }

    #[inline]
    fn check(&self, handle: Handle) -> bool {
        let slot = handle.slot() as usize;
        slot < self.entries.len() && self.generations[slot] == handle.generation()
    }

    /// The entry behind `handle`, or `None` if it was removed (the slot's
    /// generation moved on).
    #[inline]
    pub fn get(&self, handle: Handle) -> Option<&T> {
        if !self.check(handle) {
            return None;
        }
        match &self.entries[handle.slot() as usize] {
            Entry::Occupied { value } => Some(value),
            Entry::Free { .. } => None,
        }
    }

    /// Mutable access to the entry behind `handle`.
    #[inline]
    pub fn get_mut(&mut self, handle: Handle) -> Option<&mut T> {
        if !self.check(handle) {
            return None;
        }
        match &mut self.entries[handle.slot() as usize] {
            Entry::Occupied { value } => Some(value),
            Entry::Free { .. } => None,
        }
    }

    /// Removes and returns the entry behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (its slot was already removed): a
    /// double-remove is a bookkeeping bug, not a recoverable condition.
    pub fn remove(&mut self, handle: Handle) -> T {
        assert!(
            self.check(handle),
            "stale slab handle {handle}: slot generation is {}",
            self.generations
                .get(handle.slot() as usize)
                .copied()
                .unwrap_or(0)
        );
        let slot = handle.slot() as usize;
        let prev = std::mem::replace(
            &mut self.entries[slot],
            Entry::Free {
                next: self.free_head,
            },
        );
        match prev {
            Entry::Occupied { value } => {
                self.generations[slot] = self.generations[slot].wrapping_add(1);
                self.free_head = handle.slot();
                self.len -= 1;
                value
            }
            Entry::Free { next } => {
                // Roll back: the slot was already free (cannot happen while
                // generations are checked, but keep the structure sound).
                self.entries[slot] = Entry::Free { next };
                panic!("slab slot {slot} removed twice");
            }
        }
    }

    /// Iterates live entries in slot order (deterministic: slot order is a
    /// pure function of the insert/remove history).
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(move |(slot, e)| match e {
                Entry::Occupied { value } => Some((
                    Handle(u64::from(self.generations[slot]) << 32 | slot as u64),
                    value,
                )),
                Entry::Free { .. } => None,
            })
    }

    /// Iterates live entries mutably in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Handle, &mut T)> {
        let generations = &self.generations;
        self.entries
            .iter_mut()
            .enumerate()
            .filter_map(move |(slot, e)| match e {
                Entry::Occupied { value } => Some((
                    Handle(u64::from(generations[slot]) << 32 | slot as u64),
                    value,
                )),
                Entry::Free { .. } => None,
            })
    }

    /// Iterates live values in slot order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }
}

impl<T> std::ops::Index<Handle> for Slab<T> {
    type Output = T;

    /// # Panics
    ///
    /// Panics on a stale handle.
    #[inline]
    fn index(&self, handle: Handle) -> &T {
        self.get(handle)
            .unwrap_or_else(|| panic!("stale slab handle {handle}"))
    }
}

impl<T> std::ops::IndexMut<Handle> for Slab<T> {
    /// # Panics
    ///
    /// Panics on a stale handle.
    #[inline]
    fn index_mut(&mut self, handle: Handle) -> &mut T {
        self.get_mut(handle)
            .unwrap_or_else(|| panic!("stale slab handle {handle}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab[a], 10);
        assert_eq!(slab[b], 20);
        assert_eq!(slab.remove(a), 10);
        assert_eq!(slab.len(), 1);
        assert!(slab.get(a).is_none());
    }

    #[test]
    fn slots_recycle_lifo_with_fresh_generations() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        slab.remove(a);
        slab.remove(b);
        // LIFO: b's slot comes back first.
        let c = slab.insert("c");
        assert_eq!(c.slot(), b.slot());
        assert_eq!(c.generation(), b.generation() + 1);
        // The stale handle still refuses to resolve.
        assert!(slab.get(b).is_none());
        assert_eq!(slab[c], "c");
    }

    #[test]
    #[should_panic(expected = "stale slab handle")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        slab.remove(a);
    }

    #[test]
    fn stale_handle_cannot_alias_recycled_slot() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2);
        assert_eq!(a.slot(), b.slot(), "test needs slot reuse");
        assert!(slab.get(a).is_none(), "stale handle resolved");
        assert_eq!(slab[b], 2);
    }

    #[test]
    fn bits_roundtrip_and_iteration_order() {
        let mut slab = Slab::new();
        let hs: Vec<Handle> = (0..5).map(|i| slab.insert(i)).collect();
        slab.remove(hs[2]);
        let live: Vec<i32> = slab.values().copied().collect();
        assert_eq!(live, vec![0, 1, 3, 4]);
        for h in [hs[0], hs[4]] {
            assert_eq!(Handle::from_bits(h.to_bits()), h);
        }
    }

    #[test]
    fn deterministic_handle_sequence() {
        let run = || {
            let mut slab = Slab::new();
            let mut log = Vec::new();
            let mut live = Vec::new();
            for i in 0..100u32 {
                let h = slab.insert(i);
                log.push(h);
                live.push(h);
                if i % 3 == 0 {
                    let h = live.remove(live.len() / 2);
                    slab.remove(h);
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
