//! Discrete-event simulation kernel for the FleetIO reproduction.
//!
//! This crate provides the small, deterministic foundation every simulated
//! component builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulation
//!   timestamps with saturating arithmetic,
//! * [`EventQueue`] — a deterministic time-ordered event queue (FIFO among
//!   simultaneous events),
//! * [`rng`] — reproducible seed derivation for experiments that fan out into
//!   many independent random streams,
//! * [`hist::LatencyHistogram`] — a log-bucketed histogram with percentile
//!   queries, used for P95/P99/P99.9 tail-latency reporting,
//! * [`window`] — per-decision-window counters (bandwidth, IOPS, SLO
//!   violations) matching the paper's 2-second RL state windows,
//! * [`summary`] — small numeric summaries (mean/std, exact percentiles),
//! * [`hash`] — stable CRC-32/FNV-1a digests for on-disk framing and
//!   determinism fingerprints.
//!
//! # Example
//!
//! ```
//! use fleetio_des::{EventQueue, SimTime, SimDuration};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_micros(5), "later");
//! q.push(SimTime::ZERO, "now");
//! assert_eq!(q.pop().map(|e| e.payload), Some("now"));
//! ```

#[cfg(feature = "audit")]
pub mod audit;
pub mod hash;
pub mod hist;
pub mod queue;
pub mod rng;
pub mod slab;
pub mod summary;
pub mod time;
pub mod window;

pub use hist::LatencyHistogram;
pub use queue::{BinaryHeapQueue, Event, EventQueue};
pub use slab::{Handle, Slab};
pub use time::{SimDuration, SimTime};
pub use window::WindowStats;
