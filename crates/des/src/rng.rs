//! Reproducible random-stream derivation.
//!
//! Experiments fan out into many stochastic components (one per vSSD, per
//! workload generator, per rollout worker). Deriving each component's seed
//! from a root seed plus a stable label keeps runs reproducible while keeping
//! the streams statistically independent.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives a child seed from a root seed and a stream label.
///
/// Uses the SplitMix64 finalizer, which is a strong 64-bit mixer; distinct
/// `(root, label)` pairs produce well-separated seeds.
///
/// # Example
///
/// ```
/// use fleetio_des::rng::derive_seed;
///
/// let a = derive_seed(42, "vssd-0");
/// let b = derive_seed(42, "vssd-1");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, "vssd-0")); // stable
/// ```
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h = root ^ 0x9e37_79b9_7f4a_7c15;
    for &b in label.as_bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    splitmix64(h)
}

/// Derives a child seed from a root seed and a numeric stream index.
pub fn derive_seed_indexed(root: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(root, label) ^ splitmix64(index.wrapping_add(0xabcd_ef01)))
}

/// Constructs a [`SmallRng`] from a root seed and label.
pub fn stream(root: u64, label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(root, label))
}

/// Constructs a [`SmallRng`] from a root seed, label and index.
pub fn stream_indexed(root: u64, label: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed_indexed(root, label, index))
}

/// The SplitMix64 output mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn derive_seed_is_stable_and_distinct() {
        assert_eq!(derive_seed(1, "a"), derive_seed(1, "a"));
        assert_ne!(derive_seed(1, "a"), derive_seed(1, "b"));
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
    }

    #[test]
    fn indexed_seeds_do_not_collide_over_small_range() {
        let mut seen = HashSet::new();
        for root in 0..8u64 {
            for idx in 0..64u64 {
                assert!(seen.insert(derive_seed_indexed(root, "worker", idx)));
            }
        }
    }

    #[test]
    fn streams_reproduce() {
        let mut a = stream(7, "x");
        let mut b = stream(7, "x");
        let xs: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn label_prefixes_do_not_alias() {
        // "ab" + root vs "a" then continuing must differ.
        assert_ne!(derive_seed(0, "ab"), derive_seed(0, "ba"));
        assert_ne!(derive_seed(0, ""), derive_seed(0, "\0"));
    }
}
