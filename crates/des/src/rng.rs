//! Reproducible random-stream derivation and the workspace PRNG.
//!
//! Experiments fan out into many stochastic components (one per vSSD, per
//! workload generator, per rollout worker). Deriving each component's seed
//! from a root seed plus a stable label keeps runs reproducible while keeping
//! the streams statistically independent.
//!
//! This module is the **only sanctioned entropy source** in the workspace:
//! `fleetio-audit` rejects `thread_rng`, `SystemTime`, and `Instant`-derived
//! seeds anywhere else, so every random draw in the simulator flows through
//! a [`SmallRng`] seeded explicitly from a root seed. The generator itself
//! (xoshiro256++) is implemented here on pure `std`, with the subset of the
//! `rand` API the workspace uses ([`Rng::gen_range`], [`Rng::shuffle`],
//! [`SmallRng::seed_from_u64`]), so builds never depend on crates.io.

use std::ops::Range;

/// Derives a child seed from a root seed and a stream label.
///
/// Uses the SplitMix64 finalizer, which is a strong 64-bit mixer; distinct
/// `(root, label)` pairs produce well-separated seeds.
///
/// # Example
///
/// ```
/// use fleetio_des::rng::derive_seed;
///
/// let a = derive_seed(42, "vssd-0");
/// let b = derive_seed(42, "vssd-1");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, "vssd-0")); // stable
/// ```
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h = root ^ 0x9e37_79b9_7f4a_7c15;
    for &b in label.as_bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    splitmix64(h)
}

/// Derives a child seed from a root seed and a numeric stream index.
pub fn derive_seed_indexed(root: u64, label: &str, index: u64) -> u64 {
    splitmix64(derive_seed(root, label) ^ splitmix64(index.wrapping_add(0xabcd_ef01)))
}

/// Constructs a [`SmallRng`] from a root seed and label.
pub fn stream(root: u64, label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(root, label))
}

/// Constructs a [`SmallRng`] from a root seed, label and index.
pub fn stream_indexed(root: u64, label: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed_indexed(root, label, index))
}

/// The SplitMix64 output mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic pseudo-random number generator (xoshiro256++).
///
/// Small, fast and statistically strong; the same algorithm family `rand`'s
/// `SmallRng` uses on 64-bit targets. Streams are fully determined by the
/// seed, which is what the determinism regression tests rely on.
///
/// # Example
///
/// ```
/// use fleetio_des::rng::{Rng, SmallRng};
///
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Builds a generator whose state is expanded from `seed` with
    /// SplitMix64, as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(z);
        }
        // The all-zero state is a fixed point; SplitMix64 of any seed never
        // produces four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        SmallRng { s }
    }

    /// The raw xoshiro256++ state, for checkpointing. Restoring via
    /// [`SmallRng::from_state`] continues the stream bit-identically.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`SmallRng::state`].
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state (the xoshiro fixed point), which no
    /// [`SmallRng::seed_from_u64`]-constructed generator can ever reach.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s != [0, 0, 0, 0],
            "all-zero xoshiro state is invalid (corrupt checkpoint?)"
        );
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The random-draw interface used throughout the workspace.
///
/// Only [`Rng::next_u64`] is required; everything else derives from it, so
/// any generator (or test double) plugs into the generic `R: Rng` APIs in
/// `fleetio-ml`, `fleetio-rl` and `fleetio-workloads`.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, 1)` with 24 bits of precision.
    fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (or, for floats, not finite).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Fisher–Yates shuffle of a slice in place.
    fn shuffle<T>(&mut self, xs: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..xs.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            xs.swap(i, j);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A half-open range [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample<G: Rng>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u16, u32, u64, usize);

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample<G: Rng>(self, rng: &mut G) -> i64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(
            self.start < self.end && (self.end - self.start).is_finite(),
            "gen_range called with empty or non-finite float range"
        );
        let v = self.start + (self.end - self.start) * rng.gen_f64();
        // Rounding can land exactly on `end`; fold it back into the range.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<G: Rng>(self, rng: &mut G) -> f32 {
        assert!(
            self.start < self.end && (self.end - self.start).is_finite(),
            "gen_range called with empty or non-finite float range"
        );
        let v = self.start + (self.end - self.start) * rng.gen_f32();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_seed_is_stable_and_distinct() {
        assert_eq!(derive_seed(1, "a"), derive_seed(1, "a"));
        assert_ne!(derive_seed(1, "a"), derive_seed(1, "b"));
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
    }

    #[test]
    fn indexed_seeds_do_not_collide_over_small_range() {
        let mut seen = HashSet::new();
        for root in 0..8u64 {
            for idx in 0..64u64 {
                assert!(seen.insert(derive_seed_indexed(root, "worker", idx)));
            }
        }
    }

    #[test]
    fn streams_reproduce() {
        let mut a = stream(7, "x");
        let mut b = stream(7, "x");
        let xs: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn label_prefixes_do_not_alias() {
        // "ab" + root vs "a" then continuing must differ.
        assert_ne!(derive_seed(0, "ab"), derive_seed(0, "ba"));
        assert_ne!(derive_seed(0, ""), derive_seed(0, "\0"));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        SmallRng::seed_from_u64(5).shuffle(&mut a);
        SmallRng::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        let want: Vec<u32> = (0..50).collect();
        assert_eq!(sorted, want);
        assert_ne!(a, want, "50-element shuffle left input untouched");
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = SmallRng::seed_from_u64(77);
        for _ in 0..10 {
            let _ = a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "all-zero xoshiro state")]
    fn zero_state_rejected() {
        let _ = SmallRng::from_state([0; 4]);
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = SmallRng::seed_from_u64(1234);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
