//! Log-bucketed latency histogram with percentile queries.
//!
//! Tail-latency reporting (P95/P99/P99.9) over millions of request latencies
//! needs a compact sketch rather than a sorted vector. The histogram below
//! uses HDR-style buckets: each power-of-two range is split into
//! `2^SUB_BITS` linear sub-buckets, giving a bounded relative error of about
//! `1 / 2^SUB_BITS` (≈1.6 % with the default 6 sub-bucket bits) at any
//! percentile.

use crate::time::SimDuration;

/// Number of linear sub-buckets per power-of-two range (as a power of two).
const SUB_BITS: u32 = 6;
const SUB_COUNT: usize = 1 << SUB_BITS;

/// A latency histogram over [`SimDuration`] samples.
///
/// # Example
///
/// ```
/// use fleetio_des::{LatencyHistogram, SimDuration};
///
/// let mut h = LatencyHistogram::new();
/// for us in 1..=1000u64 {
///     h.record(SimDuration::from_micros(us));
/// }
/// let p50 = h.percentile(50.0).unwrap().as_micros();
/// assert!((480..=520).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Flat `range * SUB_COUNT + sub` bucket counts: samples whose
    /// nanosecond value falls in that log range / linear sub-bucket.
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    max_nanos: u64,
    min_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram covering the full `u64` nanosecond range.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; ((64 - SUB_BITS) as usize + 1) * SUB_COUNT],
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
            min_nanos: u64::MAX,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        let v = latency.as_nanos();
        let (range, sub) = Self::index(v);
        self.buckets[range * SUB_COUNT + sub] += 1;
        self.count += 1;
        self.sum_nanos += u128::from(v);
        self.max_nanos = self.max_nanos.max(v);
        self.min_nanos = self.min_nanos.min(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of all samples, or `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.count == 0 {
            return None;
        }
        Some(SimDuration::from_nanos(
            (self.sum_nanos / u128::from(self.count)) as u64,
        ))
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_nanos(self.max_nanos))
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_nanos(self.min_nanos))
    }

    /// Value at the given percentile in `[0, 100]`, or `None` when empty.
    ///
    /// The returned value is the upper edge of the bucket containing the
    /// requested rank, so it never under-reports a tail latency by more than
    /// the bucket's relative error.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is outside `[0, 100]` or not finite.
    pub fn percentile(&self, pct: f64) -> Option<SimDuration> {
        assert!(
            pct.is_finite() && (0.0..=100.0).contains(&pct),
            "percentile out of range: {pct}"
        );
        if self.count == 0 {
            return None;
        }
        let target = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                let (range, sub) = (i / SUB_COUNT, i % SUB_COUNT);
                return Some(SimDuration::from_nanos(
                    Self::bucket_high(range, sub).min(self.max_nanos),
                ));
            }
        }
        Some(SimDuration::from_nanos(self.max_nanos))
    }

    /// Fraction of samples strictly greater than `threshold`, in `[0, 1]`.
    ///
    /// This is the paper's "percentage of SLO violations" when `threshold`
    /// is the vSSD's SLO latency. Returns 0 when empty.
    pub fn fraction_above(&self, threshold: SimDuration) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let t = threshold.as_nanos();
        let mut above = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            // Count the bucket as "above" when its low edge exceeds the
            // threshold; the boundary bucket is split proportionally.
            let (range, sub) = (i / SUB_COUNT, i % SUB_COUNT);
            let lo = Self::bucket_low(range, sub);
            let hi = Self::bucket_high(range, sub);
            if lo > t {
                above += c;
            } else if hi > t {
                let width = (hi - lo).max(1) as f64;
                let frac = (hi - t) as f64 / width;
                above += (c as f64 * frac).round() as u64;
            }
        }
        above as f64 / self.count as f64
    }

    /// Merges another histogram's samples into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
        self.min_nanos = self.min_nanos.min(other.min_nanos);
    }

    /// Forgets all samples.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum_nanos = 0;
        self.max_nanos = 0;
        self.min_nanos = u64::MAX;
    }

    /// Maps a nanosecond value to its (range, sub-bucket) index.
    ///
    /// Range 0 holds values below `SUB_COUNT` exactly (one value per
    /// sub-bucket). Range `r >= 1` holds values whose most significant bit is
    /// `SUB_BITS + r - 1`; its sub-bucket is the next `SUB_BITS` bits after
    /// the leading one, so each bucket spans `2^(r-1)` values.
    fn index(v: u64) -> (usize, usize) {
        if v < SUB_COUNT as u64 {
            return (0, v as usize);
        }
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let range = (shift + 1) as usize;
        let sub = (v >> shift) as usize - SUB_COUNT;
        (range, sub)
    }

    /// Inclusive low edge of a bucket in nanoseconds.
    fn bucket_low(range: usize, sub: usize) -> u64 {
        if range == 0 {
            return sub as u64;
        }
        ((sub + SUB_COUNT) as u64) << (range - 1)
    }

    /// Inclusive high edge of a bucket in nanoseconds.
    fn bucket_high(range: usize, sub: usize) -> u64 {
        if range == 0 {
            return sub as u64;
        }
        Self::bucket_low(range, sub) + ((1u64 << (range - 1)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SmallRng};

    #[test]
    fn empty_histogram_reports_none() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(99.0), None);
        assert_eq!(h.fraction_above(SimDuration::from_micros(1)), 0.0);
    }

    #[test]
    fn single_sample_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(123));
        for pct in [0.0, 50.0, 99.0, 100.0] {
            let v = h.percentile(pct).unwrap().as_nanos();
            let err = (v as f64 - 123_000.0).abs() / 123_000.0;
            assert!(err < 0.02, "pct {pct}: got {v}");
        }
        assert_eq!(h.max().unwrap().as_micros(), 123);
        assert_eq!(h.min().unwrap().as_micros(), 123);
    }

    #[test]
    fn uniform_distribution_percentiles_are_accurate() {
        let mut h = LatencyHistogram::new();
        for us in 1..=10_000u64 {
            h.record(SimDuration::from_micros(us));
        }
        for (pct, want_us) in [(50.0, 5_000.0), (95.0, 9_500.0), (99.0, 9_900.0)] {
            let got = h.percentile(pct).unwrap().as_nanos() as f64 / 1_000.0;
            let err = (got - want_us).abs() / want_us;
            assert!(err < 0.03, "pct {pct}: got {got}, want {want_us}");
        }
    }

    #[test]
    fn fraction_above_matches_exact_count() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        let frac = h.fraction_above(SimDuration::from_micros(900));
        assert!((frac - 0.10).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max().unwrap().as_micros(), 1000);
        assert_eq!(a.min().unwrap().as_micros(), 10);
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(5));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(100));
        h.record(SimDuration::from_micros(300));
        assert_eq!(h.mean().unwrap().as_micros(), 200);
    }

    /// Values below `SUB_COUNT` occupy one-value buckets (range 0), so
    /// percentiles there are exact, not approximate: a 90/10 split of two
    /// such values pins P50 to the low value and P95/P99/P100 to the high.
    #[test]
    fn exact_percentiles_in_linear_range() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(SimDuration::from_nanos(10));
        }
        for _ in 0..10 {
            h.record(SimDuration::from_nanos(50));
        }
        assert_eq!(h.percentile(50.0).unwrap().as_nanos(), 10);
        assert_eq!(h.percentile(90.0).unwrap().as_nanos(), 10);
        assert_eq!(h.percentile(95.0).unwrap().as_nanos(), 50);
        assert_eq!(h.percentile(99.0).unwrap().as_nanos(), 50);
        assert_eq!(h.percentile(100.0).unwrap().as_nanos(), 50);
    }

    /// Property: every value falls inside its own bucket's [low, high].
    #[test]
    fn prop_bucket_index_brackets_value() {
        let mut rng = SmallRng::seed_from_u64(0x8157);
        for _case in 0..4096 {
            let v = rng.gen_range(0u64..u64::MAX / 2);
            let (range, sub) = LatencyHistogram::index(v);
            let lo = LatencyHistogram::bucket_low(range, sub);
            let hi = LatencyHistogram::bucket_high(range, sub);
            assert!(
                lo <= v && v <= hi,
                "v={v} not in [{lo},{hi}] (range={range},sub={sub})"
            );
            // Relative bucket width bounded.
            if v >= SUB_COUNT as u64 {
                assert!((hi - lo) as f64 / v as f64 <= 2.0 / SUB_COUNT as f64 + 1e-9);
            }
        }
    }

    /// Property: percentiles are monotone in the requested rank.
    #[test]
    fn prop_percentile_monotone() {
        let mut rng = SmallRng::seed_from_u64(0x9e01);
        for _case in 0..128 {
            let n = rng.gen_range(2usize..300);
            let mut h = LatencyHistogram::new();
            for _ in 0..n {
                h.record(SimDuration::from_nanos(rng.gen_range(1u64..10_000_000)));
            }
            let p50 = h.percentile(50.0).unwrap();
            let p90 = h.percentile(90.0).unwrap();
            let p99 = h.percentile(99.0).unwrap();
            assert!(p50 <= p90 && p90 <= p99);
        }
    }
}
