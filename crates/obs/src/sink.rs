//! The [`ObsSink`] trait and its two stock implementations.
//!
//! The engine owns a `Box<dyn ObsSink>` and calls [`ObsSink::enabled`]
//! before building any event — with the default [`NullSink`] installed
//! every hook is a single predictable branch and no allocation happens.
//! [`RecordingSink`] captures events into a bounded ring plus a
//! [`MetricsRegistry`].

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

use crate::event::ObsEvent;
use crate::export;
use crate::metrics::MetricsRegistry;

/// Receiver for observability events and metrics.
///
/// Implementations must never influence simulation state: the engine
/// produces identical event streams and identical results whether a
/// sink is installed or not. `Send` is required because RL rollouts run
/// engines on scoped worker threads.
pub trait ObsSink: fmt::Debug + Send {
    /// Whether event construction is worth the cost. Emission sites
    /// check this before allocating or formatting anything.
    fn enabled(&self) -> bool {
        false
    }

    /// Accepts one event. The default discards it.
    fn record(&mut self, ev: ObsEvent) {
        let _ = ev;
    }

    /// The sink's metrics registry, when it keeps one.
    fn metrics(&mut self) -> Option<&mut MetricsRegistry> {
        None
    }

    /// Downcast support for retrieving a concrete sink after a run.
    fn as_any(&self) -> &dyn Any;

    /// Consuming downcast support.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The default sink: drops everything, reports disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl ObsSink for NullSink {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Ring-buffered in-memory sink with a metrics registry.
///
/// Memory is bounded: once `cap` events are held, each new event evicts
/// the oldest and increments [`RecordingSink::dropped`]. The default
/// capacity (1 Mi events) is plenty for the workspace's short traced
/// runs while keeping worst-case memory around a hundred MB.
#[derive(Debug, Clone)]
pub struct RecordingSink {
    events: VecDeque<ObsEvent>,
    cap: usize,
    dropped: u64,
    metrics: MetricsRegistry,
}

impl Default for RecordingSink {
    fn default() -> Self {
        Self::with_capacity(1 << 20)
    }
}

impl RecordingSink {
    /// A sink with the default event capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink that keeps at most `cap` events (minimum 1).
    pub fn with_capacity(cap: usize) -> Self {
        RecordingSink {
            events: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> &VecDeque<ObsEvent> {
        &self.events
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Read access to the metrics registry.
    pub fn metrics_ref(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Count of held [`ObsEvent::RequestComplete`] events.
    pub fn completed_requests(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, ObsEvent::RequestComplete { .. }))
            .count() as u64
    }

    /// Held events as a JSONL string (one event per line). When the ring
    /// evicted events, a final `trace_truncated` meta line records how
    /// many, so downstream tooling can tell a short run from a clipped
    /// one. Untruncated traces are byte-identical to the plain export.
    pub fn to_jsonl(&self) -> String {
        let mut out = export::jsonl(self.events.iter());
        if self.dropped > 0 {
            let at = self.events.front().map_or(0, |e| e.at().as_nanos());
            out.push_str(&format!(
                "{{\"type\":\"trace_truncated\",\"at\":{at},\"dropped\":{}}}\n",
                self.dropped
            ));
        }
        out
    }

    /// Held events as a Chrome `trace_event` JSON document.
    pub fn chrome_trace(&self) -> String {
        export::chrome_trace(self.events.iter())
    }

    /// Metrics snapshot as plain text, sorted by name, plus an eviction
    /// note when the ring overflowed.
    pub fn metrics_text(&self) -> String {
        let mut out = self.metrics.render_text();
        if self.dropped > 0 {
            out.push_str(&format!("{} events evicted (ring full)\n", self.dropped));
        }
        out
    }
}

impl ObsSink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: ObsEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    fn metrics(&mut self) -> Option<&mut MetricsRegistry> {
        Some(&mut self.metrics)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::SimTime;

    fn throttle(n: u64) -> ObsEvent {
        ObsEvent::Throttle {
            at: SimTime::from_nanos(n),
            channel: 0,
            until: SimTime::from_nanos(n + 1),
        }
    }

    #[test]
    fn null_sink_is_disabled_and_metricless() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(throttle(0));
        assert!(s.metrics().is_none());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut s = RecordingSink::with_capacity(2);
        assert!(s.enabled());
        s.record(throttle(1));
        s.record(throttle(2));
        s.record(throttle(3));
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.events()[0], throttle(2));
        assert_eq!(s.events()[1], throttle(3));
    }

    #[test]
    fn jsonl_appends_truncation_meta_only_when_dropped() {
        let mut s = RecordingSink::with_capacity(1);
        s.record(throttle(1));
        assert!(!s.to_jsonl().contains("trace_truncated"));
        assert!(!s.metrics_text().contains("evicted"));
        s.record(throttle(2));
        let jsonl = s.to_jsonl();
        let meta = jsonl.lines().last().expect("meta line");
        assert_eq!(
            meta,
            "{\"type\":\"trace_truncated\",\"at\":2,\"dropped\":1}"
        );
        assert!(s.metrics_text().contains("1 events evicted (ring full)"));
    }

    #[test]
    fn downcast_round_trip() {
        let boxed: Box<dyn ObsSink> = Box::new(RecordingSink::with_capacity(4));
        let back = boxed
            .into_any()
            .downcast::<RecordingSink>()
            .expect("downcast to RecordingSink");
        assert_eq!(back.dropped(), 0);
    }

    #[test]
    fn completed_requests_counts_only_completions() {
        let mut s = RecordingSink::new();
        s.record(throttle(0));
        s.record(ObsEvent::RequestComplete {
            at: SimTime::from_nanos(5),
            req: 1,
            vssd: 0,
            read: true,
            bytes: 4096,
            arrival: SimTime::ZERO,
            service_start: SimTime::from_nanos(2),
        });
        assert_eq!(s.completed_requests(), 1);
    }
}
