//! Binary wire encoding of [`ObsEvent`] streams and the run-store
//! segment framing built on top of it.
//!
//! This module is the single source of truth for how events look on
//! disk, shared by the `fleetio-store` writer/reader and by
//! `fleetio-obs summarize` (which can read a store directory without
//! depending on the store crate). Three layers:
//!
//! 1. **Event payload** — one tag byte ([`ObsEvent::kind_index`])
//!    followed by the variant's fields, little-endian fixed-width
//!    integers, `f64` as IEEE bits (`to_bits`, bit-exact round-trip),
//!    `Option` as a one-byte flag, strings length-prefixed. Two events
//!    are equal iff their encodings are byte-equal, which is what makes
//!    run diffing and replay verification exact even for NaN-carrying
//!    window statistics.
//! 2. **Record frame** — `[len: u32][crc: u32][payload]` with
//!    CRC-32/IEEE over the payload, mirroring the `FIOM` container
//!    convention in `crates/model`. The length is capped so a corrupt
//!    length can never over-allocate.
//! 3. **Segment** — a `FSG1` header (magic, format version, segment
//!    sequence number) followed by records to end-of-file.
//!
//! Scanning is *tolerant*: [`scan_segment`] never panics on arbitrary
//! bytes — it walks records until the first framing/CRC violation and
//! reports everything decoded up to that point plus a [`SegmentDamage`]
//! describing where and why it stopped. Because segments are
//! independently framed files, damage in one segment never hides the
//! others.

use std::fmt;
use std::ops::Range;

use fleetio_des::hash::crc32;
use fleetio_des::{SimDuration, SimTime};

use crate::event::{GsbKind, MigrationCause, ModelKind, NandKind, ObsEvent};

/// Magic bytes opening every segment file.
pub const SEG_MAGIC: [u8; 4] = *b"FSG1";

/// Current segment format version.
pub const SEG_VERSION: u32 = 1;

/// Segment header length: magic + version + sequence number.
pub const SEG_HEADER_LEN: usize = 12;

/// Record frame header length: payload length + payload CRC.
pub const REC_HEADER_LEN: usize = 8;

/// Upper bound on a single record payload. Real events encode in well
/// under 100 bytes; the cap exists so a corrupt length field cannot
/// drive allocation or scanning past sanity.
pub const MAX_RECORD_LEN: u32 = 1 << 16;

/// Why a decode or scan stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the field being read required.
    Truncated,
    /// Unknown event kind or enum tag byte.
    BadTag(u8),
    /// A length field exceeded its cap or the remaining buffer.
    BadLength(u64),
    /// A string field was not UTF-8.
    BadString,
    /// Bytes remained after the last field of an event payload.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated payload"),
            WireError::BadTag(t) => write!(f, "unknown wire tag {t}"),
            WireError::BadLength(n) => write!(f, "implausible length {n}"),
            WireError::BadString => write!(f, "non-UTF-8 string"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after event"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Event payload codec
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends the binary encoding of `ev` to `out` (tag byte + fields).
pub fn encode_event(ev: &ObsEvent, out: &mut Vec<u8>) {
    out.push(ev.kind_index());
    match *ev {
        ObsEvent::RequestSubmit {
            at,
            req,
            vssd,
            read,
            bytes,
        } => {
            put_u64(out, at.as_nanos());
            put_u64(out, req);
            put_u32(out, vssd);
            put_bool(out, read);
            put_u64(out, bytes);
        }
        ObsEvent::RequestAdmit {
            at,
            req,
            vssd,
            pages,
        } => {
            put_u64(out, at.as_nanos());
            put_u64(out, req);
            put_u32(out, vssd);
            put_u32(out, pages);
        }
        ObsEvent::ChipIssue {
            at,
            req,
            vssd,
            channel,
            chip,
            read,
        } => {
            put_u64(out, at.as_nanos());
            put_u64(out, req);
            put_u32(out, vssd);
            put_u16(out, channel);
            put_u16(out, chip);
            put_bool(out, read);
        }
        ObsEvent::RequestComplete {
            at,
            req,
            vssd,
            read,
            bytes,
            arrival,
            service_start,
        } => {
            put_u64(out, at.as_nanos());
            put_u64(out, req);
            put_u32(out, vssd);
            put_bool(out, read);
            put_u64(out, bytes);
            put_u64(out, arrival.as_nanos());
            put_u64(out, service_start.as_nanos());
        }
        ObsEvent::NandOp {
            start,
            end,
            vssd,
            channel,
            chip,
            kind,
            gc,
            bytes,
        } => {
            put_u64(out, start.as_nanos());
            put_u64(out, end.as_nanos());
            put_u32(out, vssd);
            put_u16(out, channel);
            put_u16(out, chip);
            out.push(kind.wire_tag());
            put_bool(out, gc);
            put_u64(out, bytes);
        }
        ObsEvent::GcStart {
            at,
            job,
            vssd,
            channel,
            chip,
            live_pages,
            emergency,
        } => {
            put_u64(out, at.as_nanos());
            match job {
                Some(j) => {
                    out.push(1);
                    put_u64(out, j);
                }
                None => out.push(0),
            }
            put_u32(out, vssd);
            put_u16(out, channel);
            put_u16(out, chip);
            put_u32(out, live_pages);
            put_bool(out, emergency);
        }
        ObsEvent::GcEnd {
            at,
            job,
            vssd,
            channel,
            chip,
            busy,
        } => {
            put_u64(out, at.as_nanos());
            put_u64(out, job);
            put_u32(out, vssd);
            put_u16(out, channel);
            put_u16(out, chip);
            put_u64(out, busy.as_nanos());
        }
        ObsEvent::GsbTransition {
            at,
            gsb,
            home,
            harvester,
            kind,
            channels,
        } => {
            put_u64(out, at.as_nanos());
            put_u64(out, gsb);
            put_u32(out, home);
            match harvester {
                Some(h) => {
                    out.push(1);
                    put_u32(out, h);
                }
                None => out.push(0),
            }
            out.push(kind.wire_tag());
            put_u16(out, channels);
        }
        ObsEvent::Throttle { at, channel, until } => {
            put_u64(out, at.as_nanos());
            put_u16(out, channel);
            put_u64(out, until.as_nanos());
        }
        ObsEvent::WindowFlush {
            at,
            vssd,
            avg_bandwidth,
            avg_iops,
            p99_latency,
            slo_violation_rate,
            gc_busy_frac,
            total_bytes,
            total_ops,
        } => {
            put_u64(out, at.as_nanos());
            put_u32(out, vssd);
            put_f64(out, avg_bandwidth);
            put_f64(out, avg_iops);
            put_u64(out, p99_latency.as_nanos());
            put_f64(out, slo_violation_rate);
            put_f64(out, gc_busy_frac);
            put_u64(out, total_bytes);
            put_u64(out, total_ops);
        }
        ObsEvent::ModelLifecycle {
            at,
            kind,
            ref tag,
            update,
        } => {
            put_u64(out, at.as_nanos());
            out.push(kind.wire_tag());
            put_u32(out, tag.len() as u32);
            out.extend_from_slice(tag.as_bytes());
            put_u64(out, update);
        }
        ObsEvent::SloWindow {
            at,
            tenant,
            window,
            ops,
            p95,
            p99,
            throughput,
            p95_ok,
            p99_ok,
            throughput_ok,
            burn,
        } => {
            put_u64(out, at.as_nanos());
            put_u32(out, tenant);
            put_u32(out, window);
            put_u64(out, ops);
            put_u64(out, p95.as_nanos());
            put_u64(out, p99.as_nanos());
            put_f64(out, throughput);
            put_bool(out, p95_ok);
            put_bool(out, p99_ok);
            put_bool(out, throughput_ok);
            put_f64(out, burn);
        }
        ObsEvent::FleetMigration {
            at,
            window,
            tenant,
            from_shard,
            from_slot,
            to_shard,
            to_slot,
            cause,
            mean_util,
            src_util,
            dst_util,
            src_util_after,
            dst_util_after,
        } => {
            put_u64(out, at.as_nanos());
            put_u32(out, window);
            put_u32(out, tenant);
            put_u32(out, from_shard);
            put_u32(out, from_slot);
            put_u32(out, to_shard);
            put_u32(out, to_slot);
            out.push(cause.wire_tag());
            put_f64(out, mean_util);
            put_f64(out, src_util);
            put_f64(out, dst_util);
            put_f64(out, src_util_after);
            put_f64(out, dst_util_after);
        }
    }
}

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn time(&mut self) -> Result<SimTime, WireError> {
        Ok(SimTime::from_nanos(self.u64()?))
    }

    fn dur(&mut self) -> Result<SimDuration, WireError> {
        Ok(SimDuration::from_nanos(self.u64()?))
    }

    fn str(&mut self, cap: usize) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(WireError::BadLength(len as u64));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(left))
        }
    }
}

/// Decodes one event payload produced by [`encode_event`]. Rejects
/// unknown tags, truncation and trailing bytes; never panics.
pub fn decode_event(payload: &[u8]) -> Result<ObsEvent, WireError> {
    let mut r = Rd {
        buf: payload,
        pos: 0,
    };
    let kind = r.u8()?;
    let ev = match kind {
        0 => ObsEvent::RequestSubmit {
            at: r.time()?,
            req: r.u64()?,
            vssd: r.u32()?,
            read: r.bool()?,
            bytes: r.u64()?,
        },
        1 => ObsEvent::RequestAdmit {
            at: r.time()?,
            req: r.u64()?,
            vssd: r.u32()?,
            pages: r.u32()?,
        },
        2 => ObsEvent::ChipIssue {
            at: r.time()?,
            req: r.u64()?,
            vssd: r.u32()?,
            channel: r.u16()?,
            chip: r.u16()?,
            read: r.bool()?,
        },
        3 => ObsEvent::RequestComplete {
            at: r.time()?,
            req: r.u64()?,
            vssd: r.u32()?,
            read: r.bool()?,
            bytes: r.u64()?,
            arrival: r.time()?,
            service_start: r.time()?,
        },
        4 => ObsEvent::NandOp {
            start: r.time()?,
            end: r.time()?,
            vssd: r.u32()?,
            channel: r.u16()?,
            chip: r.u16()?,
            kind: {
                let t = r.u8()?;
                NandKind::from_wire_tag(t).ok_or(WireError::BadTag(t))?
            },
            gc: r.bool()?,
            bytes: r.u64()?,
        },
        5 => ObsEvent::GcStart {
            at: r.time()?,
            job: match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                t => return Err(WireError::BadTag(t)),
            },
            vssd: r.u32()?,
            channel: r.u16()?,
            chip: r.u16()?,
            live_pages: r.u32()?,
            emergency: r.bool()?,
        },
        6 => ObsEvent::GcEnd {
            at: r.time()?,
            job: r.u64()?,
            vssd: r.u32()?,
            channel: r.u16()?,
            chip: r.u16()?,
            busy: r.dur()?,
        },
        7 => ObsEvent::GsbTransition {
            at: r.time()?,
            gsb: r.u64()?,
            home: r.u32()?,
            harvester: match r.u8()? {
                0 => None,
                1 => Some(r.u32()?),
                t => return Err(WireError::BadTag(t)),
            },
            kind: {
                let t = r.u8()?;
                GsbKind::from_wire_tag(t).ok_or(WireError::BadTag(t))?
            },
            channels: r.u16()?,
        },
        8 => ObsEvent::Throttle {
            at: r.time()?,
            channel: r.u16()?,
            until: r.time()?,
        },
        9 => ObsEvent::WindowFlush {
            at: r.time()?,
            vssd: r.u32()?,
            avg_bandwidth: r.f64()?,
            avg_iops: r.f64()?,
            p99_latency: r.dur()?,
            slo_violation_rate: r.f64()?,
            gc_busy_frac: r.f64()?,
            total_bytes: r.u64()?,
            total_ops: r.u64()?,
        },
        10 => ObsEvent::ModelLifecycle {
            at: r.time()?,
            kind: {
                let t = r.u8()?;
                ModelKind::from_wire_tag(t).ok_or(WireError::BadTag(t))?
            },
            tag: r.str(4096)?,
            update: r.u64()?,
        },
        11 => ObsEvent::SloWindow {
            at: r.time()?,
            tenant: r.u32()?,
            window: r.u32()?,
            ops: r.u64()?,
            p95: r.dur()?,
            p99: r.dur()?,
            throughput: r.f64()?,
            p95_ok: r.bool()?,
            p99_ok: r.bool()?,
            throughput_ok: r.bool()?,
            burn: r.f64()?,
        },
        12 => ObsEvent::FleetMigration {
            at: r.time()?,
            window: r.u32()?,
            tenant: r.u32()?,
            from_shard: r.u32()?,
            from_slot: r.u32()?,
            to_shard: r.u32()?,
            to_slot: r.u32()?,
            cause: {
                let t = r.u8()?;
                MigrationCause::from_wire_tag(t).ok_or(WireError::BadTag(t))?
            },
            mean_util: r.f64()?,
            src_util: r.f64()?,
            dst_util: r.f64()?,
            src_util_after: r.f64()?,
            dst_util_after: r.f64()?,
        },
        t => return Err(WireError::BadTag(t)),
    };
    r.finish()?;
    Ok(ev)
}

// ---------------------------------------------------------------------------
// Record framing and segment scanning
// ---------------------------------------------------------------------------

/// Appends one framed record (`len + crc + payload`) to `out`.
pub fn push_record(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() as u64 <= u64::from(MAX_RECORD_LEN));
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Appends the 12-byte segment header for segment `seq` to `out`.
pub fn push_segment_header(out: &mut Vec<u8>, seq: u32) {
    out.extend_from_slice(&SEG_MAGIC);
    put_u32(out, SEG_VERSION);
    put_u32(out, seq);
}

/// Where and why a segment scan stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentDamage {
    /// Byte offset of the first violated frame.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for SegmentDamage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.offset)
    }
}

/// Result of scanning one segment's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// Sequence number from the header, when the header was intact.
    pub seq: Option<u32>,
    /// Payload byte ranges of every record whose frame and CRC checked
    /// out, in file order. Index into the scanned byte slice.
    pub records: Vec<Range<usize>>,
    /// First framing/CRC violation, if any. Records before it are good.
    pub damage: Option<SegmentDamage>,
}

/// Walks a segment's bytes, CRC-validating each record frame. Stops at
/// the first violation and reports it; never panics on arbitrary input.
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut scan = SegmentScan {
        seq: None,
        records: Vec::new(),
        damage: None,
    };
    if bytes.len() < SEG_HEADER_LEN {
        scan.damage = Some(SegmentDamage {
            offset: 0,
            reason: "segment shorter than header".to_string(),
        });
        return scan;
    }
    if bytes[..4] != SEG_MAGIC {
        scan.damage = Some(SegmentDamage {
            offset: 0,
            reason: "bad segment magic".to_string(),
        });
        return scan;
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != SEG_VERSION {
        scan.damage = Some(SegmentDamage {
            offset: 4,
            reason: format!("unsupported segment version {version}"),
        });
        return scan;
    }
    scan.seq = Some(u32::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11],
    ]));
    let mut pos = SEG_HEADER_LEN;
    while pos < bytes.len() {
        if pos + REC_HEADER_LEN > bytes.len() {
            scan.damage = Some(SegmentDamage {
                offset: pos,
                reason: "truncated record header".to_string(),
            });
            return scan;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len == 0 || len > MAX_RECORD_LEN {
            scan.damage = Some(SegmentDamage {
                offset: pos,
                reason: format!("implausible record length {len}"),
            });
            return scan;
        }
        let start = pos + REC_HEADER_LEN;
        let end = match start.checked_add(len as usize) {
            Some(e) if e <= bytes.len() => e,
            _ => {
                scan.damage = Some(SegmentDamage {
                    offset: pos,
                    reason: "record overruns segment".to_string(),
                });
                return scan;
            }
        };
        if crc32(&bytes[start..end]) != crc {
            scan.damage = Some(SegmentDamage {
                offset: pos,
                reason: "record CRC mismatch".to_string(),
            });
            return scan;
        }
        scan.records.push(start..end);
        pos = end;
    }
    scan
}

/// Scans a segment and decodes every intact record. A payload that
/// fails to decode (possible only via a CRC collision or a
/// writer/reader version skew) is reported as damage at its offset.
pub fn events_in_segment(bytes: &[u8]) -> (Vec<ObsEvent>, Option<SegmentDamage>) {
    let scan = scan_segment(bytes);
    let mut events = Vec::with_capacity(scan.records.len());
    for r in &scan.records {
        match decode_event(&bytes[r.clone()]) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                return (
                    events,
                    Some(SegmentDamage {
                        offset: r.start,
                        reason: format!("undecodable record: {e}"),
                    }),
                );
            }
        }
    }
    (events, scan.damage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ObsEvent> {
        vec![
            ObsEvent::RequestSubmit {
                at: SimTime::from_micros(3),
                req: 7,
                vssd: 1,
                read: true,
                bytes: 4096,
            },
            ObsEvent::RequestAdmit {
                at: SimTime::from_micros(4),
                req: 7,
                vssd: 1,
                pages: 2,
            },
            ObsEvent::ChipIssue {
                at: SimTime::from_micros(5),
                req: 7,
                vssd: 1,
                channel: 3,
                chip: 2,
                read: false,
            },
            ObsEvent::RequestComplete {
                at: SimTime::from_micros(9),
                req: 7,
                vssd: 1,
                read: false,
                bytes: 512,
                arrival: SimTime::from_micros(3),
                service_start: SimTime::from_micros(5),
            },
            ObsEvent::NandOp {
                start: SimTime::ZERO,
                end: SimTime::from_micros(5),
                vssd: 0,
                channel: 0,
                chip: 0,
                kind: NandKind::BusGrant,
                gc: true,
                bytes: 4096,
            },
            ObsEvent::GcStart {
                at: SimTime::ZERO,
                job: None,
                vssd: 0,
                channel: 0,
                chip: 0,
                live_pages: 3,
                emergency: true,
            },
            ObsEvent::GcStart {
                at: SimTime::from_micros(1),
                job: Some(11),
                vssd: 0,
                channel: 0,
                chip: 1,
                live_pages: 9,
                emergency: false,
            },
            ObsEvent::GcEnd {
                at: SimTime::from_millis(1),
                job: 4,
                vssd: 0,
                channel: 0,
                chip: 0,
                busy: SimDuration::from_micros(800),
            },
            ObsEvent::GsbTransition {
                at: SimTime::ZERO,
                gsb: 1,
                home: 0,
                harvester: Some(1),
                kind: GsbKind::Harvested,
                channels: 2,
            },
            ObsEvent::GsbTransition {
                at: SimTime::from_micros(2),
                gsb: 1,
                home: 0,
                harvester: None,
                kind: GsbKind::Created,
                channels: 2,
            },
            ObsEvent::Throttle {
                at: SimTime::ZERO,
                channel: 3,
                until: SimTime::from_micros(50),
            },
            ObsEvent::WindowFlush {
                at: SimTime::from_secs(2),
                vssd: 1,
                avg_bandwidth: 1.5e8,
                avg_iops: 4000.0,
                p99_latency: SimDuration::from_micros(900),
                slo_violation_rate: 0.01,
                gc_busy_frac: f64::NAN,
                total_bytes: 1 << 30,
                total_ops: 12345,
            },
            ObsEvent::ModelLifecycle {
                at: SimTime::from_secs(3),
                kind: ModelKind::RolledBack,
                tag: "lc1".to_string(),
                update: 42,
            },
            ObsEvent::SloWindow {
                at: SimTime::from_secs(4),
                tenant: 17,
                window: 3,
                ops: 900,
                p95: SimDuration::from_micros(850),
                p99: SimDuration::from_millis(3),
                throughput: 2.5e7,
                p95_ok: true,
                p99_ok: false,
                throughput_ok: true,
                burn: 0.25,
            },
            ObsEvent::FleetMigration {
                at: SimTime::from_secs(5),
                window: 4,
                tenant: 17,
                from_shard: 2,
                from_slot: 1,
                to_shard: 7,
                to_slot: 0,
                cause: MigrationCause::SpreadFactor,
                mean_util: 0.22,
                src_util: 0.81,
                dst_util: 0.05,
                src_util_after: 0.44,
                dst_util_after: 0.42,
            },
        ]
    }

    #[test]
    fn every_event_round_trips_bit_exact() {
        for ev in sample_events() {
            let mut buf = Vec::new();
            encode_event(&ev, &mut buf);
            let back = decode_event(&buf).unwrap_or_else(|e| panic!("{}: {e}", ev.tag()));
            // Compare re-encodings: byte equality is the ground truth
            // (PartialEq on f64 would reject identical NaNs).
            let mut buf2 = Vec::new();
            encode_event(&back, &mut buf2);
            assert_eq!(buf, buf2, "{}", ev.tag());
            assert_eq!(back.kind_index(), ev.kind_index());
            assert_eq!(back.at(), ev.at());
        }
    }

    #[test]
    fn truncation_and_bit_flips_never_panic() {
        for ev in sample_events() {
            let mut buf = Vec::new();
            encode_event(&ev, &mut buf);
            for cut in 0..buf.len() {
                assert!(decode_event(&buf[..cut]).is_err() || cut == buf.len());
            }
            for bit in 0..buf.len() * 8 {
                let mut bad = buf.clone();
                bad[bit / 8] ^= 1 << (bit % 8);
                let _ = decode_event(&bad); // must not panic; may or may not error
            }
        }
    }

    #[test]
    fn segment_round_trip_and_damage_isolation() {
        let events = sample_events();
        let mut seg = Vec::new();
        push_segment_header(&mut seg, 5);
        for ev in &events {
            let mut payload = Vec::new();
            encode_event(ev, &mut payload);
            push_record(&mut seg, &payload);
        }

        let scan = scan_segment(&seg);
        assert_eq!(scan.seq, Some(5));
        assert_eq!(scan.records.len(), events.len());
        assert!(scan.damage.is_none());
        let (decoded, damage) = events_in_segment(&seg);
        assert!(damage.is_none());
        assert_eq!(decoded.len(), events.len());

        // Flip one payload byte of the 3rd record: records before it
        // survive, the rest of the segment is reported damaged.
        let victim = scan.records[2].start;
        let mut bad = seg.clone();
        bad[victim] ^= 0x40;
        let bad_scan = scan_segment(&bad);
        assert_eq!(bad_scan.records.len(), 2);
        let dmg = bad_scan.damage.expect("flip must be detected");
        assert!(dmg.reason.contains("CRC"), "{dmg}");

        // Truncate mid-record: same isolation guarantee.
        let cut = scan.records[4].start + 1;
        let cut_scan = scan_segment(&seg[..cut]);
        assert_eq!(cut_scan.records.len(), 4);
        assert!(cut_scan.damage.is_some());

        // Arbitrary garbage: never panics.
        let garbage: Vec<u8> = (0..256u32).map(|i| (i * 37 % 251) as u8).collect();
        let g = scan_segment(&garbage);
        assert!(g.damage.is_some());
    }
}
