//! `fleetio-obs`: deterministic observability for the FleetIO stack.
//!
//! The simulator's headline claims are distributional (P95/P99 latency
//! under harvesting, per-window bandwidth reallocation, GC interference),
//! so end-of-run aggregates are not enough to explain *why* a window went
//! bad. This crate provides the always-available, zero-dependency layer
//! the rest of the workspace reports into:
//!
//! * [`ObsSink`] — the cheap trait the engine calls on its hot path. The
//!   default [`NullSink`] makes every hook a predictable no-op branch;
//!   installing a [`RecordingSink`] turns the same hooks into a bounded
//!   ring of typed [`ObsEvent`] records plus a [`MetricsRegistry`].
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket log2
//!   histograms ([`Log2Histogram`], P50/P95/P99 extraction) with typed
//!   handles registered per vSSD / per channel / per chip.
//! * [`export`] — JSONL event dumps, Chrome `trace_event` JSON
//!   (loadable in `chrome://tracing` / Perfetto, one track per
//!   channel/chip) and a plain-text metrics snapshot.
//! * [`TrainingSeries`] — per-update PPO telemetry (losses, entropy, KL,
//!   clip fraction, reward) as a JSONL time series.
//! * [`prof`] — the host-time span profiler: RAII spans over per-thread
//!   call trees, folded-stack and Chrome exporters, and (behind the
//!   `prof-alloc` feature) per-span allocation accounting. The one
//!   sanctioned home for wall-clock measurement outside `crates/bench`.
//!
//! # Determinism
//!
//! Every timestamp in every record is a [`fleetio_des::SimTime`] — never
//! wall clock — and every emission point sits on the single-threaded
//! engine event loop, so two same-seed runs produce *byte-identical*
//! JSONL streams (enforced by `tests/determinism.rs` at the workspace
//! root). Installing or removing a sink never changes simulation state.
//!
//! The `fleetio-obs` binary (`cargo run -p fleetio-obs -- summarize
//! trace.jsonl`) validates a JSONL trace line by line and renders a
//! human-readable report.

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod series;
pub mod sink;
pub mod slo;
pub mod training;
pub mod wire;

pub use event::{GsbKind, MigrationCause, ModelKind, NandKind, ObsEvent};
pub use metrics::{CounterId, GaugeId, HistogramId, Log2Histogram, MetricsRegistry};
pub use prof::{ProfReport, ProfSpan, SpanGuard, SpanStats};
pub use series::{SeriesId, SeriesSet};
pub use sink::{NullSink, ObsSink, RecordingSink};
pub use slo::{SloSpec, SloTracker, WindowVerdict};
pub use training::{TrainingRecord, TrainingSeries};
