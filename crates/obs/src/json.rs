//! Minimal recursive-descent JSON parser (pure std).
//!
//! Exists so the `fleetio-obs summarize` CLI and the exporter tests can
//! validate emitted JSON without external crates. Supports the full
//! JSON grammar the exporters produce: objects, arrays, strings with
//! escapes, numbers (parsed as `f64`), booleans and `null`. Rejects
//! trailing input.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's fields, when it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value's elements, when it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses `input` as a single JSON value, rejecting trailing input.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar. The input is a valid &str, so a
                // char boundary always exists here.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap_or('\u{fffd}');
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut arr = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(arr));
    }
    loop {
        let value = parse_value(b, pos)?;
        arr.push(value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(arr));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"s":"x\ny"}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-3.0));
        let b = obj.get("b").unwrap().as_object().unwrap();
        assert_eq!(b.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(b.get("d"), Some(&Value::Null));
        assert_eq!(obj.get("s").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_trailing_and_malformed_input() {
        assert!(parse("{} x").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_empty_containers_and_unicode() {
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), Value::Arr(Vec::new()));
        assert_eq!(parse("\"\\u0041é\"").unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn integral_check_guards_as_u64() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
