//! Host-time span profiler: where does the *simulator* spend wall time?
//!
//! Everything else in `fleetio-obs` observes simulated time; this module
//! is the one sanctioned home for wall-clock measurement outside
//! `crates/bench` (enforced by the `host-time-scope` audit rule). Host
//! time flows one way — out of the simulator into reports — and never
//! back into simulation state, so determinism is preserved.
//!
//! Model:
//! * [`span`] returns an RAII guard; guards nest on a per-thread span
//!   stack and build a per-thread call tree keyed by span name.
//! * Each tree node aggregates call count, total/self wall time, min/max
//!   per call, and (with the `prof-alloc` feature) allocation count and
//!   bytes attributed to the span (inclusive of children).
//! * Per-thread trees merge into a process-global table — automatically
//!   at thread exit (covering `std::thread::scope` rollout workers) or
//!   explicitly via [`flush_thread`]. Merging only sums, mins and maxes,
//!   so aggregate counts are independent of thread join order.
//! * Profiling is off by default behind a cached [`enabled`] flag (the
//!   same trick as `ObsSink`): a disabled [`span`] call is one relaxed
//!   atomic load and touches no thread-local state.
//!
//! Reports export as an indented text tree ([`ProfReport::to_text`]),
//! folded stacks for flamegraph tooling ([`ProfReport::folded`]), and a
//! host-time track merged into the Chrome trace document
//! ([`crate::export::chrome_trace_with_host`]).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Process-wide on/off switch, read with a single relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Merged span statistics from flushed threads, keyed by root-to-span
/// name path.
static GLOBAL: Mutex<BTreeMap<Vec<String>, SpanStats>> = Mutex::new(BTreeMap::new());

/// Turns profiling on for subsequently created spans.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns profiling off; live guards created while enabled still record.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether profiling is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn global_lock() -> MutexGuard<'static, BTreeMap<Vec<String>, SpanStats>> {
    // A poisoned profiler table is still structurally valid; keep the
    // data rather than losing the whole report to an unrelated panic.
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Aggregate statistics for one span (one path in the call tree).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed calls.
    pub calls: u64,
    /// Total wall time across calls, nanoseconds (inclusive of children).
    pub total_ns: u64,
    /// Wall time spent in direct children, nanoseconds.
    pub child_ns: u64,
    /// Shortest single call, nanoseconds (valid when `calls > 0`).
    pub min_ns: u64,
    /// Longest single call, nanoseconds.
    pub max_ns: u64,
    /// Heap allocations made while the span (or a child) was active.
    /// Always zero unless the `prof-alloc` feature is enabled.
    pub alloc_count: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl SpanStats {
    /// Wall time not attributed to any child span.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    fn record(&mut self, ns: u64) {
        if self.calls == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.calls += 1;
        self.total_ns += ns;
    }

    /// Commutative, associative merge: aggregate counts are independent
    /// of the order threads flush in.
    fn merge(&mut self, other: &SpanStats) {
        if other.calls == 0 && other.alloc_count == 0 {
            return;
        }
        if self.calls == 0 {
            let (min, max) = (other.min_ns, other.max_ns);
            self.min_ns = min;
            self.max_ns = max;
        } else if other.calls > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        self.child_ns += other.child_ns;
        self.alloc_count += other.alloc_count;
        self.alloc_bytes += other.alloc_bytes;
    }
}

struct Node {
    name: String,
    parent: Option<usize>,
    children: Vec<usize>,
    stats: SpanStats,
}

/// One thread's call tree plus the live span stack.
struct ThreadProfiler {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<usize>,
    /// Bumped by [`reset`]; guards from an older epoch no-op on drop so
    /// a reset under a live guard can never corrupt the tree.
    epoch: u64,
}

impl ThreadProfiler {
    fn child_node(&mut self, parent: Option<usize>, name: &str) -> usize {
        let found = {
            let siblings: &[usize] = match parent {
                Some(p) => &self.nodes[p].children,
                None => &self.roots,
            };
            siblings
                .iter()
                .copied()
                .find(|&i| self.nodes[i].name == name)
        };
        if let Some(i) = found {
            return i;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            parent,
            children: Vec::new(),
            stats: SpanStats::default(),
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    fn enter(&mut self, name: &str) -> usize {
        let idx = self.child_node(self.stack.last().copied(), name);
        self.stack.push(idx);
        idx
    }

    fn exit(&mut self, idx: usize, ns: u64, allocs: (u64, u64)) {
        // Guards drop LIFO under normal RAII scoping; pop defensively in
        // case one was kept alive past a sibling.
        while let Some(top) = self.stack.pop() {
            if top == idx {
                break;
            }
        }
        let stats = &mut self.nodes[idx].stats;
        stats.record(ns);
        stats.alloc_count += allocs.0;
        stats.alloc_bytes += allocs.1;
        if let Some(p) = self.nodes[idx].parent {
            self.nodes[p].stats.child_ns += ns;
        }
    }

    /// Records a completed leaf span without touching the stack, for
    /// timings measured externally (see [`record_span`]).
    fn record_leaf(&mut self, name: &str, ns: u64) {
        let idx = self.child_node(self.stack.last().copied(), name);
        self.nodes[idx].stats.record(ns);
        if let Some(p) = self.nodes[idx].parent {
            self.nodes[p].stats.child_ns += ns;
        }
    }

    fn flush_into(&mut self, global: &mut BTreeMap<Vec<String>, SpanStats>) {
        for i in 0..self.nodes.len() {
            let stats = self.nodes[i].stats;
            if stats.calls == 0 && stats.alloc_count == 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = Some(i);
            while let Some(c) = cur {
                path.push(self.nodes[c].name.clone());
                cur = self.nodes[c].parent;
            }
            path.reverse();
            global.entry(path).or_default().merge(&stats);
            self.nodes[i].stats = SpanStats::default();
        }
    }
}

/// Wrapper whose `Drop` flushes the thread's tree into the global table
/// at thread exit, so scoped worker threads merge automatically at join.
struct TlsProfiler(RefCell<ThreadProfiler>);

impl Drop for TlsProfiler {
    fn drop(&mut self) {
        let mut p = self.0.borrow_mut();
        p.flush_into(&mut global_lock());
    }
}

thread_local! {
    static PROF: TlsProfiler = const {
        TlsProfiler(RefCell::new(ThreadProfiler {
            nodes: Vec::new(),
            roots: Vec::new(),
            stack: Vec::new(),
            epoch: 0,
        }))
    };
}

/// RAII guard for one span activation. Dropping it records the elapsed
/// wall time into this thread's call tree.
#[must_use = "a span records its duration when the guard drops"]
pub struct SpanGuard {
    /// `None` when profiling was disabled at creation: drop is a no-op.
    start: Option<Instant>,
    node: usize,
    epoch: u64,
    #[cfg(feature = "prof-alloc")]
    alloc0: (u64, u64),
    /// Span attribution is thread-local; keep the guard on its thread.
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name` under the thread's innermost open span.
///
/// When profiling is disabled this is one relaxed atomic load and the
/// returned guard does nothing on drop.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            start: None,
            node: 0,
            epoch: 0,
            #[cfg(feature = "prof-alloc")]
            alloc0: (0, 0),
            _not_send: PhantomData,
        };
    }
    span_enabled(name)
}

fn span_enabled(name: &str) -> SpanGuard {
    let entered = PROF.try_with(|h| {
        let mut p = h.0.borrow_mut();
        let node = p.enter(name);
        (node, p.epoch)
    });
    match entered {
        Ok((node, epoch)) => SpanGuard {
            #[cfg(feature = "prof-alloc")]
            alloc0: alloc::counters(),
            // Taken last so tree bookkeeping is excluded from the span.
            start: Some(Instant::now()),
            node,
            epoch,
            _not_send: PhantomData,
        },
        // Thread-local storage already torn down (span opened from
        // another destructor): record nothing.
        Err(_) => SpanGuard {
            start: None,
            node: 0,
            epoch: 0,
            #[cfg(feature = "prof-alloc")]
            alloc0: (0, 0),
            _not_send: PhantomData,
        },
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        // Taken first so guard bookkeeping is excluded from the span.
        let ns = start.elapsed().as_nanos() as u64;
        #[cfg(feature = "prof-alloc")]
        let allocs = {
            let (count, bytes) = alloc::counters();
            (
                count.saturating_sub(self.alloc0.0),
                bytes.saturating_sub(self.alloc0.1),
            )
        };
        #[cfg(not(feature = "prof-alloc"))]
        let allocs = (0, 0);
        let _ = PROF.try_with(|h| {
            let mut p = h.0.borrow_mut();
            if p.epoch == self.epoch {
                p.exit(self.node, ns, allocs);
            }
        });
    }
}

/// Runs `f` inside a span named `name`.
pub fn time<T, F: FnOnce() -> T>(name: &str, f: F) -> T {
    let _guard = span(name);
    f()
}

/// Records an externally measured duration as one call of a leaf span
/// under the current innermost span. For timings the guard API cannot
/// capture (e.g. per-sample harness loops).
pub fn record_span(name: &str, wall: Duration) {
    if !enabled() {
        return;
    }
    let ns = wall.as_nanos() as u64;
    let _ = PROF.try_with(|h| h.0.borrow_mut().record_leaf(name, ns));
}

/// Merges the calling thread's completed span statistics into the global
/// table. Threads flush automatically at exit; long-lived threads call
/// this before a report is taken.
pub fn flush_thread() {
    let _ = PROF.try_with(|h| {
        let mut p = h.0.borrow_mut();
        p.flush_into(&mut global_lock());
    });
}

/// Flushes the calling thread and returns the merged report, clearing
/// the global table. Worker threads that already exited (e.g.
/// `std::thread::scope` rollouts) are included; other still-live threads
/// must [`flush_thread`] first to be seen.
pub fn take_report() -> ProfReport {
    flush_thread();
    let map = std::mem::take(&mut *global_lock());
    ProfReport::from_map(map)
}

/// Like [`take_report`] but leaves the accumulated data in place.
pub fn snapshot() -> ProfReport {
    flush_thread();
    ProfReport::from_map(global_lock().clone())
}

/// Clears all accumulated data: the global table and the calling
/// thread's tree. Live guards on this thread become no-ops (their epoch
/// no longer matches); other threads' trees are untouched.
pub fn reset() {
    global_lock().clear();
    let _ = PROF.try_with(|h| {
        let mut p = h.0.borrow_mut();
        p.nodes.clear();
        p.roots.clear();
        p.stack.clear();
        p.epoch += 1;
    });
}

/// One aggregated span in a [`ProfReport`], identified by its
/// root-to-span name path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfSpan {
    /// Span names from the root down to (and including) this span.
    pub path: Vec<String>,
    /// Aggregated statistics across all calls and threads.
    pub stats: SpanStats,
}

impl ProfSpan {
    /// The span's own name (last path element).
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }

    /// Nesting depth: 0 for root spans.
    pub fn depth(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// The path joined with `;` (the folded-stacks key).
    pub fn folded_key(&self) -> String {
        self.path.join(";")
    }
}

/// A merged profiling report: spans in depth-first path order (parents
/// before children, siblings in name order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfReport {
    /// All aggregated spans, sorted by path.
    pub spans: Vec<ProfSpan>,
}

impl ProfReport {
    fn from_map(map: BTreeMap<Vec<String>, SpanStats>) -> Self {
        ProfReport {
            spans: map
                .into_iter()
                .map(|(path, stats)| ProfSpan { path, stats })
                .collect(),
        }
    }

    /// Whether the report contains no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Looks up one span by exact path.
    pub fn find(&self, path: &[&str]) -> Option<&ProfSpan> {
        self.spans.iter().find(|s| {
            s.path.len() == path.len() && s.path.iter().map(String::as_str).eq(path.iter().copied())
        })
    }

    /// The `n` spans with the most self time, descending.
    pub fn top_by_self(&self, n: usize) -> Vec<&ProfSpan> {
        let mut sorted: Vec<&ProfSpan> = self.spans.iter().collect();
        sorted.sort_by(|a, b| {
            b.stats
                .self_ns()
                .cmp(&a.stats.self_ns())
                .then_with(|| a.path.cmp(&b.path))
        });
        sorted.truncate(n);
        sorted
    }

    /// Renders the call tree as indented text with per-span statistics.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.spans.is_empty() {
            out.push_str("(no spans recorded)\n");
            return out;
        }
        let name_w = self
            .spans
            .iter()
            .map(|s| 2 * s.depth() + s.name().len())
            .max()
            .unwrap_or(4)
            .max(4);
        let has_allocs = self.spans.iter().any(|s| s.stats.alloc_count > 0);
        let _ = write!(
            out,
            "{:<name_w$} {:>9} {:>11} {:>11} {:>11} {:>11}",
            "span", "calls", "total", "self", "min", "max"
        );
        if has_allocs {
            let _ = write!(out, " {:>9} {:>11}", "allocs", "alloc B");
        }
        out.push('\n');
        for s in &self.spans {
            let indented = format!("{:indent$}{}", "", s.name(), indent = 2 * s.depth());
            let _ = write!(
                out,
                "{:<name_w$} {:>9} {:>11} {:>11} {:>11} {:>11}",
                indented,
                s.stats.calls,
                format_ns(s.stats.total_ns as f64),
                format_ns(s.stats.self_ns() as f64),
                format_ns(s.stats.min_ns as f64),
                format_ns(s.stats.max_ns as f64),
            );
            if has_allocs {
                let _ = write!(
                    out,
                    " {:>9} {:>11}",
                    s.stats.alloc_count, s.stats.alloc_bytes
                );
            }
            out.push('\n');
        }
        out
    }

    /// Renders folded stacks (`a;b;c self_ns` per line), the input format
    /// of `flamegraph.pl` / `inferno-flamegraph`. Spans with zero self
    /// time are omitted, as collapse tools do.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let self_ns = s.stats.self_ns();
            if self_ns == 0 {
                continue;
            }
            let _ = writeln!(out, "{} {}", s.folded_key(), self_ns);
        }
        out
    }
}

/// Formats a nanosecond quantity with an adaptive unit (the one timing
/// formatter for all bench/profiling output).
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Sample statistics over nanosecond timings (sorts `samples` in place).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NsSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median sample.
    pub median: f64,
    /// 95th-percentile sample.
    pub p95: f64,
    /// Number of samples summarized.
    pub samples: usize,
}

/// Computes mean/median/p95 over `samples`, the shared statistics step
/// of the bench harness. Returns zeros for an empty slice.
pub fn summarize_ns(samples: &mut [f64]) -> NsSummary {
    if samples.is_empty() {
        return NsSummary {
            mean: 0.0,
            median: 0.0,
            p95: 0.0,
            samples: 0,
        };
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    NsSummary {
        mean: samples.iter().sum::<f64>() / n as f64,
        median: samples[n / 2],
        p95: samples[(n * 95 / 100).min(n - 1)],
        samples: n,
    }
}

/// Opt-in allocation accounting (`prof-alloc` feature): a counting
/// global allocator that lets spans attribute heap traffic.
///
/// Install it in a binary's root:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: fleetio_obs::prof::alloc::CountingAllocator =
///     fleetio_obs::prof::alloc::CountingAllocator;
/// ```
#[cfg(feature = "prof-alloc")]
pub mod alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static COUNT: Cell<u64> = const { Cell::new(0) };
        static BYTES: Cell<u64> = const { Cell::new(0) };
    }

    /// Delegates to [`System`] while counting allocations per thread.
    /// Deallocation is free (counters are cumulative-alloc, not live).
    pub struct CountingAllocator;

    // SAFETY: delegates allocation to `System` unchanged; the counters
    // are plain thread-local cells and never allocate themselves.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            note(layout.size() as u64);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            note(new_size as u64);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            note(layout.size() as u64);
            System.alloc_zeroed(layout)
        }
    }

    #[inline]
    fn note(bytes: u64) {
        // try_with: allocations during TLS teardown are simply uncounted.
        let _ = COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
        let _ = BYTES.try_with(|b| b.set(b.get().wrapping_add(bytes)));
    }

    /// This thread's cumulative (allocation count, bytes requested).
    pub fn counters() -> (u64, u64) {
        (
            COUNT.try_with(Cell::get).unwrap_or(0),
            BYTES.try_with(Cell::get).unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiler state is process-global; tests touching it serialize here.
    fn lock() -> MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Restores "profiling off, state clear" even if a test panics.
    struct Scope(#[allow(dead_code)] MutexGuard<'static, ()>);

    fn scoped() -> Scope {
        let guard = lock();
        reset();
        enable();
        Scope(guard)
    }

    impl Drop for Scope {
        fn drop(&mut self) {
            disable();
            reset();
        }
    }

    #[test]
    fn nesting_builds_tree_and_self_time_is_total_minus_children() {
        let _s = scoped();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                std::hint::black_box(vec![1u8; 64]);
            }
            {
                let _inner = span("inner");
            }
            let _other = span("other");
        }
        let report = take_report();
        let outer = report.find(&["outer"]).expect("outer span").stats;
        let inner = report.find(&["outer", "inner"]).expect("inner span").stats;
        let other = report.find(&["outer", "other"]).expect("other span").stats;
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 2);
        assert_eq!(other.calls, 1);
        // Children's totals are exactly the parent's child time, so
        // self = total − children holds as an identity.
        assert_eq!(outer.child_ns, inner.total_ns + other.total_ns);
        assert_eq!(outer.self_ns(), outer.total_ns - outer.child_ns);
        assert!(outer.total_ns >= inner.total_ns + other.total_ns);
        assert!(inner.min_ns <= inner.max_ns);
        assert!(inner.total_ns >= inner.max_ns);
    }

    #[test]
    fn per_thread_trees_merge_deterministic_counts() {
        let _s = scoped();
        let per_thread = [3usize, 5, 7, 11];
        std::thread::scope(|scope| {
            for &reps in &per_thread {
                scope.spawn(move || {
                    for _ in 0..reps {
                        let _work = span("work");
                        let _step = span("step");
                    }
                    // No explicit flush: thread exit flushes.
                });
            }
        });
        let report = take_report();
        let total: u64 = per_thread.iter().map(|&r| r as u64).sum();
        assert_eq!(report.find(&["work"]).expect("work").stats.calls, total);
        assert_eq!(
            report.find(&["work", "step"]).expect("step").stats.calls,
            total
        );
        // Merge is commutative: a second identical run aggregates the same.
        std::thread::scope(|scope| {
            for &reps in per_thread.iter().rev() {
                scope.spawn(move || {
                    for _ in 0..reps {
                        let _work = span("work");
                        let _step = span("step");
                    }
                });
            }
        });
        let again = take_report();
        assert_eq!(again.find(&["work"]).expect("work").stats.calls, total);
    }

    #[test]
    fn disabled_spans_record_nothing_and_stay_cheap() {
        let _s = scoped();
        disable();
        let t0 = Instant::now();
        for _ in 0..100_000 {
            let _g = span("hot");
        }
        let spent = t0.elapsed();
        assert!(snapshot().is_empty(), "disabled spans must not record");
        // Generous smoke bound: 100k disabled spans in well under a
        // second even on a loaded CI machine (~10 µs/span budget).
        assert!(spent < Duration::from_secs(1), "took {spent:?}");
    }

    #[test]
    fn record_span_attaches_leaf_under_current_span() {
        let _s = scoped();
        {
            let _outer = span("phase");
            record_span("sample", Duration::from_nanos(1500));
            record_span("sample", Duration::from_nanos(500));
        }
        let report = take_report();
        let leaf = report.find(&["phase", "sample"]).expect("leaf").stats;
        assert_eq!(leaf.calls, 2);
        assert_eq!(leaf.total_ns, 2000);
        assert_eq!(leaf.min_ns, 500);
        assert_eq!(leaf.max_ns, 1500);
        let phase = report.find(&["phase"]).expect("phase").stats;
        assert_eq!(phase.child_ns, 2000);
    }

    #[test]
    fn reset_under_live_guard_is_safe() {
        let _s = scoped();
        let guard = span("doomed");
        reset();
        drop(guard); // Epoch mismatch: must not panic or record.
        assert!(take_report().is_empty());
    }

    #[test]
    fn folded_output_matches_collapse_format() {
        let _s = scoped();
        {
            let _a = span("a");
            let _b = span("b");
            // Real work so span `b` has nonzero self time on any clock.
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
        }
        let report = take_report();
        for line in report.folded().lines() {
            let (key, val) = line.rsplit_once(' ').expect("key value");
            assert!(!key.is_empty());
            assert!(val.parse::<u64>().is_ok(), "self ns parses: {line}");
        }
        assert!(report.folded().contains("a;b "));
    }

    #[test]
    fn top_by_self_sorts_descending() {
        let report = ProfReport {
            spans: vec![
                ProfSpan {
                    path: vec!["small".into()],
                    stats: SpanStats {
                        calls: 1,
                        total_ns: 10,
                        ..Default::default()
                    },
                },
                ProfSpan {
                    path: vec!["big".into()],
                    stats: SpanStats {
                        calls: 1,
                        total_ns: 100,
                        ..Default::default()
                    },
                },
            ],
        };
        let top = report.top_by_self(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].name(), "big");
    }

    #[test]
    fn merge_combines_min_max_and_sums() {
        let mut a = SpanStats {
            calls: 2,
            total_ns: 30,
            child_ns: 5,
            min_ns: 10,
            max_ns: 20,
            ..Default::default()
        };
        let b = SpanStats {
            calls: 1,
            total_ns: 5,
            child_ns: 0,
            min_ns: 5,
            max_ns: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.calls, 3);
        assert_eq!(a.total_ns, 35);
        assert_eq!(a.min_ns, 5);
        assert_eq!(a.max_ns, 20);
        assert_eq!(a.self_ns(), 30);
    }

    #[test]
    fn format_ns_picks_adaptive_units() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(1_500.0), "1.50 us");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(3_000_000_000.0), "3.000 s");
    }

    #[test]
    fn summarize_ns_computes_order_statistics() {
        let mut samples = vec![3.0, 1.0, 2.0];
        let s = summarize_ns(&mut samples);
        assert_eq!(s.samples, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.p95, 3.0);
        assert_eq!(summarize_ns(&mut []).samples, 0);
    }

    #[test]
    fn text_report_renders_indented_tree() {
        let _s = scoped();
        {
            let _a = span("alpha");
            let _b = span("beta");
        }
        let report = take_report();
        let text = report.to_text();
        assert!(text.contains("alpha"));
        assert!(text.contains("  beta"), "child indented: {text}");
        assert!(text.starts_with("span"));
    }
}
