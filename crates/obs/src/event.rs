//! Typed observability events and their JSONL encoding.
//!
//! One [`ObsEvent`] is one fact about the simulation, timestamped in
//! simulated time. The set mirrors the paper's moving parts: the request
//! lifecycle (`submit → admit → chip-issue → complete`), NAND operations,
//! GC runs, gSB harvest/lend/reclaim transitions, token-bucket throttles
//! and per-window statistics flushes.
//!
//! Encoding is hand-rolled JSON (pure std): integers and `bool`s render
//! exactly, `f64`s use Rust's shortest-roundtrip `Display` (valid JSON,
//! deterministic), and non-finite floats are clamped to `0` so a line is
//! always parseable.

use std::fmt::Write as _;

use fleetio_des::{SimDuration, SimTime};

/// What a [`ObsEvent::NandOp`] span occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NandKind {
    /// Whole-page read (cell read + bus transfer).
    Read,
    /// Whole-page program (bus transfer + cell program).
    Program,
    /// One bus grant of a time-sliced transfer.
    BusGrant,
    /// Cell-only occupancy (the chip half of a time-sliced op).
    ChipOccupy,
}

impl NandKind {
    /// Stable lowercase tag used in exports.
    pub fn tag(self) -> &'static str {
        match self {
            NandKind::Read => "read",
            NandKind::Program => "program",
            NandKind::BusGrant => "bus_grant",
            NandKind::ChipOccupy => "chip_occupy",
        }
    }

    /// Stable one-byte tag used by the binary wire encoding
    /// ([`crate::wire`]). Never renumber released values.
    pub fn wire_tag(self) -> u8 {
        match self {
            NandKind::Read => 0,
            NandKind::Program => 1,
            NandKind::BusGrant => 2,
            NandKind::ChipOccupy => 3,
        }
    }

    /// Inverse of [`NandKind::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(NandKind::Read),
            1 => Some(NandKind::Program),
            2 => Some(NandKind::BusGrant),
            3 => Some(NandKind::ChipOccupy),
            _ => None,
        }
    }
}

/// A ghost-superblock lifecycle transition (§3.6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsbKind {
    /// `Make_Harvestable` materialized a new gSB into the pool.
    Created,
    /// A harvester acquired the gSB (`Harvest`).
    Harvested,
    /// The harvester released the gSB back (level decrease).
    Released,
    /// The home vSSD asked for it back; live data drains through GC.
    ReclaimRequested,
    /// The gSB's last block was returned; it no longer exists.
    Destroyed,
}

impl GsbKind {
    /// Stable lowercase tag used in exports.
    pub fn tag(self) -> &'static str {
        match self {
            GsbKind::Created => "created",
            GsbKind::Harvested => "harvested",
            GsbKind::Released => "released",
            GsbKind::ReclaimRequested => "reclaim_requested",
            GsbKind::Destroyed => "destroyed",
        }
    }

    /// Stable one-byte tag used by the binary wire encoding
    /// ([`crate::wire`]). Never renumber released values.
    pub fn wire_tag(self) -> u8 {
        match self {
            GsbKind::Created => 0,
            GsbKind::Harvested => 1,
            GsbKind::Released => 2,
            GsbKind::ReclaimRequested => 3,
            GsbKind::Destroyed => 4,
        }
    }

    /// Inverse of [`GsbKind::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(GsbKind::Created),
            1 => Some(GsbKind::Harvested),
            2 => Some(GsbKind::Released),
            3 => Some(GsbKind::ReclaimRequested),
            4 => Some(GsbKind::Destroyed),
            _ => None,
        }
    }
}

/// A model-lifecycle action (checkpoint management in `fleetio-model`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// A checkpoint was written (atomic tmp + sync + rename).
    Saved,
    /// A checkpoint was decoded and a trainer/agent restored from it.
    Loaded,
    /// The trainer was rolled back to the last-good snapshot after a
    /// reward regression.
    RolledBack,
    /// A checkpoint failed verification (bad magic/CRC/truncation).
    CorruptDetected,
}

impl ModelKind {
    /// Stable lowercase tag used in exports.
    pub fn tag(self) -> &'static str {
        match self {
            ModelKind::Saved => "saved",
            ModelKind::Loaded => "loaded",
            ModelKind::RolledBack => "rolled_back",
            ModelKind::CorruptDetected => "corrupt_detected",
        }
    }

    /// Stable one-byte tag used by the binary wire encoding
    /// ([`crate::wire`]). Never renumber released values.
    pub fn wire_tag(self) -> u8 {
        match self {
            ModelKind::Saved => 0,
            ModelKind::Loaded => 1,
            ModelKind::RolledBack => 2,
            ModelKind::CorruptDetected => 3,
        }
    }

    /// Inverse of [`ModelKind::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ModelKind::Saved),
            1 => Some(ModelKind::Loaded),
            2 => Some(ModelKind::RolledBack),
            3 => Some(ModelKind::CorruptDetected),
            _ => None,
        }
    }
}

/// Which hotspot rule was the binding constraint when the control
/// plane planned a migration. A shard qualifies as hot only when it
/// exceeds **both** the absolute utilization threshold and the
/// spread-factor multiple of the fleet mean; the cause names the rule
/// with the smaller margin — the one that would have released the
/// shard first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationCause {
    /// The absolute `hot_util` threshold was the tighter bound.
    HotUtil,
    /// The `spread_factor × mean` bound was the tighter one.
    SpreadFactor,
}

impl MigrationCause {
    /// Stable lowercase tag used in exports.
    pub fn tag(self) -> &'static str {
        match self {
            MigrationCause::HotUtil => "hot_util",
            MigrationCause::SpreadFactor => "spread_factor",
        }
    }

    /// Stable one-byte tag used by the binary wire encoding
    /// ([`crate::wire`]). Never renumber released values.
    pub fn wire_tag(self) -> u8 {
        match self {
            MigrationCause::HotUtil => 0,
            MigrationCause::SpreadFactor => 1,
        }
    }

    /// Inverse of [`MigrationCause::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(MigrationCause::HotUtil),
            1 => Some(MigrationCause::SpreadFactor),
            _ => None,
        }
    }
}

/// One structured observability record. All timestamps are simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A host request entered the engine (`Engine::submit`).
    RequestSubmit {
        /// Arrival time the request was stamped with.
        at: SimTime,
        /// Engine-assigned request id.
        req: u64,
        /// Owning vSSD.
        vssd: u32,
        /// Read (`true`) or write.
        read: bool,
        /// Request length in bytes.
        bytes: u64,
    },
    /// The request's arrival was processed and its page ops were queued.
    RequestAdmit {
        /// Admission time.
        at: SimTime,
        /// Engine-assigned request id.
        req: u64,
        /// Owning vSSD.
        vssd: u32,
        /// Page operations the request fanned out into.
        pages: u32,
    },
    /// One of the request's page ops was issued to a chip.
    ChipIssue {
        /// Issue time.
        at: SimTime,
        /// Engine-assigned request id.
        req: u64,
        /// Owning vSSD.
        vssd: u32,
        /// Flash channel the op was issued on.
        channel: u16,
        /// Chip behind that channel.
        chip: u16,
        /// Read (`true`) or program.
        read: bool,
    },
    /// The request's last page op finished.
    RequestComplete {
        /// Completion time.
        at: SimTime,
        /// Engine-assigned request id.
        req: u64,
        /// Owning vSSD.
        vssd: u32,
        /// Read (`true`) or write.
        read: bool,
        /// Request length in bytes.
        bytes: u64,
        /// Original arrival time (latency = `at - arrival`).
        arrival: SimTime,
        /// First time any of its ops touched hardware.
        service_start: SimTime,
    },
    /// A NAND-level occupancy span (device timing, one track per
    /// channel/chip in the Chrome exporter).
    NandOp {
        /// When the op began occupying its first resource.
        start: SimTime,
        /// When it released its last resource.
        end: SimTime,
        /// vSSD the op was issued for.
        vssd: u32,
        /// Flash channel.
        channel: u16,
        /// Chip behind that channel.
        chip: u16,
        /// What the span occupied.
        kind: NandKind,
        /// Whether this was internal GC traffic.
        gc: bool,
        /// Bytes moved (0 for cell-only occupancy).
        bytes: u64,
    },
    /// A garbage-collection job started on `(channel, chip)`.
    GcStart {
        /// Start time.
        at: SimTime,
        /// Job id, or `None` for the synchronous emergency path.
        job: Option<u64>,
        /// vSSD owning the victim block's resources.
        vssd: u32,
        /// Victim channel.
        channel: u16,
        /// Victim chip.
        chip: u16,
        /// Live pages that must migrate.
        live_pages: u32,
        /// Whether this was an out-of-space emergency collection.
        emergency: bool,
    },
    /// A garbage-collection job finished (victim erased and released).
    GcEnd {
        /// Completion time.
        at: SimTime,
        /// Job id.
        job: u64,
        /// vSSD owning the victim block's resources.
        vssd: u32,
        /// Victim channel.
        channel: u16,
        /// Victim chip.
        chip: u16,
        /// Wall-to-wall busy time of the job.
        busy: SimDuration,
    },
    /// A ghost-superblock transition.
    GsbTransition {
        /// Transition time.
        at: SimTime,
        /// gSB id.
        gsb: u64,
        /// Home vSSD (resource owner).
        home: u32,
        /// Harvester, when one is attached.
        harvester: Option<u32>,
        /// Which transition.
        kind: GsbKind,
        /// Channels the gSB spans.
        channels: u16,
    },
    /// Every runnable op on a channel was token-bucket blocked; a retry
    /// was scheduled.
    Throttle {
        /// When the dispatcher gave up.
        at: SimTime,
        /// The starved channel.
        channel: u16,
        /// Earliest token-availability time (the retry time).
        until: SimTime,
    },
    /// A per-vSSD statistics window was frozen (`Engine::finish_window`).
    WindowFlush {
        /// Window end time.
        at: SimTime,
        /// vSSD the window belongs to.
        vssd: u32,
        /// Average bandwidth over the window, bytes/s.
        avg_bandwidth: f64,
        /// Average operations per second.
        avg_iops: f64,
        /// P99 request latency.
        p99_latency: SimDuration,
        /// Fraction of requests violating the SLO.
        slo_violation_rate: f64,
        /// Fraction of the window with GC active.
        gc_busy_frac: f64,
        /// Bytes moved in the window.
        total_bytes: u64,
        /// Operations completed in the window.
        total_ops: u64,
    },
    /// A model checkpoint was saved, loaded or rolled back
    /// (`fleetio-model`). Timestamped in simulated time because autosaves
    /// ride the sim-time cadence of online fine-tuning.
    ModelLifecycle {
        /// When the lifecycle action happened (sim time of the driving
        /// training loop; [`SimTime::ZERO`] for offline tooling).
        at: SimTime,
        /// Which action.
        kind: ModelKind,
        /// Registry tag of the checkpoint. Must stay within
        /// `[a-z0-9_-]` (enforced by `fleetio-model`): the JSON encoder
        /// does not escape strings.
        tag: String,
        /// Trainer update counter at the time of the action.
        update: u64,
    },
    /// A per-tenant SLO verdict for one decision window, emitted at the
    /// fleet's serial window merge.
    SloWindow {
        /// Window end time on the tenant's resident shard.
        at: SimTime,
        /// Fleet-wide tenant index.
        tenant: u32,
        /// Window index (0-based).
        window: u32,
        /// Operations completed this window.
        ops: u64,
        /// Exact-bucket p95 latency (zero when idle).
        p95: SimDuration,
        /// Exact-bucket p99 latency (zero when idle).
        p99: SimDuration,
        /// Average throughput over the window, bytes/s.
        throughput: f64,
        /// p95 within target.
        p95_ok: bool,
        /// p99 within target.
        p99_ok: bool,
        /// Throughput at or above the floor.
        throughput_ok: bool,
        /// Rolling violation fraction after this window (burn rate).
        burn: f64,
    },
    /// A tenant migration executed at a window boundary, with the
    /// hotspot-rule cause and the utilizations the planner saw.
    FleetMigration {
        /// Execution time (the boundary entering the next window).
        at: SimTime,
        /// Window whose statistics planned the move.
        window: u32,
        /// The migrated tenant.
        tenant: u32,
        /// Source shard index.
        from_shard: u32,
        /// Source slot within the shard.
        from_slot: u32,
        /// Destination shard index.
        to_shard: u32,
        /// Destination slot within the shard.
        to_slot: u32,
        /// Which hotspot rule was the binding constraint.
        cause: MigrationCause,
        /// Fleet mean utilization when the move was planned.
        mean_util: f64,
        /// Source-shard utilization before the move.
        src_util: f64,
        /// Destination-shard utilization before the move.
        dst_util: f64,
        /// Projected source utilization after the move.
        src_util_after: f64,
        /// Projected destination utilization after the move.
        dst_util_after: f64,
    },
}

impl ObsEvent {
    /// Number of distinct event kinds ([`ObsEvent::kind_index`] range).
    pub const KIND_COUNT: usize = 13;

    /// Stable `type` tags indexed by [`ObsEvent::kind_index`].
    pub const KIND_TAGS: [&'static str; Self::KIND_COUNT] = [
        "request_submit",
        "request_admit",
        "chip_issue",
        "request_complete",
        "nand_op",
        "gc_start",
        "gc_end",
        "gsb",
        "throttle",
        "window_flush",
        "model",
        "slo_window",
        "fleet_migration",
    ];

    /// Stable dense index of the event's kind, `0..KIND_COUNT`. Doubles
    /// as the binary wire tag ([`crate::wire`]) and the bit position in
    /// the run store's per-segment kind bitmap — never renumber released
    /// values; append new kinds at the end.
    pub fn kind_index(&self) -> u8 {
        match self {
            ObsEvent::RequestSubmit { .. } => 0,
            ObsEvent::RequestAdmit { .. } => 1,
            ObsEvent::ChipIssue { .. } => 2,
            ObsEvent::RequestComplete { .. } => 3,
            ObsEvent::NandOp { .. } => 4,
            ObsEvent::GcStart { .. } => 5,
            ObsEvent::GcEnd { .. } => 6,
            ObsEvent::GsbTransition { .. } => 7,
            ObsEvent::Throttle { .. } => 8,
            ObsEvent::WindowFlush { .. } => 9,
            ObsEvent::ModelLifecycle { .. } => 10,
            ObsEvent::SloWindow { .. } => 11,
            ObsEvent::FleetMigration { .. } => 12,
        }
    }

    /// Looks up a kind index by its stable `type` tag (CLI filters).
    pub fn kind_index_of_tag(tag: &str) -> Option<u8> {
        Self::KIND_TAGS
            .iter()
            .position(|t| *t == tag)
            .map(|i| i as u8)
    }

    /// Stable `type` tag of the event's JSONL encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            ObsEvent::RequestSubmit { .. } => "request_submit",
            ObsEvent::RequestAdmit { .. } => "request_admit",
            ObsEvent::ChipIssue { .. } => "chip_issue",
            ObsEvent::RequestComplete { .. } => "request_complete",
            ObsEvent::NandOp { .. } => "nand_op",
            ObsEvent::GcStart { .. } => "gc_start",
            ObsEvent::GcEnd { .. } => "gc_end",
            ObsEvent::GsbTransition { .. } => "gsb",
            ObsEvent::Throttle { .. } => "throttle",
            ObsEvent::WindowFlush { .. } => "window_flush",
            ObsEvent::ModelLifecycle { .. } => "model",
            ObsEvent::SloWindow { .. } => "slo_window",
            ObsEvent::FleetMigration { .. } => "fleet_migration",
        }
    }

    /// The event's primary timestamp (span events use their start).
    pub fn at(&self) -> SimTime {
        match *self {
            ObsEvent::RequestSubmit { at, .. }
            | ObsEvent::RequestAdmit { at, .. }
            | ObsEvent::ChipIssue { at, .. }
            | ObsEvent::RequestComplete { at, .. }
            | ObsEvent::GcStart { at, .. }
            | ObsEvent::GcEnd { at, .. }
            | ObsEvent::GsbTransition { at, .. }
            | ObsEvent::Throttle { at, .. }
            | ObsEvent::WindowFlush { at, .. }
            | ObsEvent::ModelLifecycle { at, .. }
            | ObsEvent::SloWindow { at, .. }
            | ObsEvent::FleetMigration { at, .. } => at,
            ObsEvent::NandOp { start, .. } => start,
        }
    }

    /// Appends the event's one-line JSON encoding (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"type\":\"");
        out.push_str(self.tag());
        out.push('"');
        match *self {
            ObsEvent::RequestSubmit {
                at,
                req,
                vssd,
                read,
                bytes,
            } => {
                field_u64(out, "at", at.as_nanos());
                field_u64(out, "req", req);
                field_u64(out, "vssd", u64::from(vssd));
                field_bool(out, "read", read);
                field_u64(out, "bytes", bytes);
            }
            ObsEvent::RequestAdmit {
                at,
                req,
                vssd,
                pages,
            } => {
                field_u64(out, "at", at.as_nanos());
                field_u64(out, "req", req);
                field_u64(out, "vssd", u64::from(vssd));
                field_u64(out, "pages", u64::from(pages));
            }
            ObsEvent::ChipIssue {
                at,
                req,
                vssd,
                channel,
                chip,
                read,
            } => {
                field_u64(out, "at", at.as_nanos());
                field_u64(out, "req", req);
                field_u64(out, "vssd", u64::from(vssd));
                field_u64(out, "channel", u64::from(channel));
                field_u64(out, "chip", u64::from(chip));
                field_bool(out, "read", read);
            }
            ObsEvent::RequestComplete {
                at,
                req,
                vssd,
                read,
                bytes,
                arrival,
                service_start,
            } => {
                field_u64(out, "at", at.as_nanos());
                field_u64(out, "req", req);
                field_u64(out, "vssd", u64::from(vssd));
                field_bool(out, "read", read);
                field_u64(out, "bytes", bytes);
                field_u64(out, "arrival", arrival.as_nanos());
                field_u64(out, "service_start", service_start.as_nanos());
            }
            ObsEvent::NandOp {
                start,
                end,
                vssd,
                channel,
                chip,
                kind,
                gc,
                bytes,
            } => {
                field_u64(out, "start", start.as_nanos());
                field_u64(out, "end", end.as_nanos());
                field_u64(out, "vssd", u64::from(vssd));
                field_u64(out, "channel", u64::from(channel));
                field_u64(out, "chip", u64::from(chip));
                field_str(out, "kind", kind.tag());
                field_bool(out, "gc", gc);
                field_u64(out, "bytes", bytes);
            }
            ObsEvent::GcStart {
                at,
                job,
                vssd,
                channel,
                chip,
                live_pages,
                emergency,
            } => {
                field_u64(out, "at", at.as_nanos());
                match job {
                    Some(j) => field_u64(out, "job", j),
                    None => out.push_str(",\"job\":null"),
                }
                field_u64(out, "vssd", u64::from(vssd));
                field_u64(out, "channel", u64::from(channel));
                field_u64(out, "chip", u64::from(chip));
                field_u64(out, "live_pages", u64::from(live_pages));
                field_bool(out, "emergency", emergency);
            }
            ObsEvent::GcEnd {
                at,
                job,
                vssd,
                channel,
                chip,
                busy,
            } => {
                field_u64(out, "at", at.as_nanos());
                field_u64(out, "job", job);
                field_u64(out, "vssd", u64::from(vssd));
                field_u64(out, "channel", u64::from(channel));
                field_u64(out, "chip", u64::from(chip));
                field_u64(out, "busy", busy.as_nanos());
            }
            ObsEvent::GsbTransition {
                at,
                gsb,
                home,
                harvester,
                kind,
                channels,
            } => {
                field_u64(out, "at", at.as_nanos());
                field_u64(out, "gsb", gsb);
                field_u64(out, "home", u64::from(home));
                match harvester {
                    Some(h) => field_u64(out, "harvester", u64::from(h)),
                    None => out.push_str(",\"harvester\":null"),
                }
                field_str(out, "kind", kind.tag());
                field_u64(out, "channels", u64::from(channels));
            }
            ObsEvent::Throttle { at, channel, until } => {
                field_u64(out, "at", at.as_nanos());
                field_u64(out, "channel", u64::from(channel));
                field_u64(out, "until", until.as_nanos());
            }
            ObsEvent::WindowFlush {
                at,
                vssd,
                avg_bandwidth,
                avg_iops,
                p99_latency,
                slo_violation_rate,
                gc_busy_frac,
                total_bytes,
                total_ops,
            } => {
                field_u64(out, "at", at.as_nanos());
                field_u64(out, "vssd", u64::from(vssd));
                field_f64(out, "avg_bandwidth", avg_bandwidth);
                field_f64(out, "avg_iops", avg_iops);
                field_u64(out, "p99_latency", p99_latency.as_nanos());
                field_f64(out, "slo_violation_rate", slo_violation_rate);
                field_f64(out, "gc_busy_frac", gc_busy_frac);
                field_u64(out, "total_bytes", total_bytes);
                field_u64(out, "total_ops", total_ops);
            }
            ObsEvent::ModelLifecycle {
                at,
                kind,
                ref tag,
                update,
            } => {
                field_u64(out, "at", at.as_nanos());
                field_str(out, "kind", kind.tag());
                field_str(out, "tag", tag);
                field_u64(out, "update", update);
            }
            ObsEvent::SloWindow {
                at,
                tenant,
                window,
                ops,
                p95,
                p99,
                throughput,
                p95_ok,
                p99_ok,
                throughput_ok,
                burn,
            } => {
                field_u64(out, "at", at.as_nanos());
                field_u64(out, "tenant", u64::from(tenant));
                field_u64(out, "window", u64::from(window));
                field_u64(out, "ops", ops);
                field_u64(out, "p95", p95.as_nanos());
                field_u64(out, "p99", p99.as_nanos());
                field_f64(out, "throughput", throughput);
                field_bool(out, "p95_ok", p95_ok);
                field_bool(out, "p99_ok", p99_ok);
                field_bool(out, "throughput_ok", throughput_ok);
                field_f64(out, "burn", burn);
            }
            ObsEvent::FleetMigration {
                at,
                window,
                tenant,
                from_shard,
                from_slot,
                to_shard,
                to_slot,
                cause,
                mean_util,
                src_util,
                dst_util,
                src_util_after,
                dst_util_after,
            } => {
                field_u64(out, "at", at.as_nanos());
                field_u64(out, "window", u64::from(window));
                field_u64(out, "tenant", u64::from(tenant));
                field_u64(out, "from_shard", u64::from(from_shard));
                field_u64(out, "from_slot", u64::from(from_slot));
                field_u64(out, "to_shard", u64::from(to_shard));
                field_u64(out, "to_slot", u64::from(to_slot));
                field_str(out, "cause", cause.tag());
                field_f64(out, "mean_util", mean_util);
                field_f64(out, "src_util", src_util);
                field_f64(out, "dst_util", dst_util);
                field_f64(out, "src_util_after", src_util_after);
                field_f64(out, "dst_util_after", dst_util_after);
            }
        }
        out.push('}');
    }

    /// The event's one-line JSON encoding.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        self.write_json(&mut s);
        s
    }
}

fn field_u64(out: &mut String, key: &str, v: u64) {
    let _ = write!(out, ",\"{key}\":{v}");
}

fn field_bool(out: &mut String, key: &str, v: bool) {
    let _ = write!(out, ",\"{key}\":{v}");
}

fn field_str(out: &mut String, key: &str, v: &str) {
    let _ = write!(out, ",\"{key}\":\"{v}\"");
}

/// Writes a finite float; non-finite values clamp to `0` so the line
/// stays valid JSON.
fn field_f64(out: &mut String, key: &str, v: f64) {
    if v.is_finite() {
        let _ = write!(out, ",\"{key}\":{v}");
    } else {
        let _ = write!(out, ",\"{key}\":0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_encodes_all_fields() {
        let ev = ObsEvent::RequestSubmit {
            at: SimTime::from_micros(3),
            req: 7,
            vssd: 1,
            read: true,
            bytes: 4096,
        };
        assert_eq!(
            ev.to_json(),
            "{\"type\":\"request_submit\",\"at\":3000,\"req\":7,\"vssd\":1,\
             \"read\":true,\"bytes\":4096}"
        );
        assert_eq!(ev.at(), SimTime::from_micros(3));
    }

    #[test]
    fn every_event_parses_as_json() {
        let events = vec![
            ObsEvent::RequestAdmit {
                at: SimTime::ZERO,
                req: 0,
                vssd: 0,
                pages: 2,
            },
            ObsEvent::ChipIssue {
                at: SimTime::ZERO,
                req: 0,
                vssd: 0,
                channel: 1,
                chip: 2,
                read: false,
            },
            ObsEvent::RequestComplete {
                at: SimTime::from_micros(9),
                req: 0,
                vssd: 0,
                read: false,
                bytes: 512,
                arrival: SimTime::ZERO,
                service_start: SimTime::from_micros(1),
            },
            ObsEvent::NandOp {
                start: SimTime::ZERO,
                end: SimTime::from_micros(5),
                vssd: 0,
                channel: 0,
                chip: 0,
                kind: NandKind::BusGrant,
                gc: true,
                bytes: 4096,
            },
            ObsEvent::GcStart {
                at: SimTime::ZERO,
                job: None,
                vssd: 0,
                channel: 0,
                chip: 0,
                live_pages: 3,
                emergency: true,
            },
            ObsEvent::GcEnd {
                at: SimTime::from_millis(1),
                job: 4,
                vssd: 0,
                channel: 0,
                chip: 0,
                busy: SimDuration::from_micros(800),
            },
            ObsEvent::GsbTransition {
                at: SimTime::ZERO,
                gsb: 1,
                home: 0,
                harvester: Some(1),
                kind: GsbKind::Harvested,
                channels: 2,
            },
            ObsEvent::Throttle {
                at: SimTime::ZERO,
                channel: 3,
                until: SimTime::from_micros(50),
            },
            ObsEvent::WindowFlush {
                at: SimTime::from_secs(2),
                vssd: 1,
                avg_bandwidth: 1.5e8,
                avg_iops: 4000.0,
                p99_latency: SimDuration::from_micros(900),
                slo_violation_rate: 0.01,
                gc_busy_frac: f64::NAN,
                total_bytes: 1 << 30,
                total_ops: 12345,
            },
            ObsEvent::ModelLifecycle {
                at: SimTime::from_secs(3),
                kind: ModelKind::RolledBack,
                tag: "lc1".to_string(),
                update: 42,
            },
            ObsEvent::SloWindow {
                at: SimTime::from_secs(4),
                tenant: 17,
                window: 3,
                ops: 900,
                p95: SimDuration::from_micros(850),
                p99: SimDuration::from_millis(3),
                throughput: 2.5e7,
                p95_ok: true,
                p99_ok: false,
                throughput_ok: true,
                burn: 0.25,
            },
            ObsEvent::FleetMigration {
                at: SimTime::from_secs(5),
                window: 4,
                tenant: 17,
                from_shard: 2,
                from_slot: 1,
                to_shard: 7,
                to_slot: 0,
                cause: MigrationCause::SpreadFactor,
                mean_util: 0.22,
                src_util: 0.81,
                dst_util: 0.05,
                src_util_after: 0.44,
                dst_util_after: 0.42,
            },
        ];
        for ev in events {
            let line = ev.to_json();
            let v = crate::json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            let obj = v.as_object().expect("event encodes as a JSON object");
            assert_eq!(
                obj.get("type").and_then(|t| t.as_str()),
                Some(ev.tag()),
                "{line}"
            );
            let idx = usize::from(ev.kind_index());
            assert_eq!(ObsEvent::KIND_TAGS[idx], ev.tag());
            assert_eq!(ObsEvent::kind_index_of_tag(ev.tag()), Some(idx as u8));
        }
    }
}
