//! RL training telemetry: per-update PPO statistics as a JSONL series.
//!
//! `PpoTrainer` pushes one [`TrainingRecord`] per optimizer update when
//! telemetry is enabled; the accumulated [`TrainingSeries`] renders as
//! JSONL so training curves (loss, entropy, KL, clip fraction, reward)
//! become a first-class run artifact next to the event trace.

use std::fmt::Write as _;

/// One PPO update's summary statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrainingRecord {
    /// Zero-based update index within the trainer's lifetime.
    pub update: u64,
    /// Mean clipped-surrogate policy loss.
    pub policy_loss: f64,
    /// Mean value-function loss.
    pub value_loss: f64,
    /// Mean policy entropy.
    pub entropy: f64,
    /// Approximate KL divergence old‖new (mean of `logp_old - logp_new`).
    pub kl: f64,
    /// Fraction of samples whose ratio was clipped.
    pub clip_fraction: f64,
    /// Mean per-step reward over the update's batch.
    pub mean_reward: f64,
    /// Transitions the update consumed.
    pub samples: u64,
}

impl TrainingRecord {
    /// The record's one-line JSON encoding.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> f64 {
            if v.is_finite() {
                v
            } else {
                0.0
            }
        }
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"update\":{},\"policy_loss\":{},\"value_loss\":{},\"entropy\":{},\
             \"kl\":{},\"clip_fraction\":{},\"mean_reward\":{},\"samples\":{}}}",
            self.update,
            num(self.policy_loss),
            num(self.value_loss),
            num(self.entropy),
            num(self.kl),
            num(self.clip_fraction),
            num(self.mean_reward),
            self.samples,
        );
        s
    }
}

/// An append-only series of [`TrainingRecord`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingSeries {
    records: Vec<TrainingRecord>,
}

impl TrainingSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record.
    pub fn push(&mut self, record: TrainingRecord) {
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in push order.
    pub fn records(&self) -> &[TrainingRecord] {
        &self.records
    }

    /// Renders the series as JSONL, one record per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_render_as_parseable_jsonl() {
        let mut series = TrainingSeries::new();
        series.push(TrainingRecord {
            update: 0,
            policy_loss: -0.02,
            value_loss: 1.5,
            entropy: 1.09,
            kl: 0.003,
            clip_fraction: 0.12,
            mean_reward: 0.4,
            samples: 256,
        });
        series.push(TrainingRecord {
            update: 1,
            kl: f64::NAN,
            ..TrainingRecord::default()
        });
        assert_eq!(series.len(), 2);
        let text = series.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let v = crate::json::parse(line).expect("line parses");
            let obj = v.as_object().expect("object");
            assert!(obj.contains_key("kl"));
            assert!(obj.contains_key("clip_fraction"));
        }
        // NaN clamps to 0 so the artifact always parses.
        let second = crate::json::parse(text.lines().nth(1).unwrap()).unwrap();
        assert_eq!(
            second.as_object().unwrap().get("kl").unwrap().as_f64(),
            Some(0.0)
        );
    }
}
