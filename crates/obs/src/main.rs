//! `fleetio-obs` CLI: turn an event trace into a readable report.
//!
//! Usage:
//!
//! ```text
//! fleetio-obs summarize <trace.jsonl | store-dir> [--by-tenant]
//! fleetio-obs report <trace.jsonl | store-dir>...
//! ```
//!
//! The input is either a JSONL trace file or a `fleetio-store` run
//! directory (detected by being a directory): binary segments are
//! decoded and summarized through the exact same aggregation path.
//! Exit code 2 on the first malformed line (reporting its line number)
//! or on a damaged segment (use `fleetio-store verify` to localize).
//!
//! `summarize` aggregates per-type event counts, request latency
//! percentiles, per-vSSD traffic, GC activity, throttles and window
//! flushes; `--by-tenant` adds an exact-bucket per-tenant
//! latency/throughput breakdown. `report` renders the fleet-health
//! view of `slo_window` / `fleet_migration` events — the offline twin
//! of `FleetRuntime::health_report` — and accepts several inputs at
//! once so per-shard run stores aggregate into one fleet dashboard.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

use fleetio_des::{LatencyHistogram, SimDuration};
use fleetio_obs::json::{self, Value};
use fleetio_obs::{export, wire, Log2Histogram};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let paths: Vec<&String> = args
        .iter()
        .skip(2)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let flags: Vec<&String> = args
        .iter()
        .skip(2)
        .filter(|a| a.starts_with("--"))
        .collect();
    match args.get(1).map(String::as_str) {
        Some("summarize") if paths.len() == 1 && flags.iter().all(|f| *f == "--by-tenant") => {
            summarize(paths[0], !flags.is_empty())
        }
        Some("report") if !paths.is_empty() && flags.is_empty() => report(&paths),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: fleetio-obs summarize <trace.jsonl | store-dir> [--by-tenant]\n\
         \x20      fleetio-obs report <trace.jsonl | store-dir>..."
    );
    ExitCode::from(2)
}

/// Reads the trace as JSONL text: verbatim for a file, decoded from
/// binary segments (in sequence order) for a run-store directory.
fn load_trace(path: &str) -> Result<String, String> {
    if !std::path::Path::new(path).is_dir() {
        return std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    }
    let mut seg_files: Vec<String> = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?
        .filter_map(|entry| entry.ok().and_then(|e| e.file_name().into_string().ok()))
        .filter(|name| name.starts_with("seg-") && name.ends_with(".seg"))
        .collect();
    if seg_files.is_empty() {
        return Err(format!("{path}: no seg-*.seg files (not a run store?)"));
    }
    seg_files.sort();
    let mut events = Vec::new();
    for name in &seg_files {
        let bytes = std::fs::read(format!("{path}/{name}"))
            .map_err(|e| format!("cannot read {path}/{name}: {e}"))?;
        let (segment_events, damage) = wire::events_in_segment(&bytes);
        if let Some(d) = damage {
            return Err(format!(
                "{path}/{name}: {d}; run `fleetio-store verify {path}` to localize the damage"
            ));
        }
        events.extend(segment_events);
    }
    Ok(export::jsonl(events.iter()))
}

/// Loads and parses one input into JSON objects, line order preserved.
fn load_events(path: &str) -> Result<Vec<Value>, String> {
    let text = load_trace(path)?;
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let value =
            json::parse(line).map_err(|e| format!("{path}:{}: invalid JSON: {e}", idx + 1))?;
        if value.as_object().is_none() {
            return Err(format!("{path}:{}: line is not a JSON object", idx + 1));
        }
        out.push(value);
    }
    Ok(out)
}

#[derive(Default)]
struct VssdStats {
    completed: u64,
    bytes: u64,
    reads: u64,
}

/// Per-tenant exact-bucket accumulation for `--by-tenant`.
struct TenantStats {
    hist: LatencyHistogram,
    bytes: u64,
    first_arrival: u64,
    last_complete: u64,
}

impl Default for TenantStats {
    fn default() -> Self {
        TenantStats {
            hist: LatencyHistogram::new(),
            bytes: 0,
            first_arrival: u64::MAX,
            last_complete: 0,
        }
    }
}

fn summarize(path: &str, by_tenant: bool) -> ExitCode {
    let events = match load_events(path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("fleetio-obs: {e}");
            return ExitCode::from(2);
        }
    };

    let mut type_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut latency = Log2Histogram::new();
    let mut queue_delay = Log2Histogram::new();
    let mut per_vssd: BTreeMap<u64, VssdStats> = BTreeMap::new();
    let mut per_tenant: BTreeMap<u64, TenantStats> = BTreeMap::new();
    let mut gc_starts = 0u64;
    let mut gc_emergencies = 0u64;
    let mut gc_busy_ns = 0u64;
    let mut gc_live_pages = 0u64;
    let mut gsb: BTreeMap<String, u64> = BTreeMap::new();
    let mut throttles = 0u64;
    let mut windows = 0u64;
    let mut evicted = 0u64;
    let mut lines = 0u64;
    let mut last_ns = 0u64;

    for value in &events {
        let Some(obj) = value.as_object() else {
            continue;
        };
        lines += 1;
        let ty = obj
            .get("type")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        *type_counts.entry(ty.clone()).or_insert(0) += 1;
        for key in ["at", "end", "start"] {
            if let Some(ns) = obj.get(key).and_then(Value::as_u64) {
                last_ns = last_ns.max(ns);
            }
        }
        match ty.as_str() {
            "request_complete" => {
                let at = obj.get("at").and_then(Value::as_u64).unwrap_or(0);
                let arrival = obj.get("arrival").and_then(Value::as_u64).unwrap_or(at);
                let service = obj
                    .get("service_start")
                    .and_then(Value::as_u64)
                    .unwrap_or(at);
                latency.record(at.saturating_sub(arrival));
                queue_delay.record(service.saturating_sub(arrival));
                let vssd = obj.get("vssd").and_then(Value::as_u64).unwrap_or(0);
                let bytes = obj.get("bytes").and_then(Value::as_u64).unwrap_or(0);
                let entry = per_vssd.entry(vssd).or_default();
                entry.completed += 1;
                entry.bytes += bytes;
                if obj.get("read").and_then(Value::as_bool) == Some(true) {
                    entry.reads += 1;
                }
                if by_tenant {
                    let t = per_tenant.entry(vssd).or_default();
                    t.hist
                        .record(SimDuration::from_nanos(at.saturating_sub(arrival)));
                    t.bytes += bytes;
                    t.first_arrival = t.first_arrival.min(arrival);
                    t.last_complete = t.last_complete.max(at);
                }
            }
            "gc_start" => {
                gc_starts += 1;
                if obj.get("emergency").and_then(Value::as_bool) == Some(true) {
                    gc_emergencies += 1;
                }
                gc_live_pages += obj.get("live_pages").and_then(Value::as_u64).unwrap_or(0);
            }
            "gc_end" => {
                gc_busy_ns += obj.get("busy").and_then(Value::as_u64).unwrap_or(0);
            }
            "gsb" => {
                let kind = obj
                    .get("kind")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                *gsb.entry(kind).or_insert(0) += 1;
            }
            "throttle" => throttles += 1,
            "window_flush" => windows += 1,
            "trace_truncated" => {
                evicted += obj.get("dropped").and_then(Value::as_u64).unwrap_or(0);
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {path}\n  {lines} events, sim end {:.3} ms",
        last_ns as f64 / 1e6
    );
    if evicted > 0 {
        let _ = writeln!(
            out,
            "  {evicted} events evicted (trace truncated, ring full)"
        );
    }
    let _ = writeln!(out, "\nevent counts:");
    for (ty, n) in &type_counts {
        let _ = writeln!(out, "  {ty:<18} {n}");
    }
    if latency.count() > 0 {
        let _ = writeln!(out, "\nrequest latency (ns, log2-bucket upper bounds):");
        let _ = writeln!(
            out,
            "  count {}  mean {:.0}  p50 {}  p95 {}  p99 {}  max {}",
            latency.count(),
            latency.mean().unwrap_or(0.0),
            latency.p50().unwrap_or(0),
            latency.p95().unwrap_or(0),
            latency.p99().unwrap_or(0),
            latency.max().unwrap_or(0),
        );
        let _ = writeln!(
            out,
            "queue delay (ns): p50 {}  p99 {}",
            queue_delay.p50().unwrap_or(0),
            queue_delay.p99().unwrap_or(0),
        );
    }
    if !per_vssd.is_empty() {
        let _ = writeln!(out, "\nper-vSSD completions:");
        for (id, s) in &per_vssd {
            let read_pct = if s.completed > 0 {
                100.0 * s.reads as f64 / s.completed as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  vssd{id}: {} requests, {:.1} MiB, {read_pct:.0}% reads",
                s.completed,
                s.bytes as f64 / (1024.0 * 1024.0),
            );
        }
    }
    if by_tenant {
        let _ = writeln!(out, "\nper-tenant latency/throughput (exact buckets):");
        let _ = writeln!(
            out,
            "  {:<8}{:>10}{:>12}{:>12}{:>12}{:>12}",
            "tenant", "ops", "p50 ms", "p95 ms", "p99 ms", "MB/s"
        );
        for (id, t) in &per_tenant {
            let p = |pct: f64| {
                t.hist
                    .percentile(pct)
                    .unwrap_or(SimDuration::ZERO)
                    .as_millis_f64()
            };
            let span_s = t.last_complete.saturating_sub(t.first_arrival) as f64 / 1e9;
            let mbps = if span_s > 0.0 {
                t.bytes as f64 / span_s / 1e6
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<8}{:>10}{:>12.3}{:>12.3}{:>12.3}{:>12.1}",
                format!("t{id}"),
                t.hist.count(),
                p(50.0),
                p(95.0),
                p(99.0),
                mbps
            );
        }
    }
    if gc_starts > 0 || gc_busy_ns > 0 {
        let _ = writeln!(
            out,
            "\ngc: {gc_starts} runs ({gc_emergencies} emergency), {gc_live_pages} live pages migrated, {:.3} ms busy",
            gc_busy_ns as f64 / 1e6
        );
    }
    if !gsb.is_empty() {
        let parts: Vec<String> = gsb.iter().map(|(k, n)| format!("{k} {n}")).collect();
        let _ = writeln!(out, "gsb transitions: {}", parts.join(", "));
    }
    if throttles > 0 {
        let _ = writeln!(out, "token-bucket throttles: {throttles}");
    }
    if windows > 0 {
        let _ = writeln!(out, "window flushes: {windows}");
    }
    print!("{out}");
    ExitCode::SUCCESS
}

/// A tenant's worst violating window by p99, then earliest.
#[derive(Clone, Copy)]
struct WorstWindow {
    p99: u64,
    window: u64,
    ops: u64,
    p95: u64,
    throughput: f64,
    p95_ok: bool,
    p99_ok: bool,
    throughput_ok: bool,
}

/// One tenant's aggregated `slo_window` history.
#[derive(Default)]
struct TenantSloAgg {
    windows: u64,
    violations: u64,
    last_burn: f64,
    longest_streak: u64,
    current_streak: u64,
    worst: Option<WorstWindow>,
}

/// One `fleet_migration` row, sortable.
#[allow(clippy::too_many_arguments)]
struct MigrationRow {
    window: u64,
    tenant: u64,
    from_shard: u64,
    from_slot: u64,
    to_shard: u64,
    to_slot: u64,
    cause: String,
    mean_util: f64,
    src_util: f64,
    dst_util: f64,
    src_util_after: f64,
    dst_util_after: f64,
}

/// Renders the offline fleet-health dashboard from `slo_window` /
/// `fleet_migration` events across all inputs (per-shard stores merge
/// into one view).
fn report(paths: &[&String]) -> ExitCode {
    let mut tenants: BTreeMap<u64, TenantSloAgg> = BTreeMap::new();
    let mut migrations: Vec<MigrationRow> = Vec::new();
    let mut window_flushes = 0u64;
    for path in paths {
        let events = match load_events(path) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("fleetio-obs: {e}");
                return ExitCode::from(2);
            }
        };
        for value in &events {
            let Some(obj) = value.as_object() else {
                continue;
            };
            let u = |k: &str| obj.get(k).and_then(Value::as_u64).unwrap_or(0);
            let f = |k: &str| obj.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            let b = |k: &str| obj.get(k).and_then(Value::as_bool).unwrap_or(false);
            match obj.get("type").and_then(Value::as_str) {
                Some("slo_window") => {
                    let agg = tenants.entry(u("tenant")).or_default();
                    agg.windows += 1;
                    agg.last_burn = f("burn");
                    let ok = b("p95_ok") && b("p99_ok") && b("throughput_ok");
                    if ok {
                        agg.current_streak = 0;
                    } else {
                        agg.violations += 1;
                        agg.current_streak += 1;
                        agg.longest_streak = agg.longest_streak.max(agg.current_streak);
                        let p99 = u("p99");
                        if agg.worst.is_none_or(|w| p99 > w.p99) {
                            agg.worst = Some(WorstWindow {
                                p99,
                                window: u("window"),
                                ops: u("ops"),
                                p95: u("p95"),
                                throughput: f("throughput"),
                                p95_ok: b("p95_ok"),
                                p99_ok: b("p99_ok"),
                                throughput_ok: b("throughput_ok"),
                            });
                        }
                    }
                }
                Some("fleet_migration") => migrations.push(MigrationRow {
                    window: u("window"),
                    tenant: u("tenant"),
                    from_shard: u("from_shard"),
                    from_slot: u("from_slot"),
                    to_shard: u("to_shard"),
                    to_slot: u("to_slot"),
                    cause: obj
                        .get("cause")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    mean_util: f("mean_util"),
                    src_util: f("src_util"),
                    dst_util: f("dst_util"),
                    src_util_after: f("src_util_after"),
                    dst_util_after: f("dst_util_after"),
                }),
                Some("window_flush") => window_flushes += 1,
                _ => {}
            }
        }
    }
    migrations.sort_by(|a, b| {
        (a.window, a.tenant, a.from_shard, a.from_slot).cmp(&(
            b.window,
            b.tenant,
            b.from_shard,
            b.from_slot,
        ))
    });

    let observed: u64 = tenants.values().map(|t| t.windows).sum();
    let violated: u64 = tenants.values().map(|t| t.violations).sum();
    let att = if observed == 0 {
        1.0
    } else {
        (observed - violated) as f64 / observed as f64
    };
    let mut out = String::new();
    let _ = writeln!(out, "FLEET HEALTH REPORT (offline)");
    let _ = writeln!(out, "=============================");
    let _ = writeln!(
        out,
        "inputs: {}  tracked tenants: {}  slo windows: {observed}  violations: {violated}  \
         attainment: {:.1}%  migrations: {}  window flushes: {window_flushes}",
        paths.len(),
        tenants.len(),
        att * 100.0,
        migrations.len()
    );
    let _ = writeln!(out, "\nPER-TENANT SLO ATTAINMENT");
    let _ = writeln!(
        out,
        "{:<8}{:>8}{:>8}{:>8}{:>9}{:>8}",
        "tenant", "windows", "viol", "att%", "streak", "burn"
    );
    for (t, agg) in &tenants {
        let t_att = if agg.windows == 0 {
            1.0
        } else {
            (agg.windows - agg.violations) as f64 / agg.windows as f64
        };
        let _ = writeln!(
            out,
            "{:<8}{:>8}{:>8}{:>7.1}%{:>9}{:>8.3}",
            format!("t{t}"),
            agg.windows,
            agg.violations,
            t_att * 100.0,
            agg.longest_streak,
            agg.last_burn
        );
    }
    let _ = writeln!(out, "\nWORST WINDOWS (per tenant, by p99)");
    let mut any_worst = false;
    for (t, agg) in &tenants {
        let Some(w) = agg.worst else {
            continue;
        };
        any_worst = true;
        let _ = writeln!(
            out,
            "t{t} w{}: p95 {:.3} ms, p99 {:.3} ms, {:.1} MB/s, {} ops \
             [p95_ok={} p99_ok={} tp_ok={}]",
            w.window,
            w.p95 as f64 / 1e6,
            w.p99 as f64 / 1e6,
            w.throughput / 1e6,
            w.ops,
            w.p95_ok,
            w.p99_ok,
            w.throughput_ok
        );
    }
    if !any_worst {
        let _ = writeln!(out, "(no violations)");
    }
    let _ = writeln!(out, "\nMIGRATION TIMELINE");
    if migrations.is_empty() {
        let _ = writeln!(out, "(none)");
    }
    for m in &migrations {
        let _ = writeln!(
            out,
            "w{}: t{} {}/{} -> {}/{} cause={} mean={:.3} src {:.3}->{:.3} dst {:.3}->{:.3}",
            m.window,
            m.tenant,
            m.from_shard,
            m.from_slot,
            m.to_shard,
            m.to_slot,
            m.cause,
            m.mean_util,
            m.src_util,
            m.src_util_after,
            m.dst_util,
            m.dst_util_after
        );
    }
    print!("{out}");
    ExitCode::SUCCESS
}
