//! `fleetio-obs` CLI: turn an event trace into a readable report.
//!
//! Usage: `fleetio-obs summarize <trace.jsonl | store-dir>`
//!
//! The input is either a JSONL trace file or a `fleetio-store` run
//! directory (detected by being a directory): binary segments are
//! decoded and summarized through the exact same aggregation path.
//! Exit code 2 on the first malformed line (reporting its line number)
//! or on a damaged segment (use `fleetio-store verify` to localize).
//! Aggregates: per-type event counts, request latency percentiles,
//! per-vSSD traffic, GC activity, throttles and window flushes.

use std::collections::BTreeMap;
use std::process::ExitCode;

use fleetio_obs::json::{self, Value};
use fleetio_obs::{export, wire, Log2Histogram};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("summarize") => {
            let Some(path) = args.get(2) else {
                eprintln!("usage: fleetio-obs summarize <trace.jsonl | store-dir>");
                return ExitCode::from(2);
            };
            summarize(path)
        }
        _ => {
            eprintln!("usage: fleetio-obs summarize <trace.jsonl | store-dir>");
            ExitCode::from(2)
        }
    }
}

/// Reads the trace as JSONL text: verbatim for a file, decoded from
/// binary segments (in sequence order) for a run-store directory.
fn load_trace(path: &str) -> Result<String, String> {
    if !std::path::Path::new(path).is_dir() {
        return std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    }
    let mut seg_files: Vec<String> = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?
        .filter_map(|entry| entry.ok().and_then(|e| e.file_name().into_string().ok()))
        .filter(|name| name.starts_with("seg-") && name.ends_with(".seg"))
        .collect();
    if seg_files.is_empty() {
        return Err(format!("{path}: no seg-*.seg files (not a run store?)"));
    }
    seg_files.sort();
    let mut events = Vec::new();
    for name in &seg_files {
        let bytes = std::fs::read(format!("{path}/{name}"))
            .map_err(|e| format!("cannot read {path}/{name}: {e}"))?;
        let (segment_events, damage) = wire::events_in_segment(&bytes);
        if let Some(d) = damage {
            return Err(format!(
                "{path}/{name}: {d}; run `fleetio-store verify {path}` to localize the damage"
            ));
        }
        events.extend(segment_events);
    }
    Ok(export::jsonl(events.iter()))
}

#[derive(Default)]
struct VssdStats {
    completed: u64,
    bytes: u64,
    reads: u64,
}

fn summarize(path: &str) -> ExitCode {
    let text = match load_trace(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fleetio-obs: {e}");
            return ExitCode::from(2);
        }
    };

    let mut type_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut latency = Log2Histogram::new();
    let mut queue_delay = Log2Histogram::new();
    let mut per_vssd: BTreeMap<u64, VssdStats> = BTreeMap::new();
    let mut gc_starts = 0u64;
    let mut gc_emergencies = 0u64;
    let mut gc_busy_ns = 0u64;
    let mut gc_live_pages = 0u64;
    let mut gsb: BTreeMap<String, u64> = BTreeMap::new();
    let mut throttles = 0u64;
    let mut windows = 0u64;
    let mut evicted = 0u64;
    let mut lines = 0u64;
    let mut last_ns = 0u64;

    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let value = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("fleetio-obs: {path}:{}: invalid JSON: {e}", idx + 1);
                return ExitCode::from(2);
            }
        };
        lines += 1;
        let Some(obj) = value.as_object() else {
            eprintln!("fleetio-obs: {path}:{}: line is not a JSON object", idx + 1);
            return ExitCode::from(2);
        };
        let ty = obj
            .get("type")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        *type_counts.entry(ty.clone()).or_insert(0) += 1;
        for key in ["at", "end", "start"] {
            if let Some(ns) = obj.get(key).and_then(Value::as_u64) {
                last_ns = last_ns.max(ns);
            }
        }
        match ty.as_str() {
            "request_complete" => {
                let at = obj.get("at").and_then(Value::as_u64).unwrap_or(0);
                let arrival = obj.get("arrival").and_then(Value::as_u64).unwrap_or(at);
                let service = obj
                    .get("service_start")
                    .and_then(Value::as_u64)
                    .unwrap_or(at);
                latency.record(at.saturating_sub(arrival));
                queue_delay.record(service.saturating_sub(arrival));
                let vssd = obj.get("vssd").and_then(Value::as_u64).unwrap_or(0);
                let entry = per_vssd.entry(vssd).or_default();
                entry.completed += 1;
                entry.bytes += obj.get("bytes").and_then(Value::as_u64).unwrap_or(0);
                if obj.get("read").and_then(Value::as_bool) == Some(true) {
                    entry.reads += 1;
                }
            }
            "gc_start" => {
                gc_starts += 1;
                if obj.get("emergency").and_then(Value::as_bool) == Some(true) {
                    gc_emergencies += 1;
                }
                gc_live_pages += obj.get("live_pages").and_then(Value::as_u64).unwrap_or(0);
            }
            "gc_end" => {
                gc_busy_ns += obj.get("busy").and_then(Value::as_u64).unwrap_or(0);
            }
            "gsb" => {
                let kind = obj
                    .get("kind")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                *gsb.entry(kind).or_insert(0) += 1;
            }
            "throttle" => throttles += 1,
            "window_flush" => windows += 1,
            "trace_truncated" => {
                evicted += obj.get("dropped").and_then(Value::as_u64).unwrap_or(0);
            }
            _ => {}
        }
    }

    println!(
        "trace: {path}\n  {lines} events, sim end {:.3} ms",
        last_ns as f64 / 1e6
    );
    if evicted > 0 {
        println!("  {evicted} events evicted (trace truncated, ring full)");
    }
    println!();
    println!("event counts:");
    for (ty, n) in &type_counts {
        println!("  {ty:<18} {n}");
    }
    if latency.count() > 0 {
        println!();
        println!("request latency (ns, log2-bucket upper bounds):");
        println!(
            "  count {}  mean {:.0}  p50 {}  p95 {}  p99 {}  max {}",
            latency.count(),
            latency.mean().unwrap_or(0.0),
            latency.p50().unwrap_or(0),
            latency.p95().unwrap_or(0),
            latency.p99().unwrap_or(0),
            latency.max().unwrap_or(0),
        );
        println!(
            "queue delay (ns): p50 {}  p99 {}",
            queue_delay.p50().unwrap_or(0),
            queue_delay.p99().unwrap_or(0),
        );
    }
    if !per_vssd.is_empty() {
        println!();
        println!("per-vSSD completions:");
        for (id, s) in &per_vssd {
            let read_pct = if s.completed > 0 {
                100.0 * s.reads as f64 / s.completed as f64
            } else {
                0.0
            };
            println!(
                "  vssd{id}: {} requests, {:.1} MiB, {read_pct:.0}% reads",
                s.completed,
                s.bytes as f64 / (1024.0 * 1024.0),
            );
        }
    }
    if gc_starts > 0 || gc_busy_ns > 0 {
        println!();
        println!(
            "gc: {gc_starts} runs ({gc_emergencies} emergency), {gc_live_pages} live pages migrated, {:.3} ms busy",
            gc_busy_ns as f64 / 1e6
        );
    }
    if !gsb.is_empty() {
        let parts: Vec<String> = gsb.iter().map(|(k, n)| format!("{k} {n}")).collect();
        println!("gsb transitions: {}", parts.join(", "));
    }
    if throttles > 0 {
        println!("token-bucket throttles: {throttles}");
    }
    if windows > 0 {
        println!("window flushes: {windows}");
    }
    ExitCode::SUCCESS
}
