//! Per-tenant SLO accounting over decision windows.
//!
//! A tenant's service-level objective is three numbers — a p95 latency
//! target, a p99 latency target, and a throughput floor — evaluated
//! once per decision window against the window's **exact-bucket**
//! latency histogram ([`fleetio_des::LatencyHistogram`]) and byte
//! count. Everything here is pure arithmetic over simulated-time
//! inputs: no clocks, no allocation after construction, so same-seed
//! runs produce bit-identical verdicts regardless of worker count.
//!
//! The [`SloTracker`] keeps the running picture the fleet health
//! report renders: attainment fraction, violation windows and streaks,
//! the worst window seen so far, and a burn-rate-style rolling
//! violation fraction over the last [`BURN_WINDOWS`] windows (a fixed
//! ring — a run of any length costs constant memory).

use fleetio_des::{LatencyHistogram, SimDuration};

/// Rolling horizon (in windows) of the burn-rate ring.
pub const BURN_WINDOWS: usize = 8;

/// A tenant's service-level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// The window's p95 latency must not exceed this.
    pub p95_target: SimDuration,
    /// The window's p99 latency must not exceed this.
    pub p99_target: SimDuration,
    /// The window's average throughput (bytes/second) must reach this;
    /// zero disables the floor.
    pub throughput_floor: f64,
}

impl SloSpec {
    /// A latency-only objective (no throughput floor).
    pub fn latency(p95_target: SimDuration, p99_target: SimDuration) -> Self {
        SloSpec {
            p95_target,
            p99_target,
            throughput_floor: 0.0,
        }
    }

    /// Adds a throughput floor in bytes/second.
    pub fn with_throughput_floor(mut self, floor: f64) -> Self {
        self.throughput_floor = floor;
        self
    }

    /// Rejects non-finite or negative targets.
    pub fn validate(&self) -> Result<(), String> {
        if self.p95_target.is_zero() || self.p99_target.is_zero() {
            return Err("SLO latency targets must be positive".into());
        }
        if self.p99_target < self.p95_target {
            return Err("p99 target must be at least the p95 target".into());
        }
        if !self.throughput_floor.is_finite() || self.throughput_floor < 0.0 {
            return Err("throughput floor must be finite and non-negative".into());
        }
        Ok(())
    }
}

/// One window's SLO evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowVerdict {
    /// Window index (0-based).
    pub window: u32,
    /// Operations completed this window.
    pub ops: u64,
    /// Exact-bucket p95 latency (zero when the window was idle).
    pub p95: SimDuration,
    /// Exact-bucket p99 latency (zero when the window was idle).
    pub p99: SimDuration,
    /// Average throughput over the window, bytes/second.
    pub throughput: f64,
    /// p95 within target (idle windows attain trivially).
    pub p95_ok: bool,
    /// p99 within target (idle windows attain trivially).
    pub p99_ok: bool,
    /// Throughput at or above the floor.
    pub throughput_ok: bool,
}

impl WindowVerdict {
    /// All three objectives held.
    pub fn attained(&self) -> bool {
        self.p95_ok && self.p99_ok && self.throughput_ok
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    num as f64 / den as f64
}

/// Running SLO account for one tenant. Feed it one window at a time
/// (in window order) via [`SloTracker::observe`].
#[derive(Debug, Clone)]
pub struct SloTracker {
    spec: SloSpec,
    observed: u32,
    violated: u32,
    current_streak: u32,
    longest_streak: u32,
    worst: Option<(f64, WindowVerdict)>,
    ring: [bool; BURN_WINDOWS],
    ring_len: usize,
    ring_head: usize,
}

impl SloTracker {
    /// A fresh tracker for `spec`.
    pub fn new(spec: SloSpec) -> Self {
        SloTracker {
            spec,
            observed: 0,
            violated: 0,
            current_streak: 0,
            longest_streak: 0,
            worst: None,
            ring: [false; BURN_WINDOWS],
            ring_len: 0,
            ring_head: 0,
        }
    }

    /// The objective being tracked.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Evaluates one window: `hist` is the window's request-latency
    /// histogram, `bytes` the bytes moved, `len` the window length.
    /// Idle windows (no completed operations) attain trivially — a
    /// tenant between job phases or mid-migration offered no load, so
    /// neither the latency targets nor the throughput floor can say
    /// anything about how it was served.
    pub fn observe(
        &mut self,
        window: u32,
        hist: &LatencyHistogram,
        bytes: u64,
        len: SimDuration,
    ) -> WindowVerdict {
        let p95 = hist.percentile(95.0).unwrap_or(SimDuration::ZERO);
        let p99 = hist.percentile(99.0).unwrap_or(SimDuration::ZERO);
        let secs = len.as_secs_f64();
        let throughput = if secs > 0.0 { bytes as f64 / secs } else { 0.0 };
        let idle = hist.count() == 0;
        let verdict = WindowVerdict {
            window,
            ops: hist.count(),
            p95,
            p99,
            throughput,
            p95_ok: p95 <= self.spec.p95_target,
            p99_ok: p99 <= self.spec.p99_target,
            throughput_ok: idle
                || self.spec.throughput_floor <= 0.0
                || throughput >= self.spec.throughput_floor,
        };
        self.account(&verdict);
        verdict
    }

    fn account(&mut self, v: &WindowVerdict) {
        self.observed += 1;
        let violated = !v.attained();
        if violated {
            self.violated += 1;
            self.current_streak += 1;
            self.longest_streak = self.longest_streak.max(self.current_streak);
            let severity = self.severity_of(v);
            let replace = match &self.worst {
                // Strict `>` keeps the earliest window on exact ties.
                Some((s, _)) => severity > *s,
                None => true,
            };
            if replace {
                self.worst = Some((severity, *v));
            }
        } else {
            self.current_streak = 0;
        }
        self.ring[self.ring_head] = violated;
        self.ring_head = (self.ring_head + 1) % BURN_WINDOWS;
        self.ring_len = (self.ring_len + 1).min(BURN_WINDOWS);
    }

    /// Miss ratio of the worst objective in `v` (1.0 = exactly at
    /// target, 2.0 = twice the latency target or half the floor).
    fn severity_of(&self, v: &WindowVerdict) -> f64 {
        let mut s = ratio(v.p95.as_nanos(), self.spec.p95_target.as_nanos().max(1));
        s = s.max(ratio(
            v.p99.as_nanos(),
            self.spec.p99_target.as_nanos().max(1),
        ));
        if self.spec.throughput_floor > 0.0 {
            let tp = v.throughput.max(f64::MIN_POSITIVE);
            s = s.max(self.spec.throughput_floor / tp);
        }
        s
    }

    /// Windows evaluated so far.
    pub fn observed(&self) -> u32 {
        self.observed
    }

    /// Windows that violated the objective.
    pub fn violations(&self) -> u32 {
        self.violated
    }

    /// Fraction of observed windows that attained the objective
    /// (1.0 before any window is observed).
    pub fn attainment(&self) -> f64 {
        if self.observed == 0 {
            1.0
        } else {
            f64::from(self.observed - self.violated) / f64::from(self.observed)
        }
    }

    /// Longest consecutive run of violating windows.
    pub fn longest_streak(&self) -> u32 {
        self.longest_streak
    }

    /// Violating fraction of the last [`BURN_WINDOWS`] windows — the
    /// burn rate an operator would alert on (0.0 before any window).
    pub fn burn_rate(&self) -> f64 {
        if self.ring_len == 0 {
            return 0.0;
        }
        let hot = self.ring[..self.ring_len].iter().filter(|v| **v).count();
        hot as f64 / self.ring_len as f64
    }

    /// The most severely violating window so far, by
    /// worst-objective miss ratio (earliest wins ties).
    pub fn worst_window(&self) -> Option<&WindowVerdict> {
        self.worst.as_ref().map(|(_, v)| v)
    }

    /// The worst window's miss ratio (see [`SloTracker::worst_window`]).
    pub fn worst_severity(&self) -> Option<f64> {
        self.worst.as_ref().map(|(s, _)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec::latency(SimDuration::from_millis(2), SimDuration::from_millis(5))
            .with_throughput_floor(1000.0)
    }

    fn hist(lat: SimDuration, n: u64) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for _ in 0..n {
            h.record(lat);
        }
        h
    }

    #[test]
    fn attaining_window_counts_as_attained() {
        let mut t = SloTracker::new(spec());
        let v = t.observe(
            0,
            &hist(SimDuration::from_micros(500), 100),
            1_000_000,
            SimDuration::from_millis(500),
        );
        assert!(v.attained(), "{v:?}");
        assert_eq!(t.violations(), 0);
        assert_eq!(t.attainment(), 1.0);
        assert_eq!(t.burn_rate(), 0.0);
        assert!(t.worst_window().is_none());
    }

    #[test]
    fn latency_violation_is_tracked_with_streaks_and_worst_window() {
        let mut t = SloTracker::new(spec());
        // Two violating windows (the second worse), then recovery.
        t.observe(
            0,
            &hist(SimDuration::from_millis(10), 10),
            1_000_000,
            SimDuration::from_millis(500),
        );
        t.observe(
            1,
            &hist(SimDuration::from_millis(40), 10),
            1_000_000,
            SimDuration::from_millis(500),
        );
        let v = t.observe(
            2,
            &hist(SimDuration::from_micros(200), 10),
            1_000_000,
            SimDuration::from_millis(500),
        );
        assert!(v.attained());
        assert_eq!(t.observed(), 3);
        assert_eq!(t.violations(), 2);
        assert_eq!(t.longest_streak(), 2);
        assert!((t.attainment() - 1.0 / 3.0).abs() < 1e-12);
        let worst = t.worst_window().expect("worst window recorded");
        assert_eq!(worst.window, 1, "later, worse window wins");
        assert!((t.burn_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_floor_violates_even_when_latency_is_fine() {
        let mut t = SloTracker::new(spec());
        let v = t.observe(
            0,
            &hist(SimDuration::from_micros(100), 4),
            100, // 200 B/s over a 500 ms window — below the 1000 B/s floor
            SimDuration::from_millis(500),
        );
        assert!(v.p95_ok && v.p99_ok && !v.throughput_ok);
        assert!(!v.attained());
    }

    #[test]
    fn idle_window_attains_trivially_even_with_a_floor() {
        let empty = LatencyHistogram::new();
        let mut with_floor = SloTracker::new(spec());
        let v = with_floor.observe(0, &empty, 0, SimDuration::from_millis(500));
        assert!(
            v.attained(),
            "no offered load says nothing about service: {v:?}"
        );

        // A non-idle window below the floor still violates.
        let v = with_floor.observe(
            1,
            &hist(SimDuration::from_micros(100), 4),
            100,
            SimDuration::from_millis(500),
        );
        assert!(!v.throughput_ok && !v.attained());
    }

    #[test]
    fn burn_rate_forgets_beyond_the_ring() {
        let mut t = SloTracker::new(spec());
        // One violation, then BURN_WINDOWS clean windows push it out.
        t.observe(
            0,
            &hist(SimDuration::from_millis(50), 5),
            1_000_000,
            SimDuration::from_millis(500),
        );
        for w in 1..=(BURN_WINDOWS as u32) {
            t.observe(
                w,
                &hist(SimDuration::from_micros(100), 5),
                1_000_000,
                SimDuration::from_millis(500),
            );
        }
        assert_eq!(t.burn_rate(), 0.0, "violation aged out of the ring");
        assert_eq!(t.violations(), 1, "lifetime count is unaffected");
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(spec().validate().is_ok());
        let zero = SloSpec::latency(SimDuration::ZERO, SimDuration::from_millis(1));
        assert!(zero.validate().is_err());
        let inverted = SloSpec::latency(SimDuration::from_millis(5), SimDuration::from_millis(2));
        assert!(inverted.validate().is_err());
        let nan = spec().with_throughput_floor(f64::NAN);
        assert!(nan.validate().is_err());
    }

    #[test]
    fn same_inputs_produce_identical_trackers() {
        let run = || {
            let mut t = SloTracker::new(spec());
            for w in 0..20u32 {
                let lat = SimDuration::from_micros(u64::from(w) * 397 + 50);
                t.observe(
                    w,
                    &hist(lat, 7),
                    u64::from(w) * 100_000,
                    SimDuration::from_millis(500),
                );
            }
            (
                t.attainment().to_bits(),
                t.burn_rate().to_bits(),
                t.violations(),
                t.longest_streak(),
                t.worst_window().copied(),
            )
        };
        assert_eq!(run(), run());
    }
}
