//! Exporters: JSONL event dumps and Chrome `trace_event` JSON.
//!
//! The Chrome format is the subset `chrome://tracing` and Perfetto load:
//! a `{"traceEvents": [...]}` document of complete spans (`ph:"X"`),
//! counters (`ph:"C"`), instants (`ph:"i"`) and name metadata (`ph:"M"`).
//! Timestamps are microseconds; we render nanosecond [`SimTime`]s as
//! `µs.nnn` strings via integer math so output never depends on float
//! formatting.
//!
//! Track layout:
//! * pid 1 `device` — one thread per (channel, chip): NAND op spans.
//! * pid 2 `bus` — one thread per channel: time-sliced bus grants and
//!   throttle instants.
//! * pid 3 `gc` — one thread per channel: GC job spans (paired by job
//!   id) and emergency-GC instants.
//! * pid 4 `requests` — one thread per vSSD: request arrival→completion
//!   spans and per-window counter series.
//! * pid 5 `host` — aggregated host-time profiler spans (wall clock, not
//!   sim time), present only via [`chrome_trace_with_host`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use fleetio_des::SimTime;

use crate::event::{NandKind, ObsEvent};
use crate::prof::ProfReport;

const PID_DEVICE: u32 = 1;
const PID_BUS: u32 = 2;
const PID_GC: u32 = 3;
const PID_REQUESTS: u32 = 4;
const PID_HOST: u32 = 5;

/// Renders events as JSONL, one event per line, in emission order.
pub fn jsonl<'a, I>(events: I) -> String
where
    I: IntoIterator<Item = &'a ObsEvent>,
{
    let mut out = String::new();
    for ev in events {
        ev.write_json(&mut out);
        out.push('\n');
    }
    out
}

/// Writes a nanosecond timestamp as fractional microseconds (`ts` /
/// `dur` fields) using integer math only.
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn span(out: &mut String, name: &str, pid: u32, tid: u64, start: SimTime, end: SimTime) {
    let start_ns = start.as_nanos();
    let dur_ns = end.saturating_since(start).as_nanos();
    let _ = write!(
        out,
        "{{\"ph\":\"X\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":{tid},\"ts\":"
    );
    write_us(out, start_ns);
    out.push_str(",\"dur\":");
    write_us(out, dur_ns);
    out.push_str("},\n");
}

fn instant(out: &mut String, name: &str, pid: u32, tid: u64, at: SimTime) {
    let _ = write!(
        out,
        "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":{tid},\"ts\":"
    );
    write_us(out, at.as_nanos());
    out.push_str("},\n");
}

fn counter(
    out: &mut String,
    name: &str,
    pid: u32,
    tid: u64,
    at: SimTime,
    series: &str,
    value: u64,
) {
    let _ = write!(
        out,
        "{{\"ph\":\"C\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":{tid},\"ts\":"
    );
    write_us(out, at.as_nanos());
    let _ = writeln!(out, ",\"args\":{{\"{series}\":{value}}}}},");
}

fn process_name(out: &mut String, pid: u32, name: &str) {
    let _ = writeln!(
        out,
        "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{name}\"}}}},"
    );
}

fn thread_name(out: &mut String, pid: u32, tid: u64, name: &str) {
    let _ = writeln!(
        out,
        "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{name}\"}}}},"
    );
}

/// Device-track thread id for a (channel, chip) pair.
fn device_tid(channel: u16, chip: u16) -> u64 {
    u64::from(channel) * 1000 + u64::from(chip)
}

/// Renders events as a Chrome `trace_event` JSON document.
///
/// GC spans are reconstructed by pairing `GcStart`/`GcEnd` on job id;
/// unmatched starts (run still in flight, or emergency GC) render as
/// instants so nothing is silently dropped.
pub fn chrome_trace<'a, I>(events: I) -> String
where
    I: IntoIterator<Item = &'a ObsEvent>,
{
    chrome_trace_impl(events, None)
}

/// Like [`chrome_trace`], plus a `host` process (pid 5) carrying the
/// host-time profiler's aggregated spans next to the sim-time tracks.
///
/// Profiler spans are aggregates, not raw events, so each one renders as
/// a single synthetic `X` span with `dur` equal to its total wall time,
/// nested inside its parent by cumulative offset from time zero. The
/// track shows *where host time went*, not when; its timestamps share an
/// axis with sim time only by construction.
pub fn chrome_trace_with_host<'a, I>(events: I, prof: &ProfReport) -> String
where
    I: IntoIterator<Item = &'a ObsEvent>,
{
    chrome_trace_impl(events, Some(prof))
}

fn chrome_trace_impl<'a, I>(events: I, prof: Option<&ProfReport>) -> String
where
    I: IntoIterator<Item = &'a ObsEvent>,
{
    let mut out = String::from("{\"traceEvents\":[\n");
    process_name(&mut out, PID_DEVICE, "device");
    process_name(&mut out, PID_BUS, "bus");
    process_name(&mut out, PID_GC, "gc");
    process_name(&mut out, PID_REQUESTS, "requests");

    // (pid, tid) pairs that need thread_name metadata, named lazily so
    // only tracks that carry events appear in the viewer.
    let mut named: BTreeMap<(u32, u64), String> = BTreeMap::new();
    // Open GC jobs: job id -> start event fields.
    let mut gc_open: BTreeMap<u64, (SimTime, u16, u16)> = BTreeMap::new();

    for ev in events {
        match *ev {
            ObsEvent::NandOp {
                start,
                end,
                channel,
                chip,
                kind,
                gc,
                ..
            } => match kind {
                NandKind::BusGrant => {
                    let tid = u64::from(channel);
                    named
                        .entry((PID_BUS, tid))
                        .or_insert_with(|| format!("chan{channel}"));
                    span(&mut out, "bus_grant", PID_BUS, tid, start, end);
                }
                _ => {
                    let tid = device_tid(channel, chip);
                    named
                        .entry((PID_DEVICE, tid))
                        .or_insert_with(|| format!("chan{channel}/chip{chip}"));
                    let name = match (kind, gc) {
                        (NandKind::Read, true) => "gc_read",
                        (NandKind::Read, false) => "read",
                        (NandKind::Program, true) => "gc_program",
                        (NandKind::Program, false) => "program",
                        (NandKind::ChipOccupy, _) => "chip_occupy",
                        (NandKind::BusGrant, _) => unreachable!(),
                    };
                    span(&mut out, name, PID_DEVICE, tid, start, end);
                }
            },
            ObsEvent::GcStart {
                at,
                job,
                channel,
                chip,
                emergency,
                ..
            } => {
                let tid = u64::from(channel);
                named
                    .entry((PID_GC, tid))
                    .or_insert_with(|| format!("chan{channel}"));
                match job {
                    Some(j) if !emergency => {
                        gc_open.insert(j, (at, channel, chip));
                    }
                    _ => instant(&mut out, "gc_emergency", PID_GC, tid, at),
                }
            }
            ObsEvent::GcEnd {
                at, job, channel, ..
            } => {
                let tid = u64::from(channel);
                named
                    .entry((PID_GC, tid))
                    .or_insert_with(|| format!("chan{channel}"));
                if let Some((start, ch, _chip)) = gc_open.remove(&job) {
                    span(&mut out, "gc", PID_GC, u64::from(ch), start, at);
                } else {
                    instant(&mut out, "gc_end", PID_GC, tid, at);
                }
            }
            ObsEvent::RequestComplete {
                at,
                vssd,
                read,
                arrival,
                ..
            } => {
                let tid = u64::from(vssd);
                named
                    .entry((PID_REQUESTS, tid))
                    .or_insert_with(|| format!("vssd{vssd}"));
                let name = if read { "read_req" } else { "write_req" };
                span(&mut out, name, PID_REQUESTS, tid, arrival, at);
            }
            ObsEvent::Throttle { at, channel, .. } => {
                let tid = u64::from(channel);
                named
                    .entry((PID_BUS, tid))
                    .or_insert_with(|| format!("chan{channel}"));
                instant(&mut out, "throttle", PID_BUS, tid, at);
            }
            ObsEvent::WindowFlush {
                at,
                vssd,
                total_ops,
                total_bytes,
                ..
            } => {
                let tid = u64::from(vssd);
                named
                    .entry((PID_REQUESTS, tid))
                    .or_insert_with(|| format!("vssd{vssd}"));
                counter(
                    &mut out,
                    &format!("vssd{vssd}.window_ops"),
                    PID_REQUESTS,
                    tid,
                    at,
                    "ops",
                    total_ops,
                );
                counter(
                    &mut out,
                    &format!("vssd{vssd}.window_bytes"),
                    PID_REQUESTS,
                    tid,
                    at,
                    "bytes",
                    total_bytes,
                );
            }
            ObsEvent::GsbTransition { at, gsb, kind, .. } => {
                // gSB transitions appear on the GC process's tid 0 track.
                named
                    .entry((PID_GC, 0))
                    .or_insert_with(|| "gsb".to_string());
                instant(&mut out, &format!("gsb{gsb}_{}", kind.tag()), PID_GC, 0, at);
            }
            ObsEvent::ModelLifecycle { at, kind, .. } => {
                // Model lifecycle events live on the GC process's tid 0
                // track alongside other cluster-wide transitions.
                named
                    .entry((PID_GC, 0))
                    .or_insert_with(|| "gsb".to_string());
                instant(&mut out, &format!("model_{}", kind.tag()), PID_GC, 0, at);
            }
            ObsEvent::SloWindow {
                at,
                tenant,
                window,
                p95_ok,
                p99_ok,
                throughput_ok,
                ..
            } => {
                // Only violations are worth a mark in the timeline; the
                // JSONL export retains every verdict.
                if !(p95_ok && p99_ok && throughput_ok) {
                    named
                        .entry((PID_GC, 0))
                        .or_insert_with(|| "gsb".to_string());
                    instant(
                        &mut out,
                        &format!("slo_violation_t{tenant}_w{window}"),
                        PID_GC,
                        0,
                        at,
                    );
                }
            }
            ObsEvent::FleetMigration {
                at,
                tenant,
                from_shard,
                to_shard,
                ..
            } => {
                named
                    .entry((PID_GC, 0))
                    .or_insert_with(|| "gsb".to_string());
                instant(
                    &mut out,
                    &format!("migrate_t{tenant}_s{from_shard}_to_s{to_shard}"),
                    PID_GC,
                    0,
                    at,
                );
            }
            // Per-request bookkeeping events add noise in the timeline
            // view; the JSONL export retains them in full.
            ObsEvent::RequestSubmit { .. }
            | ObsEvent::RequestAdmit { .. }
            | ObsEvent::ChipIssue { .. } => {}
        }
    }

    // GC jobs still open at export time render as instants.
    for (_, (start, ch, _chip)) in gc_open {
        instant(&mut out, "gc_open", PID_GC, u64::from(ch), start);
    }

    for ((pid, tid), name) in named {
        thread_name(&mut out, pid, tid, &name);
    }

    if let Some(report) = prof {
        host_track(&mut out, report);
    }

    // Drop the final ",\n" and close the document.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Appends the aggregated host-time spans as pid 5. Layout: siblings are
/// laid out sequentially from their parent's start offset, so nesting in
/// the viewer mirrors the call tree and widths are proportional to total
/// wall time.
fn host_track(out: &mut String, report: &ProfReport) {
    if report.spans.is_empty() {
        return;
    }
    process_name(out, PID_HOST, "host (profiler)");
    thread_name(out, PID_HOST, 0, "aggregated spans");
    // Next free offset inside each span (keyed by path); the empty path
    // is the root cursor.
    let mut cursor: BTreeMap<Vec<String>, u64> = BTreeMap::new();
    for s in &report.spans {
        let parent = s.path[..s.path.len() - 1].to_vec();
        let start = cursor.get(&parent).copied().unwrap_or(0);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{PID_HOST},\"tid\":0,\"ts\":",
            s.name()
        );
        write_us(out, start);
        out.push_str(",\"dur\":");
        write_us(out, s.stats.total_ns);
        out.push_str("},\n");
        // Children begin at this span's start; the next sibling follows
        // this span's extent.
        cursor.insert(s.path.clone(), start);
        cursor.insert(parent, start + s.stats.total_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prof::{ProfSpan, SpanStats};
    use fleetio_des::SimDuration;

    #[test]
    fn jsonl_is_one_line_per_event() {
        let events = [
            ObsEvent::Throttle {
                at: SimTime::from_nanos(10),
                channel: 0,
                until: SimTime::from_nanos(20),
            },
            ObsEvent::Throttle {
                at: SimTime::from_nanos(30),
                channel: 1,
                until: SimTime::from_nanos(40),
            },
        ];
        let text = jsonl(events.iter());
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            crate::json::parse(line).expect("line parses");
        }
    }

    #[test]
    fn microsecond_rendering_uses_integer_math() {
        let mut s = String::new();
        write_us(&mut s, 1_234_567);
        assert_eq!(s, "1234.567");
        s.clear();
        write_us(&mut s, 999);
        assert_eq!(s, "0.999");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_paired_gc_span() {
        let events = [
            ObsEvent::NandOp {
                start: SimTime::from_micros(1),
                end: SimTime::from_micros(5),
                vssd: 0,
                channel: 2,
                chip: 3,
                kind: NandKind::Read,
                gc: false,
                bytes: 4096,
            },
            ObsEvent::GcStart {
                at: SimTime::from_micros(2),
                job: Some(7),
                vssd: 0,
                channel: 2,
                chip: 3,
                live_pages: 4,
                emergency: false,
            },
            ObsEvent::GcEnd {
                at: SimTime::from_micros(9),
                job: 7,
                vssd: 0,
                channel: 2,
                chip: 3,
                busy: SimDuration::from_micros(7),
            },
            ObsEvent::RequestComplete {
                at: SimTime::from_micros(6),
                req: 1,
                vssd: 1,
                read: true,
                bytes: 4096,
                arrival: SimTime::from_micros(1),
                service_start: SimTime::from_micros(2),
            },
        ];
        let doc = chrome_trace(events.iter());
        let v = crate::json::parse(&doc).expect("trace parses as JSON");
        let arr = v
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(|t| t.as_array())
            .expect("traceEvents array");
        // 4 process_name + nand span + gc span + request span + 3
        // thread_name (device chan2/chip3, gc chan2, requests vssd1).
        assert_eq!(arr.len(), 10);
        let gc = arr
            .iter()
            .find(|e| {
                e.as_object()
                    .and_then(|o| o.get("name"))
                    .and_then(|n| n.as_str())
                    == Some("gc")
            })
            .expect("paired gc span present");
        let obj = gc.as_object().unwrap();
        assert_eq!(obj.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(obj.get("dur").and_then(|d| d.as_f64()), Some(7.0));
    }

    #[test]
    fn host_track_nests_profiler_spans_by_cumulative_offset() {
        let report = ProfReport {
            spans: vec![
                ProfSpan {
                    path: vec!["run".into()],
                    stats: SpanStats {
                        calls: 1,
                        total_ns: 5_000,
                        child_ns: 3_000,
                        ..Default::default()
                    },
                },
                ProfSpan {
                    path: vec!["run".into(), "dispatch".into()],
                    stats: SpanStats {
                        calls: 2,
                        total_ns: 2_000,
                        ..Default::default()
                    },
                },
                ProfSpan {
                    path: vec!["run".into(), "flush".into()],
                    stats: SpanStats {
                        calls: 1,
                        total_ns: 1_000,
                        ..Default::default()
                    },
                },
            ],
        };
        let doc = chrome_trace_with_host(std::iter::empty(), &report);
        let v = crate::json::parse(&doc).expect("trace parses as JSON");
        let arr = v
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(|t| t.as_array())
            .expect("traceEvents array");
        let find = |name: &str| {
            arr.iter()
                .map(|e| e.as_object().expect("object"))
                .find(|o| o.get("name").and_then(|n| n.as_str()) == Some(name))
                .unwrap_or_else(|| panic!("span {name} present"))
        };
        let run = find("run");
        let dispatch = find("dispatch");
        let flush = find("flush");
        // run [0, 5); dispatch nests at run's start, flush follows it.
        assert_eq!(run.get("ts").and_then(|t| t.as_f64()), Some(0.0));
        assert_eq!(run.get("dur").and_then(|t| t.as_f64()), Some(5.0));
        assert_eq!(dispatch.get("ts").and_then(|t| t.as_f64()), Some(0.0));
        assert_eq!(flush.get("ts").and_then(|t| t.as_f64()), Some(2.0));
        assert_eq!(flush.get("dur").and_then(|t| t.as_f64()), Some(1.0));
        // Plain chrome_trace emits no host pid at all.
        assert!(!chrome_trace(std::iter::empty()).contains("\"pid\":5"));
    }

    #[test]
    fn unmatched_gc_start_renders_as_instant() {
        let events = [ObsEvent::GcStart {
            at: SimTime::from_micros(2),
            job: Some(1),
            vssd: 0,
            channel: 0,
            chip: 0,
            live_pages: 0,
            emergency: false,
        }];
        let doc = chrome_trace(events.iter());
        crate::json::parse(&doc).expect("trace parses as JSON");
        assert!(doc.contains("gc_open"));
    }
}
