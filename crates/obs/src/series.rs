//! Fixed-capacity windowed time-series, one flat ring per metric.
//!
//! The fleet records one point per metric per decision window —
//! per-tenant latency percentiles, per-shard utilization and queue
//! depth, harvest and GC rates. Capacities are fixed at registration,
//! so the steady state allocates nothing: when a ring is full the
//! oldest point is overwritten and a drop counter ticks (surfaced by
//! the exporters — a truncated series never silently reads as a
//! complete one).
//!
//! Points are `(window, f64)` pairs keyed by window index, not wall
//! time; rendering is a pure function of the recorded bits, so a
//! same-seed run exports byte-identical CSV/JSONL regardless of worker
//! count.

use std::fmt::Write as _;

/// Handle returned by [`SeriesSet::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

#[derive(Debug, Clone)]
struct Series {
    name: String,
    /// Ring capacity; `windows`/`values` are pre-sized to this.
    cap: usize,
    windows: Vec<u32>,
    values: Vec<f64>,
    /// Next write position.
    head: usize,
    /// Live points, `≤ cap`.
    len: usize,
    /// Points overwritten after the ring filled.
    dropped: u64,
}

/// A set of named fixed-capacity series. Registration order is the
/// export order.
#[derive(Debug, Clone, Default)]
pub struct SeriesSet {
    series: Vec<Series>,
}

impl SeriesSet {
    /// An empty set.
    pub fn new() -> Self {
        SeriesSet::default()
    }

    /// Registers a series and pre-allocates its ring.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn register(&mut self, name: &str, capacity: usize) -> SeriesId {
        assert!(capacity > 0, "series capacity must be positive");
        self.series.push(Series {
            name: name.to_string(),
            cap: capacity,
            windows: vec![0; capacity],
            values: vec![0.0; capacity],
            head: 0,
            len: 0,
            dropped: 0,
        });
        SeriesId(self.series.len() - 1)
    }

    /// Appends one point; overwrites the oldest when the ring is full.
    pub fn push(&mut self, id: SeriesId, window: u32, value: f64) {
        let s = &mut self.series[id.0];
        s.windows[s.head] = window;
        s.values[s.head] = value;
        s.head = (s.head + 1) % s.cap;
        if s.len == s.cap {
            s.dropped += 1;
        } else {
            s.len += 1;
        }
    }

    /// Number of registered series.
    pub fn n_series(&self) -> usize {
        self.series.len()
    }

    /// The registered name of `id`.
    pub fn name(&self, id: SeriesId) -> &str {
        &self.series[id.0].name
    }

    /// Points of `id`, oldest → newest.
    pub fn points(&self, id: SeriesId) -> impl Iterator<Item = (u32, f64)> + '_ {
        let s = &self.series[id.0];
        let start = if s.len == s.cap { s.head } else { 0 };
        (0..s.len).map(move |i| {
            let idx = (start + i) % s.cap;
            (s.windows[idx], s.values[idx])
        })
    }

    /// Total points overwritten across all series (0 = nothing lost).
    pub fn total_dropped(&self) -> u64 {
        self.series.iter().map(|s| s.dropped).sum()
    }

    /// CSV export: `series,window,value` rows in registration order,
    /// oldest point first. A final comment row reports drops, if any.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,window,value\n");
        for (i, s) in self.series.iter().enumerate() {
            for (w, v) in self.points(SeriesId(i)) {
                let _ = writeln!(out, "{},{},{}", s.name, w, finite(v));
            }
        }
        if self.total_dropped() > 0 {
            let _ = writeln!(out, "# dropped_points,{},", self.total_dropped());
        }
        out
    }

    /// JSONL export: one `{"series":…,"window":…,"value":…}` object per
    /// point, registration order, oldest first; a trailing meta object
    /// reports drops, if any.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.series.iter().enumerate() {
            for (w, v) in self.points(SeriesId(i)) {
                let _ = writeln!(
                    out,
                    "{{\"series\":\"{}\",\"window\":{},\"value\":{}}}",
                    escape(&s.name),
                    w,
                    finite(v)
                );
            }
        }
        if self.total_dropped() > 0 {
            let _ = writeln!(
                out,
                "{{\"meta\":\"series_dropped\",\"count\":{}}}",
                self.total_dropped()
            );
        }
        out
    }
}

/// Non-finite values have no JSON/CSV form; zero matches the event
/// exporter's convention.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_come_back_in_insertion_order() {
        let mut set = SeriesSet::new();
        let id = set.register("shard0.util", 8);
        for w in 0..5u32 {
            set.push(id, w, f64::from(w) * 0.1);
        }
        let pts: Vec<_> = set.points(id).collect();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (0, 0.0));
        assert_eq!(pts[4].0, 4);
        assert_eq!(set.total_dropped(), 0);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let mut set = SeriesSet::new();
        let id = set.register("m", 3);
        for w in 0..5u32 {
            set.push(id, w, f64::from(w));
        }
        let pts: Vec<_> = set.points(id).collect();
        assert_eq!(pts, vec![(2, 2.0), (3, 3.0), (4, 4.0)]);
        assert_eq!(set.total_dropped(), 2);
        assert!(set.to_csv().contains("# dropped_points,2,"));
        assert!(set.to_jsonl().contains("\"series_dropped\",\"count\":2"));
    }

    #[test]
    fn csv_and_jsonl_are_deterministic_and_ordered() {
        let build = || {
            let mut set = SeriesSet::new();
            let a = set.register("a.p99_ns", 4);
            let b = set.register("b.util", 4);
            for w in 0..4u32 {
                set.push(a, w, f64::from(w) * 1.5);
                set.push(b, w, 0.25);
            }
            set
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1.to_csv(), s2.to_csv());
        assert_eq!(s1.to_jsonl(), s2.to_jsonl());
        let csv = s1.to_csv();
        let a_pos = csv.find("a.p99_ns").expect("series a exported");
        let b_pos = csv.find("b.util").expect("series b exported");
        assert!(a_pos < b_pos, "registration order preserved");
    }

    #[test]
    fn non_finite_values_export_as_zero() {
        let mut set = SeriesSet::new();
        let id = set.register("m", 2);
        set.push(id, 0, f64::NAN);
        set.push(id, 1, f64::INFINITY);
        assert_eq!(set.to_csv(), "series,window,value\nm,0,0\nm,1,0\n");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        SeriesSet::new().register("m", 0);
    }
}
