//! Metrics registry: counters, gauges, and fixed-bucket log2 histograms.
//!
//! Handles are registered by name once (typically per vSSD / per channel /
//! per chip, e.g. `chan3.queue_depth`) and then updated through cheap
//! index lookups — no string hashing on the hot path. The registry's
//! text rendering is sorted by name, so same-seed runs snapshot
//! identically.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Handle to a monotonically increasing counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a last-value-wins gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a [`Log2Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// A fixed-size base-2 histogram over `u64` values.
///
/// Bucket 0 holds the value `0`; bucket `b >= 1` covers
/// `[2^(b-1), 2^b - 1]`. With 65 buckets the full `u64` range is covered,
/// so `record` never saturates or drops. Percentiles return the *upper
/// bound* of the bucket containing the requested rank, clamped to the
/// maximum recorded value — a deterministic, conservative estimate whose
/// error is bounded by the bucket width (< 2x).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `idx`.
    fn bucket_high(idx: usize) -> u64 {
        if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper-bound estimate of the `pct`-th percentile (0 < pct <= 100).
    ///
    /// Returns `None` when the histogram is empty. The estimate is the
    /// containing bucket's upper bound, clamped to the recorded maximum,
    /// so `percentile(100) == max()` exactly.
    pub fn percentile(&self, pct: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_high(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    /// P50 upper-bound estimate.
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// P95 upper-bound estimate.
    pub fn p95(&self) -> Option<u64> {
        self.percentile(95.0)
    }

    /// P99 upper-bound estimate.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }
}

/// Name-addressed collection of counters, gauges, and histograms.
///
/// Registration is idempotent: asking for an existing name returns the
/// existing handle. Registering a name under a different metric kind
/// panics — that is always a wiring bug, not a runtime condition.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    names: BTreeMap<String, (Kind, usize)>,
    counters: Vec<u64>,
    gauges: Vec<i64>,
    histograms: Vec<Log2Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or registers the counter `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        match self.names.get(name) {
            Some(&(Kind::Counter, idx)) => CounterId(idx),
            Some(&(kind, _)) => panic!("metric {name:?} already registered as {kind:?}"),
            None => {
                let idx = self.counters.len();
                self.counters.push(0);
                self.names.insert(name.to_string(), (Kind::Counter, idx));
                CounterId(idx)
            }
        }
    }

    /// Gets or registers the gauge `name`.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        match self.names.get(name) {
            Some(&(Kind::Gauge, idx)) => GaugeId(idx),
            Some(&(kind, _)) => panic!("metric {name:?} already registered as {kind:?}"),
            None => {
                let idx = self.gauges.len();
                self.gauges.push(0);
                self.names.insert(name.to_string(), (Kind::Gauge, idx));
                GaugeId(idx)
            }
        }
    }

    /// Gets or registers the histogram `name`.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        match self.names.get(name) {
            Some(&(Kind::Histogram, idx)) => HistogramId(idx),
            Some(&(kind, _)) => panic!("metric {name:?} already registered as {kind:?}"),
            None => {
                let idx = self.histograms.len();
                self.histograms.push(Log2Histogram::new());
                self.names.insert(name.to_string(), (Kind::Histogram, idx));
                HistogramId(idx)
            }
        }
    }

    /// Adds `delta` to a counter.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0] += delta;
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Sets a gauge to `value`.
    pub fn set(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0] = value;
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0]
    }

    /// Records `value` into a histogram.
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].record(value);
    }

    /// Read access to a histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &Log2Histogram {
        &self.histograms[id.0]
    }

    /// Number of registered metrics of all kinds.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Renders every metric as plain text, sorted by name.
    ///
    /// Counters: `name = value`. Gauges: `name = value (gauge)`.
    /// Histograms: one line with count/mean/min/p50/p95/p99/max.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, &(kind, idx)) in &self.names {
            match kind {
                Kind::Counter => {
                    let _ = writeln!(out, "{name} = {}", self.counters[idx]);
                }
                Kind::Gauge => {
                    let _ = writeln!(out, "{name} = {} (gauge)", self.gauges[idx]);
                }
                Kind::Histogram => {
                    let h = &self.histograms[idx];
                    if h.count() == 0 {
                        let _ = writeln!(out, "{name} = empty (histogram)");
                    } else {
                        let _ = writeln!(
                            out,
                            "{name} = count {} mean {:.1} min {} p50 {} p95 {} p99 {} max {} (histogram)",
                            h.count(),
                            h.mean().unwrap_or(0.0),
                            h.min().unwrap_or(0),
                            h.p50().unwrap_or(0),
                            h.p95().unwrap_or(0),
                            h.p99().unwrap_or(0),
                            h.max().unwrap_or(0),
                        );
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn single_value_is_every_percentile() {
        let mut h = Log2Histogram::new();
        h.record(1000);
        assert_eq!(h.p50(), Some(1000));
        assert_eq!(h.p95(), Some(1000));
        assert_eq!(h.p99(), Some(1000));
        assert_eq!(h.percentile(100.0), Some(1000));
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 2^k lands in bucket k+1 (covering [2^k, 2^(k+1)-1]);
        // 2^k - 1 lands in bucket k.
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(1023), 10);
        assert_eq!(Log2Histogram::bucket_index(1024), 11);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_high(64), u64::MAX);
    }

    #[test]
    fn known_distribution_percentiles_hit_bucket_bounds() {
        // 100 values: 90 in bucket 7 ([64,127]) and 10 in bucket 11
        // ([1024,2047]). Ranks: p50 -> rank 50 (bucket 7), p95/p99 ->
        // ranks 95/99 (bucket 11).
        let mut h = Log2Histogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(2000);
        }
        assert_eq!(h.count(), 100);
        // Bucket 7 upper bound is 127.
        assert_eq!(h.p50(), Some(127));
        // Bucket 11 upper bound is 2047, clamped to the recorded max 2000.
        assert_eq!(h.p95(), Some(2000));
        assert_eq!(h.p99(), Some(2000));
        assert_eq!(h.min(), Some(100));
        assert_eq!(h.max(), Some(2000));
    }

    #[test]
    fn percentile_upper_bound_is_within_2x() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50().unwrap();
        // True p50 is 500; estimate must be >= 500 and < 1000 (2x).
        assert!((500..1000).contains(&p50), "p50 estimate {p50}");
    }

    #[test]
    fn registry_handles_round_trip() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("vssd0.requests");
        let g = reg.gauge("chan0.queue_depth");
        let h = reg.histogram("vssd0.latency_ns");
        reg.add(c, 3);
        reg.add(c, 2);
        reg.set(g, -4);
        reg.observe(h, 500);
        assert_eq!(reg.counter_value(c), 5);
        assert_eq!(reg.gauge_value(g), -4);
        assert_eq!(reg.histogram_ref(h).count(), 1);
        // Idempotent registration returns the same handle.
        assert_eq!(reg.counter("vssd0.requests"), c);
        assert_eq!(reg.len(), 3);
        let text = reg.render_text();
        assert!(text.contains("vssd0.requests = 5"));
        assert!(text.contains("chan0.queue_depth = -4 (gauge)"));
        assert!(text.contains("vssd0.latency_ns = count 1"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
