//! Property tests over the channel resource model: the bus and chips are
//! single-server resources, so their "next free" clocks must be monotone
//! and ops must never overlap on the same resource.

use fleetio_des::rng::{Rng, SmallRng};
use fleetio_des::{SimDuration, SimTime};
use fleetio_flash::channel::ChannelSim;
use fleetio_flash::FlashTiming;

#[derive(Debug, Clone, Copy)]
enum Op {
    Read { chip: u16, bytes: u64 },
    Write { chip: u16, bytes: u64 },
    Erase { chip: u16 },
    Grant { bytes: u64 },
    HighRead { chip: u16, bytes: u64 },
}

fn random_op(rng: &mut SmallRng, chips: u16) -> Op {
    let kind = rng.gen_range(0u32..5);
    let chip = rng.gen_range(0u16..chips);
    let bytes = rng.gen_range(512u64..16384);
    match kind {
        0 => Op::Read { chip, bytes },
        1 => Op::Write { chip, bytes },
        2 => Op::Erase { chip },
        3 => Op::Grant { bytes },
        _ => Op::HighRead { chip, bytes },
    }
}

/// Every operation ends after it starts, starts no earlier than
/// requested, and the bus-busy accumulator never exceeds elapsed time.
#[test]
fn ops_are_well_ordered() {
    let mut rng = SmallRng::seed_from_u64(0x0b5);
    for _case in 0..64 {
        let n = rng.gen_range(1usize..120);
        let ops: Vec<Op> = (0..n).map(|_| random_op(&mut rng, 4)).collect();
        let gaps: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..500)).collect();
        let timing = FlashTiming::default();
        let mut ch = ChannelSim::new(4);
        let mut now = SimTime::ZERO;
        let mut last_end = SimTime::ZERO;
        for (op, gap) in ops.iter().zip(gaps.iter()) {
            now += SimDuration::from_micros(*gap);
            let times = match *op {
                Op::Read { chip, bytes } => ch.read_page(now, chip, bytes, &timing),
                Op::Write { chip, bytes } => ch.write_page(now, chip, bytes, &timing),
                Op::Erase { chip } => ch.erase_block(now, chip, &timing),
                Op::Grant { bytes } => ch.bus_grant(now, bytes, &timing),
                Op::HighRead { chip, bytes } => ch.read_page_preempting(now, chip, bytes, &timing),
            };
            assert!(times.end > times.start, "zero-length op");
            assert!(times.start >= now, "op started before request");
            last_end = last_end.max(times.end);
        }
        // Bus can never have been busy longer than the span it had.
        assert!(
            ch.bus_busy() <= last_end.saturating_since(SimTime::ZERO),
            "bus busy {} exceeds horizon {}",
            ch.bus_busy(),
            last_end
        );
    }
}

/// The bus serializes: consecutive transfer-bearing ops never share
/// bus time (each next transfer starts at or after the previous
/// booking's end).
#[test]
fn bus_free_clock_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(0xb05);
    for _case in 0..64 {
        let n = rng.gen_range(2usize..80);
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(512u64..32768)).collect();
        let timing = FlashTiming::default();
        let mut ch = ChannelSim::new(2);
        let mut prev_free = SimTime::ZERO;
        for (i, bytes) in sizes.iter().enumerate() {
            let chip = (i % 2) as u16;
            let _ = ch.read_page(SimTime::ZERO, chip, *bytes, &timing);
            let free = ch.bus_free_at();
            assert!(free >= prev_free, "bus_free went backwards");
            prev_free = free;
        }
    }
}

/// Preempting reads really do beat plain reads when the chip is busy
/// with a suspendable background operation.
#[test]
fn preempting_read_never_slower() {
    let mut rng = SmallRng::seed_from_u64(0x93e);
    for _case in 0..64 {
        let bytes = rng.gen_range(512u64..16384);
        let timing = FlashTiming::default();
        // Plain read behind an erase.
        let mut a = ChannelSim::new(1);
        a.erase_block(SimTime::ZERO, 0, &timing);
        let plain = a.read_page(SimTime::ZERO, 0, bytes, &timing);
        // Preempting read behind an identical erase.
        let mut b = ChannelSim::new(1);
        let erase = b.erase_block(SimTime::ZERO, 0, &timing);
        let preempting = b.read_page_preempting(SimTime::ZERO, 0, bytes, &timing);
        assert!(preempting.end <= plain.end);
        // Suspension pushes the suspended erase's completion past its
        // original end (the chip clock slips by the cell-read time).
        assert!(b.chip_free_at(0) > erase.end);
    }
}
