//! Device-level accounting: utilization and write amplification.

/// Cumulative device counters.
///
/// `host_*` counts bytes the host asked to move; `flash_write_bytes` counts
/// bytes physically programmed (host writes plus GC migrations), so the
/// write-amplification factor is `flash_write_bytes / host_write_bytes`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Bytes read on behalf of the host.
    pub host_read_bytes: u64,
    /// Bytes written on behalf of the host.
    pub host_write_bytes: u64,
    /// Bytes physically programmed (host + GC).
    pub flash_write_bytes: u64,
    /// Bytes migrated by garbage collection.
    pub gc_migrated_bytes: u64,
    /// Blocks erased.
    pub erases: u64,
    /// GC invocations.
    pub gc_runs: u64,
    /// NAND array operations issued (page reads, page programs, chip
    /// occupies and erases; host + GC). Bus grants are transfer slices,
    /// not array operations, and are excluded.
    pub nand_ops: u64,
}

impl DeviceStats {
    /// Write-amplification factor, or `None` before any host write.
    pub fn waf(&self) -> Option<f64> {
        (self.host_write_bytes > 0)
            .then(|| self.flash_write_bytes as f64 / self.host_write_bytes as f64)
    }

    /// Total host bytes moved in both directions.
    pub fn host_bytes(&self) -> u64 {
        self.host_read_bytes + self.host_write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waf_requires_host_writes() {
        let mut s = DeviceStats::default();
        assert_eq!(s.waf(), None);
        s.host_write_bytes = 100;
        s.flash_write_bytes = 150;
        assert_eq!(s.waf(), Some(1.5));
    }

    #[test]
    fn host_bytes_sums_directions() {
        let s = DeviceStats {
            host_read_bytes: 3,
            host_write_bytes: 4,
            ..Default::default()
        };
        assert_eq!(s.host_bytes(), 7);
    }
}
