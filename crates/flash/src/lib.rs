//! Discrete-event flash SSD simulator for the FleetIO reproduction.
//!
//! This crate stands in for the paper's real open-channel SSD. It models the
//! *physical* layer of a software-defined-flash device:
//!
//! * [`config::FlashConfig`] — geometry and NAND timing (Table 3 of the
//!   paper: 16 channels, 4 chips per channel, 16 KB pages, 1 TB, queue
//!   depth 16, 20 % over-provisioning),
//! * [`addr`] — typed physical/logical addresses,
//! * [`timing::FlashTiming`] — per-operation service times (cell read,
//!   program, erase, channel-bus transfer),
//! * [`channel::ChannelSim`] — per-channel bus and per-chip occupancy with
//!   realistic pipelining (the bus can feed one chip while another
//!   programs),
//! * [`block`] — flash block state: valid-page bitmaps, append points,
//!   erase counts, free lists,
//! * [`device::FlashDevice`] — the assembled device plus utilization and
//!   write-amplification accounting.
//!
//! Flash management policy (address mapping, superblocks, garbage-collection
//! victim selection, isolation, harvesting) intentionally lives one layer up
//! in `fleetio-vssd`, mirroring how open-channel SSDs push the FTL to the
//! host.
//!
//! # Example
//!
//! ```
//! use fleetio_des::SimTime;
//! use fleetio_flash::{config::FlashConfig, device::FlashDevice};
//!
//! let mut dev = FlashDevice::new(FlashConfig::small_test());
//! let chan = fleetio_flash::addr::ChannelId(0);
//! let op = dev.read_page(SimTime::ZERO, chan, 0, 4096);
//! assert!(op.end > op.start);
//! ```

pub mod addr;
pub mod block;
pub mod channel;
pub mod config;
pub mod device;
pub mod stats;
pub mod timing;

pub use addr::{BlockAddr, ChannelId, Lpa, Ppa};
pub use config::FlashConfig;
pub use device::{ChannelObs, FlashDevice};
pub use timing::FlashTiming;
