//! Per-channel bus and chip occupancy simulation.
//!
//! Each channel has one shared command/data bus and several NAND chips. The
//! simulator tracks a "next free" time for the bus and for each chip and
//! derives start/end times for every operation from those, which reproduces
//! the two first-order performance effects of real flash channels:
//!
//! * the bus serializes data transfers (≈64 MB/s per channel), and
//! * cell operations (read/program/erase) occupy only their chip, so
//!   transfers to one chip overlap with programs on another.

use fleetio_des::{SimDuration, SimTime};

use crate::timing::FlashTiming;

/// Start/end times of one simulated flash operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTimes {
    /// When the operation began occupying its first resource.
    pub start: SimTime,
    /// When the data was fully transferred / the cell operation finished.
    pub end: SimTime,
}

impl OpTimes {
    /// Total service latency of the operation.
    pub fn latency(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Occupancy state of one flash channel.
#[derive(Debug, Clone)]
pub struct ChannelSim {
    bus_free: SimTime,
    chip_free: Vec<SimTime>,
    /// Cumulative time the bus spent transferring data.
    bus_busy: SimDuration,
    /// Cumulative bytes moved over the bus (reads + writes + GC traffic).
    bytes_moved: u64,
    /// Bytes moved for garbage collection only.
    gc_bytes: u64,
    /// Round-robin rotation for page-to-chip placement.
    next_chip: u16,
    /// Whether each chip's current booking is a suspendable background
    /// operation (low-priority program or erase). High-priority reads may
    /// preempt those, as program/erase-suspend does on real NAND.
    chip_suspendable: Vec<bool>,
}

impl ChannelSim {
    /// Creates an idle channel with `chips` NAND chips.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero.
    pub fn new(chips: u16) -> Self {
        assert!(chips > 0, "a channel needs at least one chip");
        ChannelSim {
            bus_free: SimTime::ZERO,
            chip_free: vec![SimTime::ZERO; usize::from(chips)],
            bus_busy: SimDuration::ZERO,
            bytes_moved: 0,
            gc_bytes: 0,
            next_chip: 0,
            chip_suspendable: vec![false; usize::from(chips)],
        }
    }

    /// Number of chips behind this channel.
    pub fn chips(&self) -> u16 {
        self.chip_free.len() as u16
    }

    /// Earliest time the bus can accept a new transfer.
    pub fn bus_free_at(&self) -> SimTime {
        self.bus_free
    }

    /// Earliest time `chip` can accept a new cell operation.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    pub fn chip_free_at(&self, chip: u16) -> SimTime {
        self.chip_free[usize::from(chip)]
    }

    /// Cumulative bus-busy time (data transfer only).
    pub fn bus_busy(&self) -> SimDuration {
        self.bus_busy
    }

    /// Cumulative bytes moved over this channel.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Cumulative bytes moved for GC migrations.
    pub fn gc_bytes(&self) -> u64 {
        self.gc_bytes
    }

    /// Picks the next chip in round-robin order (used for page placement).
    pub fn rotate_chip(&mut self) -> u16 {
        let c = self.next_chip;
        self.next_chip = (self.next_chip + 1) % self.chips();
        c
    }

    /// Simulates reading `bytes` from one page on `chip`.
    ///
    /// The cell read occupies the chip; the data transfer then occupies the
    /// bus. The chip is held until its data has left the register.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    pub fn read_page(
        &mut self,
        now: SimTime,
        chip: u16,
        bytes: u64,
        timing: &FlashTiming,
    ) -> OpTimes {
        let c = usize::from(chip);
        let cell_start = now.max(self.chip_free[c]);
        let cell_end = cell_start + timing.read_latency;
        let bus_start = cell_end.max(self.bus_free);
        let xfer = timing.transfer(bytes);
        let end = bus_start + xfer;
        self.chip_free[c] = end;
        self.chip_suspendable[c] = false;
        self.bus_free = end;
        self.bus_busy += xfer;
        self.bytes_moved += bytes;
        OpTimes {
            start: cell_start,
            end,
        }
    }

    /// Like [`ChannelSim::read_page`], but preempts a suspendable chip
    /// booking (low-priority program or erase) the way program/erase
    /// suspend works on real NAND: the read starts immediately and the
    /// suspended operation resumes afterwards (its completion slips by the
    /// cell-read time).
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    pub fn read_page_preempting(
        &mut self,
        now: SimTime,
        chip: u16,
        bytes: u64,
        timing: &FlashTiming,
    ) -> OpTimes {
        let c = usize::from(chip);
        if self.chip_suspendable[c] && self.chip_free[c] > now {
            let cell_end = now + timing.read_latency;
            let bus_start = cell_end.max(self.bus_free);
            let xfer = timing.transfer(bytes);
            let end = bus_start + xfer;
            // The suspended background op finishes later by the suspension.
            self.chip_free[c] += timing.read_latency;
            self.bus_free = end;
            self.bus_busy += xfer;
            self.bytes_moved += bytes;
            return OpTimes { start: now, end };
        }
        self.read_page(now, chip, bytes, timing)
    }

    /// Simulates writing `bytes` into one page on `chip`.
    ///
    /// The transfer occupies the bus first; the program then occupies only
    /// the chip, so the bus is free to feed another chip while this one
    /// programs.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    pub fn write_page(
        &mut self,
        now: SimTime,
        chip: u16,
        bytes: u64,
        timing: &FlashTiming,
    ) -> OpTimes {
        let c = usize::from(chip);
        let xfer = timing.transfer(bytes);
        let bus_start = now.max(self.bus_free);
        let xfer_end = bus_start + xfer;
        let prog_start = xfer_end.max(self.chip_free[c]);
        let end = prog_start + timing.program_latency;
        self.bus_free = xfer_end;
        self.chip_free[c] = end;
        self.chip_suspendable[c] = false;
        self.bus_busy += xfer;
        self.bytes_moved += bytes;
        OpTimes {
            start: bus_start,
            end,
        }
    }

    /// Simulates erasing a block on `chip`. Only the chip is occupied.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    pub fn erase_block(&mut self, now: SimTime, chip: u16, timing: &FlashTiming) -> OpTimes {
        let c = usize::from(chip);
        let start = now.max(self.chip_free[c]);
        let end = start + timing.erase_latency;
        self.chip_free[c] = end;
        // Erases are long (milliseconds) and always suspendable.
        self.chip_suspendable[c] = true;
        OpTimes { start, end }
    }

    /// Books a bare bus transfer of `bytes` (one grant of a time-sliced
    /// transfer). The chip is not touched.
    pub fn bus_grant(&mut self, now: SimTime, bytes: u64, timing: &FlashTiming) -> OpTimes {
        let start = now.max(self.bus_free);
        let xfer = timing.transfer(bytes);
        let end = start + xfer;
        self.bus_free = end;
        self.bus_busy += xfer;
        self.bytes_moved += bytes;
        OpTimes { start, end }
    }

    /// Occupies `chip` for `duration` (cell read or program half of a
    /// time-sliced operation). The bus is not touched.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    pub fn chip_occupy(
        &mut self,
        now: SimTime,
        chip: u16,
        duration: SimDuration,
        suspendable: bool,
    ) -> OpTimes {
        let c = usize::from(chip);
        let start = now.max(self.chip_free[c]);
        let end = start + duration;
        self.chip_free[c] = end;
        self.chip_suspendable[c] = suspendable;
        OpTimes { start, end }
    }

    /// Records `bytes` of internal GC migration traffic (for accounting).
    pub fn note_gc_bytes(&mut self, bytes: u64) {
        self.gc_bytes += bytes;
    }

    /// Number of chips still busy (booked past `now`).
    pub fn busy_chips(&self, now: SimTime) -> u16 {
        self.chip_free.iter().filter(|&&f| f > now).count() as u16
    }

    /// How far past `now` the bus is booked (zero when idle).
    pub fn bus_backlog(&self, now: SimTime) -> SimDuration {
        self.bus_free.saturating_since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> FlashTiming {
        FlashTiming::default()
    }

    #[test]
    fn read_after_idle_has_base_latency() {
        let mut ch = ChannelSim::new(4);
        let op = ch.read_page(SimTime::ZERO, 0, 16 * 1024, &t());
        // 50 µs cell read + ~244 µs transfer.
        let us = op.latency().as_micros();
        assert!((290..=300).contains(&us), "latency {us}us");
    }

    #[test]
    fn bus_serializes_reads_from_different_chips() {
        let mut ch = ChannelSim::new(4);
        let a = ch.read_page(SimTime::ZERO, 0, 16 * 1024, &t());
        let b = ch.read_page(SimTime::ZERO, 1, 16 * 1024, &t());
        // Chip 1's cell read overlaps chip 0's transfer, but the transfers
        // are serialized on the bus.
        assert!(b.end > a.end);
        let gap = b.end.saturating_since(a.end).as_micros();
        assert!((240..=250).contains(&gap), "gap {gap}us");
    }

    #[test]
    fn writes_pipeline_across_chips() {
        let mut ch = ChannelSim::new(4);
        let a = ch.write_page(SimTime::ZERO, 0, 16 * 1024, &t());
        let b = ch.write_page(SimTime::ZERO, 1, 16 * 1024, &t());
        // Second transfer starts right after the first (bus), its program
        // overlaps chip 0's program.
        let serial = (t().transfer(16 * 1024) * 2 + t().program_latency * 2).as_micros();
        let actual = b.end.saturating_since(SimTime::ZERO).as_micros();
        assert!(actual < serial, "no pipelining: {actual} >= {serial}");
        assert_eq!(
            a.end.as_micros(),
            (t().transfer(16 * 1024) + t().program_latency).as_micros()
        );
    }

    #[test]
    fn same_chip_writes_serialize_on_program() {
        let mut ch = ChannelSim::new(1);
        let _ = ch.write_page(SimTime::ZERO, 0, 16 * 1024, &t());
        let b = ch.write_page(SimTime::ZERO, 0, 16 * 1024, &t());
        // End ≈ xfer + max(xfer, prog) + prog relative to zero.
        let want = t().transfer(16 * 1024) + t().program_latency + t().program_latency;
        assert_eq!(b.end.as_micros(), (SimTime::ZERO + want).as_micros());
    }

    #[test]
    fn erase_occupies_only_chip() {
        let mut ch = ChannelSim::new(2);
        let e = ch.erase_block(SimTime::ZERO, 0, &t());
        assert_eq!(e.latency().as_millis_f64() as u64, 3);
        // Bus untouched: a read on another chip starts its transfer
        // immediately after its cell read.
        let r = ch.read_page(SimTime::ZERO, 1, 4096, &t());
        assert!(r.end < e.end);
    }

    #[test]
    fn rotate_chip_cycles() {
        let mut ch = ChannelSim::new(3);
        let seq: Vec<u16> = (0..7).map(|_| ch.rotate_chip()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn accounting_tracks_bytes_and_busy_time() {
        let mut ch = ChannelSim::new(2);
        ch.read_page(SimTime::ZERO, 0, 8192, &t());
        ch.write_page(SimTime::ZERO, 1, 8192, &t());
        ch.note_gc_bytes(4096);
        assert_eq!(ch.bytes_moved(), 16384);
        assert_eq!(ch.gc_bytes(), 4096);
        assert_eq!(ch.bus_busy().as_nanos(), t().transfer(8192).as_nanos() * 2);
    }

    #[test]
    #[should_panic(expected = "at least one chip")]
    fn zero_chips_panics() {
        let _ = ChannelSim::new(0);
    }
}
