//! Typed flash addresses.
//!
//! Logical page addresses ([`Lpa`]) are what tenants see; physical page
//! addresses ([`Ppa`]) name a page on a specific chip of a specific channel.
//! The newtypes keep the two address spaces from being mixed up at compile
//! time.

use std::fmt;

/// A flash channel index on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u16);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// A logical page address within one tenant's (vSSD's) address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lpa(pub u64);

impl fmt::Display for Lpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lpa:{}", self.0)
    }
}

/// The address of a physical flash block: `(channel, chip, block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr {
    /// Channel the block lives on.
    pub channel: ChannelId,
    /// Chip within the channel.
    pub chip: u16,
    /// Block within the chip.
    pub block: u32,
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:chip{}:blk{}", self.channel, self.chip, self.block)
    }
}

/// A physical page address: a [`BlockAddr`] plus the page within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ppa {
    /// The block containing this page.
    pub block: BlockAddr,
    /// Page index within the block.
    pub page: u32,
}

impl Ppa {
    /// Builds a physical page address.
    pub fn new(channel: ChannelId, chip: u16, block: u32, page: u32) -> Self {
        Ppa {
            block: BlockAddr {
                channel,
                chip,
                block,
            },
            page,
        }
    }

    /// The channel this page lives on.
    pub fn channel(&self) -> ChannelId {
        self.block.channel
    }

    /// The chip within the channel.
    pub fn chip(&self) -> u16 {
        self.block.chip
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:pg{}", self.block, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppa_accessors() {
        let p = Ppa::new(ChannelId(3), 1, 42, 7);
        assert_eq!(p.channel(), ChannelId(3));
        assert_eq!(p.chip(), 1);
        assert_eq!(p.block.block, 42);
        assert_eq!(p.page, 7);
    }

    #[test]
    fn display_formats() {
        let p = Ppa::new(ChannelId(2), 0, 5, 9);
        assert_eq!(p.to_string(), "ch2:chip0:blk5:pg9");
        assert_eq!(Lpa(12).to_string(), "lpa:12");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Ppa::new(ChannelId(0), 0, 0, 1);
        let b = Ppa::new(ChannelId(0), 0, 1, 0);
        let c = Ppa::new(ChannelId(1), 0, 0, 0);
        assert!(a < b && b < c);
    }
}
