//! Flash block state: valid-page bitmaps, append points, free lists.
//!
//! Flash writes are out-of-place: a page is programmed once per erase cycle,
//! overwrites invalidate the old physical page, and whole blocks are erased
//! to reclaim space. [`BlockState`] tracks one block's lifecycle;
//! [`ChipBlocks`] tracks every block on one chip plus its free list.

use crate::addr::Lpa;

/// Lifecycle state of a single flash block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockPhase {
    /// Erased and on the free list.
    Free,
    /// Allocated with unwritten pages remaining.
    Open,
    /// Every page written.
    Full,
}

/// State of one physical flash block.
#[derive(Debug, Clone)]
pub struct BlockState {
    phase: BlockPhase,
    /// Next unwritten page (append point).
    next_page: u32,
    /// Which written pages still hold live data.
    valid: Vec<bool>,
    /// LPA stored in each written page (for GC migration).
    page_lpa: Vec<Option<Lpa>>,
    valid_count: u32,
    erase_count: u32,
    pages: u32,
}

impl BlockState {
    /// Creates a fresh (never-programmed) block with `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(pages: u32) -> Self {
        assert!(pages > 0, "a block needs at least one page");
        BlockState {
            phase: BlockPhase::Free,
            next_page: 0,
            valid: vec![false; pages as usize],
            page_lpa: vec![None; pages as usize],
            valid_count: 0,
            erase_count: 0,
            pages,
        }
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> BlockPhase {
        self.phase
    }

    /// Number of live pages.
    pub fn valid_count(&self) -> u32 {
        self.valid_count
    }

    /// Number of pages written so far this erase cycle.
    pub fn written_count(&self) -> u32 {
        self.next_page
    }

    /// Pages still available for appending.
    pub fn free_pages(&self) -> u32 {
        self.pages - self.next_page
    }

    /// Times this block has been erased.
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// Marks the block as allocated (taken off the free list).
    ///
    /// # Panics
    ///
    /// Panics if the block is not free.
    pub fn open(&mut self) {
        assert_eq!(self.phase, BlockPhase::Free, "opening a non-free block");
        self.phase = BlockPhase::Open;
    }

    /// Appends one page holding `lpa`, returning the page index written.
    ///
    /// # Panics
    ///
    /// Panics if the block is full or not open.
    pub fn append(&mut self, lpa: Lpa) -> u32 {
        assert_eq!(
            self.phase,
            BlockPhase::Open,
            "appending to a non-open block"
        );
        let page = self.next_page;
        self.valid[page as usize] = true;
        self.page_lpa[page as usize] = Some(lpa);
        self.valid_count += 1;
        self.next_page += 1;
        if self.next_page == self.pages {
            self.phase = BlockPhase::Full;
        }
        page
    }

    /// Invalidates the page at `page` (its LPA was overwritten or trimmed).
    ///
    /// Idempotent: invalidating an already-invalid page is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `page` was never written.
    pub fn invalidate(&mut self, page: u32) {
        assert!(page < self.next_page, "invalidating an unwritten page");
        let p = page as usize;
        if self.valid[p] {
            self.valid[p] = false;
            self.page_lpa[p] = None;
            self.valid_count -= 1;
        }
    }

    /// Whether the page at `page` currently holds live data.
    pub fn is_valid(&self, page: u32) -> bool {
        self.valid.get(page as usize).copied().unwrap_or(false)
    }

    /// Iterates over `(page, lpa)` pairs of all live pages.
    pub fn valid_pages(&self) -> impl Iterator<Item = (u32, Lpa)> + '_ {
        self.page_lpa
            .iter()
            .enumerate()
            .take(self.next_page as usize)
            .filter_map(|(i, lpa)| lpa.map(|l| (i as u32, l)))
    }

    /// Erases the block, returning it to the free phase.
    ///
    /// # Panics
    ///
    /// Panics if live pages remain (callers must migrate them first).
    pub fn erase(&mut self) {
        assert_eq!(self.valid_count, 0, "erasing a block with live pages");
        self.phase = BlockPhase::Free;
        self.next_page = 0;
        self.valid.fill(false);
        self.page_lpa.fill(None);
        self.erase_count += 1;
    }
}

/// All blocks on one chip, with a free list.
#[derive(Debug, Clone)]
pub struct ChipBlocks {
    blocks: Vec<BlockState>,
    free: Vec<u32>,
}

impl ChipBlocks {
    /// Creates `count` fresh blocks of `pages` pages each.
    pub fn new(count: u32, pages: u32) -> Self {
        ChipBlocks {
            blocks: (0..count).map(|_| BlockState::new(pages)).collect(),
            // Pop from the back: allocate low block ids first.
            free: (0..count).rev().collect(),
        }
    }

    /// Number of blocks on the chip.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the chip has no blocks (never true for a real geometry).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of free (erased) blocks.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Fraction of the chip's blocks that are free.
    pub fn free_fraction(&self) -> f64 {
        if self.blocks.is_empty() {
            0.0
        } else {
            self.free.len() as f64 / self.blocks.len() as f64
        }
    }

    /// Allocates a free block and opens it, or `None` when exhausted.
    pub fn allocate(&mut self) -> Option<u32> {
        self.allocate_with_reserve(0)
    }

    /// Allocates a free block unless doing so would leave fewer than
    /// `reserve` free blocks (the GC reserve that guarantees emergency
    /// collection always has a migration destination).
    pub fn allocate_with_reserve(&mut self, reserve: usize) -> Option<u32> {
        if self.free.len() <= reserve {
            return None;
        }
        let id = self.free.pop()?;
        self.blocks[id as usize].open();
        Some(id)
    }

    /// Returns an erased block to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the block still has live pages (erase first).
    pub fn release(&mut self, block: u32) {
        self.blocks[block as usize].erase();
        self.free.push(block);
    }

    /// Immutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block(&self, block: u32) -> &BlockState {
        &self.blocks[block as usize]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block_mut(&mut self, block: u32) -> &mut BlockState {
        &mut self.blocks[block as usize]
    }

    /// Audits the chip's structural invariants (the `audit` feature's
    /// periodic sweep calls this):
    ///
    /// * the free list and the per-block phases agree — every free-list
    ///   entry is in [`BlockPhase::Free`], no duplicates, and the cached
    ///   count matches a full census;
    /// * every block's `valid_count` matches its validity bitmap.
    ///
    /// All checks are `debug_assert!`s; in release builds this is a no-op.
    #[cfg(feature = "audit")]
    pub fn audit_invariants(&self) {
        let mut on_free_list = vec![false; self.blocks.len()];
        for &id in &self.free {
            let i = id as usize;
            debug_assert!(
                i < self.blocks.len(),
                "free list holds out-of-range block {id}"
            );
            debug_assert!(
                !on_free_list[i],
                "block {id} appears twice on the free list"
            );
            on_free_list[i] = true;
            debug_assert!(
                self.blocks[i].phase() == BlockPhase::Free,
                "block {id} is on the free list but in phase {:?}",
                self.blocks[i].phase()
            );
        }
        let census = self
            .blocks
            .iter()
            .filter(|b| b.phase() == BlockPhase::Free)
            .count();
        debug_assert!(
            census == self.free.len(),
            "free-block accounting drift: {} blocks in Free phase, free list holds {}",
            census,
            self.free.len()
        );
        for (id, b) in self.blocks.iter().enumerate() {
            let bitmap = (0..b.written_count()).filter(|p| b.is_valid(*p)).count() as u32;
            debug_assert!(
                bitmap == b.valid_count(),
                "block {id}: valid_count {} disagrees with bitmap census {bitmap}",
                b.valid_count()
            );
        }
    }

    /// The non-free block with the fewest live pages among `candidates`,
    /// preferring lower ids on ties. Returns `None` when no candidate is
    /// eligible (free blocks and fully-valid open blocks are skipped only
    /// if `skip_open` is set).
    pub fn greedy_victim<I>(&self, candidates: I, skip_open: bool) -> Option<u32>
    where
        I: IntoIterator<Item = u32>,
    {
        let mut best: Option<(u32, u32)> = None;
        for id in candidates {
            let b = &self.blocks[id as usize];
            if b.phase() == BlockPhase::Free {
                continue;
            }
            if skip_open && b.phase() == BlockPhase::Open {
                continue;
            }
            let key = b.valid_count();
            match best {
                Some((_, k)) if k <= key => {}
                _ => best = Some((id, key)),
            }
        }
        best.map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::rng::{Rng, SmallRng};

    #[test]
    fn block_lifecycle() {
        let mut b = BlockState::new(4);
        assert_eq!(b.phase(), BlockPhase::Free);
        b.open();
        assert_eq!(b.append(Lpa(10)), 0);
        assert_eq!(b.append(Lpa(11)), 1);
        assert_eq!(b.valid_count(), 2);
        assert_eq!(b.free_pages(), 2);
        b.invalidate(0);
        assert_eq!(b.valid_count(), 1);
        assert!(!b.is_valid(0));
        assert!(b.is_valid(1));
        b.append(Lpa(12));
        b.append(Lpa(13));
        assert_eq!(b.phase(), BlockPhase::Full);
        let live: Vec<_> = b.valid_pages().collect();
        assert_eq!(live, vec![(1, Lpa(11)), (2, Lpa(12)), (3, Lpa(13))]);
    }

    #[test]
    fn invalidate_is_idempotent() {
        let mut b = BlockState::new(2);
        b.open();
        b.append(Lpa(1));
        b.invalidate(0);
        b.invalidate(0);
        assert_eq!(b.valid_count(), 0);
    }

    #[test]
    fn erase_resets_and_counts() {
        let mut b = BlockState::new(2);
        b.open();
        b.append(Lpa(1));
        b.invalidate(0);
        b.erase();
        assert_eq!(b.phase(), BlockPhase::Free);
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.free_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "live pages")]
    fn erase_with_live_pages_panics() {
        let mut b = BlockState::new(2);
        b.open();
        b.append(Lpa(1));
        b.erase();
    }

    #[test]
    #[should_panic(expected = "non-open block")]
    fn append_to_full_block_panics() {
        let mut b = BlockState::new(1);
        b.open();
        b.append(Lpa(1));
        b.append(Lpa(2));
    }

    #[test]
    fn chip_allocation_and_release() {
        let mut c = ChipBlocks::new(4, 2);
        assert_eq!(c.free_count(), 4);
        let a = c.allocate().unwrap();
        assert_eq!(a, 0); // low ids first
        assert_eq!(c.free_count(), 3);
        assert_eq!(c.block(a).phase(), BlockPhase::Open);
        c.block_mut(a).append(Lpa(1));
        c.block_mut(a).invalidate(0);
        c.release(a);
        assert_eq!(c.free_count(), 4);
        assert!((c.free_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chip_exhaustion_returns_none() {
        let mut c = ChipBlocks::new(1, 1);
        assert!(c.allocate().is_some());
        assert!(c.allocate().is_none());
    }

    #[test]
    fn greedy_victim_prefers_fewest_valid() {
        let mut c = ChipBlocks::new(3, 4);
        for _ in 0..3 {
            c.allocate();
        }
        // Block 0: 4 valid; block 1: 1 valid; block 2: 2 valid.
        for i in 0..4 {
            c.block_mut(0).append(Lpa(i));
        }
        for i in 0..4 {
            c.block_mut(1).append(Lpa(10 + i));
        }
        for p in 0..3 {
            c.block_mut(1).invalidate(p as u32);
        }
        for i in 0..4 {
            c.block_mut(2).append(Lpa(20 + i));
        }
        for p in 0..2 {
            c.block_mut(2).invalidate(p as u32);
        }
        assert_eq!(c.greedy_victim(0..3, false), Some(1));
    }

    #[test]
    fn greedy_victim_skips_free_blocks() {
        let c = ChipBlocks::new(3, 4);
        assert_eq!(c.greedy_victim(0..3, false), None);
    }

    /// Property: the valid-count counter always matches the bitmap.
    #[test]
    fn prop_valid_count_matches_bitmap() {
        let mut rng = SmallRng::seed_from_u64(0xb10c);
        for _case in 0..256 {
            let n_ops = rng.gen_range(1usize..64);
            let mut b = BlockState::new(64);
            b.open();
            let mut written = 0u32;
            for _ in 0..n_ops {
                let op = rng.gen_range(0u32..8);
                if op < 6 {
                    if b.free_pages() > 0 {
                        b.append(Lpa(u64::from(written)));
                        written += 1;
                    }
                } else if written > 0 {
                    b.invalidate(op % written);
                }
            }
            let bitmap_count = (0..b.written_count()).filter(|p| b.is_valid(*p)).count() as u32;
            assert_eq!(bitmap_count, b.valid_count());
            assert_eq!(b.valid_pages().count() as u32, b.valid_count());
        }
    }
}
