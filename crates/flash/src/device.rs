//! The assembled flash device.
//!
//! [`FlashDevice`] combines per-channel occupancy simulation with per-chip
//! block state and device-wide accounting. It exposes the raw operations an
//! open-channel SSD offers the host FTL: page reads and programs, block
//! erases, block allocation/release, and free-space inspection. Everything
//! policy-shaped (mapping, superblocks, GC victim choice, harvesting) lives
//! in `fleetio-vssd`.

use fleetio_des::{SimDuration, SimTime};

use crate::addr::{BlockAddr, ChannelId, Lpa};
use crate::block::ChipBlocks;
use crate::channel::{ChannelSim, OpTimes};
use crate::config::FlashConfig;
use crate::stats::DeviceStats;

/// Point-in-time occupancy snapshot of one channel, taken via
/// [`FlashDevice::channel_obs`] for observability gauges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelObs {
    /// Chips booked past the snapshot time.
    pub busy_chips: u16,
    /// How far past the snapshot time the bus is booked.
    pub bus_backlog: SimDuration,
    /// Cumulative bus-busy time.
    pub bus_busy: SimDuration,
    /// Cumulative bytes moved over the bus.
    pub bytes_moved: u64,
    /// Cumulative GC migration bytes.
    pub gc_bytes: u64,
    /// Per-chip booking backlog past the snapshot time.
    pub chip_backlog: Vec<SimDuration>,
}

/// A simulated open-channel flash device.
#[derive(Debug, Clone)]
pub struct FlashDevice {
    config: FlashConfig,
    channels: Vec<ChannelSim>,
    /// Indexed by `channel * chips_per_channel + chip`.
    chips: Vec<ChipBlocks>,
    stats: DeviceStats,
}

impl FlashDevice {
    /// Builds an idle device from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`FlashConfig::validate`].
    pub fn new(config: FlashConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid flash config: {e}");
        }
        let channels = (0..config.channels)
            .map(|_| ChannelSim::new(config.chips_per_channel))
            .collect();
        let chips = (0..config.total_chips())
            .map(|_| ChipBlocks::new(config.blocks_per_chip, config.pages_per_block))
            .collect();
        FlashDevice {
            config,
            channels,
            chips,
            stats: DeviceStats::default(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.config
    }

    /// Cumulative device counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    fn chip_index(&self, channel: ChannelId, chip: u16) -> usize {
        debug_assert!(channel.0 < self.config.channels, "channel out of range");
        debug_assert!(chip < self.config.chips_per_channel, "chip out of range");
        usize::from(channel.0) * usize::from(self.config.chips_per_channel) + usize::from(chip)
    }

    /// Occupancy state of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel(&self, channel: ChannelId) -> &ChannelSim {
        &self.channels[usize::from(channel.0)]
    }

    /// Mutable occupancy state of one channel (for chip rotation).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_mut(&mut self, channel: ChannelId) -> &mut ChannelSim {
        &mut self.channels[usize::from(channel.0)]
    }

    /// Block state of one chip.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn chip(&self, channel: ChannelId, chip: u16) -> &ChipBlocks {
        &self.chips[self.chip_index(channel, chip)]
    }

    /// Mutable block state of one chip.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn chip_mut(&mut self, channel: ChannelId, chip: u16) -> &mut ChipBlocks {
        let i = self.chip_index(channel, chip);
        &mut self.chips[i]
    }

    /// Simulates a host read of `bytes` (≤ one page) from `chip` on
    /// `channel`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn read_page(
        &mut self,
        now: SimTime,
        channel: ChannelId,
        chip: u16,
        bytes: u64,
    ) -> OpTimes {
        let _prof = fleetio_obs::prof::span("flash.read_page");
        self.stats.host_read_bytes += bytes;
        self.stats.nand_ops += 1;
        let timing = self.config.timing.clone();
        self.channels[usize::from(channel.0)].read_page(now, chip, bytes, &timing)
    }

    /// Simulates a host program of `bytes` (≤ one page) to `chip` on
    /// `channel`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn write_page(
        &mut self,
        now: SimTime,
        channel: ChannelId,
        chip: u16,
        bytes: u64,
    ) -> OpTimes {
        let _prof = fleetio_obs::prof::span("flash.write_page");
        self.stats.host_write_bytes += bytes;
        self.stats.flash_write_bytes += bytes;
        self.stats.nand_ops += 1;
        let timing = self.config.timing.clone();
        self.channels[usize::from(channel.0)].write_page(now, chip, bytes, &timing)
    }

    /// A high-priority host read that may preempt suspendable background
    /// chip work (program/erase suspend).
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn read_page_preempting(
        &mut self,
        now: SimTime,
        channel: ChannelId,
        chip: u16,
        bytes: u64,
    ) -> OpTimes {
        let _prof = fleetio_obs::prof::span("flash.read_page_preempting");
        self.stats.host_read_bytes += bytes;
        self.stats.nand_ops += 1;
        let timing = self.config.timing.clone();
        self.channels[usize::from(channel.0)].read_page_preempting(now, chip, bytes, &timing)
    }

    /// Simulates reading `bytes` for a GC migration (internal traffic:
    /// no host bytes are counted).
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn gc_read_page(
        &mut self,
        now: SimTime,
        channel: ChannelId,
        chip: u16,
        bytes: u64,
    ) -> OpTimes {
        let _prof = fleetio_obs::prof::span("flash.gc_read_page");
        self.stats.nand_ops += 1;
        let timing = self.config.timing.clone();
        let times = self.channels[usize::from(channel.0)].read_page(now, chip, bytes, &timing);
        self.channels[usize::from(channel.0)].note_gc_bytes(bytes);
        times
    }

    /// Simulates programming `bytes` for a GC migration (internal traffic:
    /// counted as flash writes and GC bytes, not host bytes).
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn gc_write_page(
        &mut self,
        now: SimTime,
        channel: ChannelId,
        chip: u16,
        bytes: u64,
    ) -> OpTimes {
        let _prof = fleetio_obs::prof::span("flash.gc_write_page");
        self.stats.nand_ops += 1;
        let timing = self.config.timing.clone();
        let times = self.channels[usize::from(channel.0)].write_page(now, chip, bytes, &timing);
        self.stats.flash_write_bytes += bytes;
        self.stats.gc_migrated_bytes += bytes;
        self.channels[usize::from(channel.0)].note_gc_bytes(bytes);
        times
    }

    /// Simulates one GC migration step: read a live page and program it to
    /// a new location. Both operations stay on the device (no host bytes).
    ///
    /// `src` and `dst` may be on different channels; the page data crosses
    /// both buses, as on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if either address is out of range.
    pub fn migrate_page(
        &mut self,
        now: SimTime,
        src: (ChannelId, u16),
        dst: (ChannelId, u16),
        bytes: u64,
    ) -> OpTimes {
        let _prof = fleetio_obs::prof::span("flash.migrate_page");
        self.stats.nand_ops += 2;
        let timing = self.config.timing.clone();
        let read = self.channels[usize::from(src.0 .0)].read_page(now, src.1, bytes, &timing);
        let write =
            self.channels[usize::from(dst.0 .0)].write_page(read.end, dst.1, bytes, &timing);
        self.stats.flash_write_bytes += bytes;
        self.stats.gc_migrated_bytes += bytes;
        self.channels[usize::from(src.0 .0)].note_gc_bytes(bytes);
        OpTimes {
            start: read.start,
            end: write.end,
        }
    }

    /// Books one bus grant of a time-sliced transfer (stats attributed per
    /// the flags: host vs GC, read vs write).
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn bus_grant(
        &mut self,
        now: SimTime,
        channel: ChannelId,
        bytes: u64,
        read: bool,
        gc: bool,
    ) -> OpTimes {
        let _prof = fleetio_obs::prof::span("flash.bus_grant");
        match (read, gc) {
            (true, false) => self.stats.host_read_bytes += bytes,
            (false, false) => {
                self.stats.host_write_bytes += bytes;
                self.stats.flash_write_bytes += bytes;
            }
            (false, true) => {
                self.stats.flash_write_bytes += bytes;
                self.stats.gc_migrated_bytes += bytes;
            }
            (true, true) => {}
        }
        let timing = self.config.timing.clone();
        let times = self.channels[usize::from(channel.0)].bus_grant(now, bytes, &timing);
        if gc {
            self.channels[usize::from(channel.0)].note_gc_bytes(bytes);
        }
        times
    }

    /// Occupies a chip for its cell-read latency (time-sliced read).
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn chip_read_occupy(&mut self, now: SimTime, channel: ChannelId, chip: u16) -> OpTimes {
        let _prof = fleetio_obs::prof::span("flash.chip_read_occupy");
        self.stats.nand_ops += 1;
        let dur = self.config.timing.read_latency;
        self.channels[usize::from(channel.0)].chip_occupy(now, chip, dur, false)
    }

    /// Occupies a chip for its program latency (time-sliced write).
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn chip_program_occupy(&mut self, now: SimTime, channel: ChannelId, chip: u16) -> OpTimes {
        let _prof = fleetio_obs::prof::span("flash.chip_program_occupy");
        self.stats.nand_ops += 1;
        let dur = self.config.timing.program_latency;
        // Low-priority programs issued grant-by-grant are suspendable.
        self.channels[usize::from(channel.0)].chip_occupy(now, chip, dur, true)
    }

    /// Simulates a block erase.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn erase(&mut self, now: SimTime, channel: ChannelId, chip: u16) -> OpTimes {
        let _prof = fleetio_obs::prof::span("flash.erase");
        self.stats.erases += 1;
        self.stats.nand_ops += 1;
        let timing = self.config.timing.clone();
        self.channels[usize::from(channel.0)].erase_block(now, chip, &timing)
    }

    /// Notes the start of a GC run (for accounting).
    pub fn note_gc_run(&mut self) {
        self.stats.gc_runs += 1;
    }

    /// Allocates a free block on `(channel, chip)`, returning its address.
    ///
    /// Returns `None` when the chip has no free blocks.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn allocate_block(&mut self, channel: ChannelId, chip: u16) -> Option<BlockAddr> {
        let i = self.chip_index(channel, chip);
        // Keep one block per chip in reserve for GC migrations.
        self.chips[i]
            .allocate_with_reserve(1)
            .map(|block| BlockAddr {
                channel,
                chip,
                block,
            })
    }

    /// Allocates a block for GC use, dipping into the per-chip reserve.
    ///
    /// Returns `None` only when the chip is completely exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn allocate_block_gc(&mut self, channel: ChannelId, chip: u16) -> Option<BlockAddr> {
        let i = self.chip_index(channel, chip);
        self.chips[i].allocate().map(|block| BlockAddr {
            channel,
            chip,
            block,
        })
    }

    /// Erases `block` (bookkeeping only — call [`FlashDevice::erase`] for
    /// the timing side) and returns it to its chip's free list.
    ///
    /// # Panics
    ///
    /// Panics if live pages remain or the address is out of range.
    pub fn release_block(&mut self, block: BlockAddr) {
        let i = self.chip_index(block.channel, block.chip);
        self.chips[i].release(block.block);
    }

    /// Appends `lpa` to `block`'s next free page, returning the page index.
    ///
    /// # Panics
    ///
    /// Panics if the block is not open or the address is out of range.
    pub fn append_page(&mut self, block: BlockAddr, lpa: Lpa) -> u32 {
        let i = self.chip_index(block.channel, block.chip);
        self.chips[i].block_mut(block.block).append(lpa)
    }

    /// Invalidates one page (its LPA was overwritten or trimmed).
    ///
    /// # Panics
    ///
    /// Panics if the page was never written or the address is out of range.
    pub fn invalidate_page(&mut self, block: BlockAddr, page: u32) {
        let i = self.chip_index(block.channel, block.chip);
        self.chips[i].block_mut(block.block).invalidate(page);
    }

    /// Free-block fraction of the least-free chip among `channels`.
    ///
    /// GC urgency is driven by the tightest chip, since writes stripe over
    /// all of a vSSD's chips.
    pub fn min_free_fraction(&self, channels: &[ChannelId]) -> f64 {
        let mut min = 1.0f64;
        for &ch in channels {
            for chip in 0..self.config.chips_per_channel {
                min = min.min(self.chip(ch, chip).free_fraction());
            }
        }
        min
    }

    /// Total free blocks across `channels`.
    pub fn free_blocks(&self, channels: &[ChannelId]) -> usize {
        channels
            .iter()
            .flat_map(|&ch| (0..self.config.chips_per_channel).map(move |chip| (ch, chip)))
            .map(|(ch, chip)| self.chip(ch, chip).free_count())
            .sum()
    }

    /// Audits every chip's block accounting (free list vs phases, valid
    /// counts vs bitmaps). Called from the `audit` feature's periodic
    /// structural sweep; all checks are `debug_assert!`s.
    #[cfg(feature = "audit")]
    pub fn audit_invariants(&self) {
        for chip in &self.chips {
            chip.audit_invariants();
        }
    }

    /// Point-in-time occupancy snapshot of every channel, in channel
    /// order. Read-only: built for observability gauges at window
    /// boundaries, never consulted by the simulation itself.
    pub fn channel_obs(&self, now: SimTime) -> Vec<ChannelObs> {
        self.channels
            .iter()
            .map(|ch| ChannelObs {
                busy_chips: ch.busy_chips(now),
                bus_backlog: ch.bus_backlog(now),
                bus_busy: ch.bus_busy(),
                bytes_moved: ch.bytes_moved(),
                gc_bytes: ch.gc_bytes(),
                chip_backlog: (0..ch.chips())
                    .map(|c| ch.chip_free_at(c).saturating_since(now))
                    .collect(),
            })
            .collect()
    }

    /// Total bytes moved over all channel buses so far.
    pub fn total_bytes_moved(&self) -> u64 {
        self.channels.iter().map(|c| c.bytes_moved()).sum()
    }

    /// Sum of bus-busy time across all channels.
    pub fn total_bus_busy(&self) -> SimDuration {
        self.channels
            .iter()
            .fold(SimDuration::ZERO, |acc, c| acc + c.bus_busy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> FlashDevice {
        FlashDevice::new(FlashConfig::small_test())
    }

    #[test]
    fn construction_matches_geometry() {
        let d = dev();
        assert_eq!(d.config().channels, 4);
        assert_eq!(d.chip(ChannelId(0), 0).free_count(), 16);
    }

    #[test]
    fn read_write_update_stats() {
        let mut d = dev();
        d.read_page(SimTime::ZERO, ChannelId(0), 0, 4096);
        d.write_page(SimTime::ZERO, ChannelId(1), 1, 8192);
        let s = d.stats();
        assert_eq!(s.host_read_bytes, 4096);
        assert_eq!(s.host_write_bytes, 8192);
        assert_eq!(s.flash_write_bytes, 8192);
        assert_eq!(d.total_bytes_moved(), 4096 + 8192);
    }

    #[test]
    fn migrate_counts_as_gc_not_host() {
        let mut d = dev();
        let op = d.migrate_page(SimTime::ZERO, (ChannelId(0), 0), (ChannelId(1), 0), 16384);
        let s = d.stats();
        assert_eq!(s.host_write_bytes, 0);
        assert_eq!(s.gc_migrated_bytes, 16384);
        assert_eq!(s.flash_write_bytes, 16384);
        assert!(op.end > op.start);
        assert_eq!(d.channel(ChannelId(0)).gc_bytes(), 16384);
    }

    #[test]
    fn block_alloc_append_invalidate_release_roundtrip() {
        let mut d = dev();
        let blk = d.allocate_block(ChannelId(2), 1).unwrap();
        assert_eq!(blk.channel, ChannelId(2));
        let page = d.append_page(blk, Lpa(77));
        assert_eq!(page, 0);
        d.invalidate_page(blk, page);
        d.release_block(blk);
        assert_eq!(d.chip(ChannelId(2), 1).free_count(), 16);
    }

    #[test]
    fn free_fraction_tracks_allocation() {
        let mut d = dev();
        let chans = [ChannelId(0)];
        assert!((d.min_free_fraction(&chans) - 1.0).abs() < 1e-12);
        for _ in 0..8 {
            d.allocate_block(ChannelId(0), 0).unwrap();
        }
        assert!((d.min_free_fraction(&chans) - 0.5).abs() < 1e-12);
        assert_eq!(d.free_blocks(&chans), 8 + 16);
    }

    #[test]
    fn erase_increments_counter() {
        let mut d = dev();
        d.erase(SimTime::ZERO, ChannelId(0), 0);
        assert_eq!(d.stats().erases, 1);
    }

    #[test]
    #[should_panic(expected = "invalid flash config")]
    fn invalid_config_panics() {
        let mut c = FlashConfig::small_test();
        c.pages_per_block = 0;
        let _ = FlashDevice::new(c);
    }
}
