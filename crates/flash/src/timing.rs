//! NAND and channel-bus timing model.

use fleetio_des::SimDuration;

/// Service-time parameters of the simulated NAND and channel bus.
///
/// The defaults are typical MLC/TLC NAND figures and give each channel a
/// ~64 MB/s bus — the per-channel bandwidth the paper uses when translating
/// harvest bandwidth into ghost-superblock channel counts (§3.6).
#[derive(Debug, Clone, PartialEq)]
pub struct FlashTiming {
    /// Cell array read latency (tR) per page.
    pub read_latency: SimDuration,
    /// Page program latency (tPROG).
    pub program_latency: SimDuration,
    /// Block erase latency (tBERS).
    pub erase_latency: SimDuration,
    /// Channel bus transfer time per byte, in nanoseconds (fixed point:
    /// nanoseconds × 1024 per byte to keep sub-ns precision).
    bus_ns_per_kib: u64,
}

impl FlashTiming {
    /// Builds a timing model from explicit parameters.
    ///
    /// `bus_bytes_per_sec` is the one-direction channel bus bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bus_bytes_per_sec` is not strictly positive.
    pub fn new(
        read_latency: SimDuration,
        program_latency: SimDuration,
        erase_latency: SimDuration,
        bus_bytes_per_sec: f64,
    ) -> Self {
        assert!(bus_bytes_per_sec > 0.0, "bus bandwidth must be positive");
        let bus_ns_per_kib =
            SimDuration::from_secs_f64_rounded(1024.0 / bus_bytes_per_sec).as_nanos();
        FlashTiming {
            read_latency,
            program_latency,
            erase_latency,
            bus_ns_per_kib,
        }
    }

    /// Bus transfer duration for `bytes` of data.
    pub fn transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes * self.bus_ns_per_kib / 1024)
    }

    /// The bus bandwidth implied by the transfer cost, bytes/second.
    pub fn bus_bytes_per_sec(&self) -> f64 {
        1024.0 / SimDuration::from_nanos(self.bus_ns_per_kib).as_secs_f64()
    }
}

impl Default for FlashTiming {
    /// tR = 50 µs, tPROG = 400 µs, tBERS = 3 ms, bus = 64 MB/s.
    fn default() -> Self {
        FlashTiming::new(
            SimDuration::from_micros(50),
            SimDuration::from_micros(400),
            SimDuration::from_millis(3),
            64.0 * 1024.0 * 1024.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bus_is_64_mb_per_sec() {
        let t = FlashTiming::default();
        let got = t.bus_bytes_per_sec();
        let want = 64.0 * 1024.0 * 1024.0;
        assert!((got - want).abs() / want < 1e-3, "got {got}");
    }

    #[test]
    fn transfer_scales_linearly() {
        let t = FlashTiming::default();
        let one = t.transfer(16 * 1024).as_nanos();
        let four = t.transfer(64 * 1024).as_nanos();
        assert_eq!(four, one * 4);
        // 16 KiB over 64 MiB/s = 244.14 µs.
        assert!((one as f64 / 1000.0 - 244.1).abs() < 1.0, "one={one}");
    }

    #[test]
    fn zero_bytes_transfer_is_free() {
        assert_eq!(FlashTiming::default().transfer(0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bus bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = FlashTiming::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(1),
            SimDuration::from_micros(1),
            0.0,
        );
    }
}
