//! Device geometry and configuration.

use crate::timing::FlashTiming;

/// Full configuration of a simulated flash device.
///
/// The defaults mirror Table 3 of the paper: 1 TB capacity, 16 channels,
/// 4 chips per channel, 16 KB pages, a maximum queue depth of 16 and a 20 %
/// over-provisioning ratio, with 4 MB flash blocks (§3.7).
#[derive(Debug, Clone, PartialEq)]
pub struct FlashConfig {
    /// Number of independent flash channels.
    pub channels: u16,
    /// NAND chips (dies) behind each channel.
    pub chips_per_channel: u16,
    /// Flash blocks per chip.
    pub blocks_per_chip: u32,
    /// Pages per flash block.
    pub pages_per_block: u32,
    /// Page size in bytes.
    pub page_bytes: u32,
    /// Maximum outstanding segments per channel (NVMe-style queue depth).
    pub queue_depth: u32,
    /// Fraction of raw capacity reserved as over-provisioning (not exposed
    /// through logical capacity).
    pub overprovisioning: f64,
    /// NAND and bus timing parameters.
    pub timing: FlashTiming,
}

impl FlashConfig {
    /// The paper's full-scale device (Table 3): 16 channels × 4 chips,
    /// 4 MB blocks (256 × 16 KB pages), 1 TB raw capacity.
    pub fn paper_default() -> Self {
        FlashConfig {
            channels: 16,
            chips_per_channel: 4,
            // 1 TB / (16 ch × 4 chips) = 16 GiB per chip; 4 MiB blocks.
            blocks_per_chip: 4096,
            pages_per_block: 256,
            page_bytes: 16 * 1024,
            queue_depth: 16,
            overprovisioning: 0.20,
            timing: FlashTiming::default(),
        }
    }

    /// A smaller device with identical per-channel performance, used for
    /// experiments: same 16 × 4 geometry and timing, 64 GiB raw capacity.
    ///
    /// Capacity only affects how long it takes GC pressure to build, not the
    /// bandwidth/latency behaviour the paper's figures measure; experiments
    /// warm the device to the same free-block ratios as the paper.
    pub fn experiment_default() -> Self {
        FlashConfig {
            blocks_per_chip: 256,
            ..Self::paper_default()
        }
    }

    /// A small-but-roomy device for RL/driver tests: the `small_test`
    /// geometry with 96 blocks per chip, enough to absorb a closed-loop
    /// tenant's in-flight writes (concurrency × request size) plus its
    /// working set.
    pub fn training_test() -> Self {
        FlashConfig {
            blocks_per_chip: 96,
            ..Self::small_test()
        }
    }

    /// A tiny device for unit tests: 4 channels × 2 chips, 16 blocks of
    /// 32 pages per chip.
    pub fn small_test() -> Self {
        FlashConfig {
            channels: 4,
            chips_per_channel: 2,
            blocks_per_chip: 16,
            pages_per_block: 32,
            page_bytes: 16 * 1024,
            queue_depth: 16,
            overprovisioning: 0.20,
            timing: FlashTiming::default(),
        }
    }

    /// Total number of chips on the device.
    pub fn total_chips(&self) -> u32 {
        u32::from(self.channels) * u32::from(self.chips_per_channel)
    }

    /// Total number of flash blocks on the device.
    pub fn total_blocks(&self) -> u64 {
        u64::from(self.total_chips()) * u64::from(self.blocks_per_chip)
    }

    /// Bytes per flash block.
    pub fn block_bytes(&self) -> u64 {
        u64::from(self.pages_per_block) * u64::from(self.page_bytes)
    }

    /// Raw device capacity in bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.total_blocks() * self.block_bytes()
    }

    /// Logical capacity exposed after over-provisioning.
    pub fn logical_bytes(&self) -> u64 {
        (self.raw_bytes() as f64 * (1.0 - self.overprovisioning)) as u64
    }

    /// Blocks per chip after subtracting the over-provisioned share
    /// (rounded down, minimum 1).
    pub fn logical_blocks_per_chip(&self) -> u32 {
        (((self.blocks_per_chip as f64) * (1.0 - self.overprovisioning)) as u32).max(1)
    }

    /// Peak one-direction bandwidth of a single channel bus, bytes/second.
    pub fn channel_peak_bytes_per_sec(&self) -> f64 {
        self.timing.bus_bytes_per_sec()
    }

    /// Peak aggregate bandwidth across all channels, bytes/second.
    pub fn device_peak_bytes_per_sec(&self) -> f64 {
        self.channel_peak_bytes_per_sec() * f64::from(self.channels)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field when any dimension is
    /// zero or the over-provisioning ratio is outside `[0, 0.9]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("channels must be positive".into());
        }
        if self.chips_per_channel == 0 {
            return Err("chips_per_channel must be positive".into());
        }
        if self.blocks_per_chip == 0 {
            return Err("blocks_per_chip must be positive".into());
        }
        if self.pages_per_block == 0 {
            return Err("pages_per_block must be positive".into());
        }
        if self.page_bytes == 0 {
            return Err("page_bytes must be positive".into());
        }
        if self.queue_depth == 0 {
            return Err("queue_depth must be positive".into());
        }
        if !(0.0..=0.9).contains(&self.overprovisioning) {
            return Err("overprovisioning must be in [0, 0.9]".into());
        }
        Ok(())
    }
}

impl Default for FlashConfig {
    fn default() -> Self {
        Self::experiment_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_3() {
        let c = FlashConfig::paper_default();
        assert_eq!(c.channels, 16);
        assert_eq!(c.chips_per_channel, 4);
        assert_eq!(c.page_bytes, 16 * 1024);
        assert_eq!(c.queue_depth, 16);
        assert!((c.overprovisioning - 0.20).abs() < 1e-12);
        // 1 TiB raw capacity, 4 MiB blocks.
        assert_eq!(c.raw_bytes(), 1 << 40);
        assert_eq!(c.block_bytes(), 4 << 20);
    }

    #[test]
    fn capacity_math_is_consistent() {
        let c = FlashConfig::small_test();
        assert_eq!(c.total_chips(), 8);
        assert_eq!(c.total_blocks(), 128);
        assert_eq!(c.raw_bytes(), 128 * 32 * 16 * 1024);
        assert!(c.logical_bytes() < c.raw_bytes());
    }

    #[test]
    fn validate_catches_zeroes() {
        let mut c = FlashConfig::small_test();
        assert!(c.validate().is_ok());
        c.channels = 0;
        assert!(c.validate().unwrap_err().contains("channels"));
        c = FlashConfig::small_test();
        c.overprovisioning = 0.95;
        assert!(c.validate().is_err());
    }

    #[test]
    fn peak_bandwidth_scales_with_channels() {
        let c = FlashConfig::paper_default();
        let one = c.channel_peak_bytes_per_sec();
        assert!((c.device_peak_bytes_per_sec() - one * 16.0).abs() < 1e-6);
    }
}
