//! Stride scheduling for proportional sharing among vSSDs.
//!
//! Software isolation uses stride scheduling (Waldspurger & Weihl) so that
//! high-intensity workloads cannot starve low-intensity ones: each client
//! holds tickets; picking a client advances its *pass* by `stride ∝
//! 1/tickets`, and the client with the minimum pass is always served next.

use std::collections::BTreeMap;

/// Global stride numerator: pass advances by `STRIDE1 / tickets`.
const STRIDE1: u64 = 1 << 20;

/// A stride scheduler over clients identified by `K`.
///
/// # Example
///
/// ```
/// use fleetio_vssd::stride::StrideScheduler;
///
/// let mut s = StrideScheduler::new();
/// s.add_client("a", 100);
/// s.add_client("b", 100);
/// // Equal tickets → strict alternation when both are runnable.
/// let first = s.pick(["a", "b"]).unwrap();
/// let second = s.pick(["a", "b"]).unwrap();
/// assert_ne!(first, second);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StrideScheduler<K: Ord + Clone> {
    clients: BTreeMap<K, StrideState>,
}

#[derive(Debug, Clone)]
struct StrideState {
    stride: u64,
    pass: u64,
}

impl<K: Ord + Clone> StrideScheduler<K> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        StrideScheduler {
            clients: BTreeMap::new(),
        }
    }

    /// Registers a client with `tickets` shares. Re-registering resets its
    /// pass to the current minimum so it cannot monopolize after absence.
    ///
    /// # Panics
    ///
    /// Panics if `tickets` is zero.
    pub fn add_client(&mut self, key: K, tickets: u32) {
        assert!(tickets > 0, "tickets must be positive");
        let min_pass = self.clients.values().map(|c| c.pass).min().unwrap_or(0);
        self.clients.insert(
            key,
            StrideState {
                stride: STRIDE1 / u64::from(tickets),
                pass: min_pass,
            },
        );
    }

    /// Changes a registered client's ticket count while *preserving* its
    /// pass (its accumulated fairness credit). Unknown keys are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `tickets` is zero.
    pub fn set_tickets(&mut self, key: &K, tickets: u32) {
        assert!(tickets > 0, "tickets must be positive");
        if let Some(st) = self.clients.get_mut(key) {
            st.stride = STRIDE1 / u64::from(tickets);
        }
    }

    /// Whether `key` is registered.
    pub fn contains(&self, key: &K) -> bool {
        self.clients.contains_key(key)
    }

    /// Removes a client.
    pub fn remove_client(&mut self, key: &K) {
        self.clients.remove(key);
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether no clients are registered.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Picks the runnable client with the minimum pass and charges it one
    /// quantum. Unregistered keys in `runnable` are ignored. Returns `None`
    /// when no runnable client is registered.
    ///
    /// Ties break on insertion-independent key order is not guaranteed by
    /// `BTreeMap`; callers that need determinism should pass `runnable` in a
    /// stable order — the first minimal client in iteration order of
    /// `runnable` wins.
    pub fn pick<I>(&mut self, runnable: I) -> Option<K>
    where
        I: IntoIterator<Item = K>,
    {
        let mut best: Option<(K, u64)> = None;
        for key in runnable {
            if let Some(st) = self.clients.get(&key) {
                match &best {
                    Some((_, pass)) if *pass <= st.pass => {}
                    _ => best = Some((key, st.pass)),
                }
            }
        }
        let (key, _) = best?;
        let st = self.clients.get_mut(&key).expect("picked client exists");
        st.pass = st.pass.saturating_add(st.stride);
        Some(key)
    }
}

/// A stride scheduler specialized for small dense `usize` keys — the
/// engine's per-channel vSSD indices. Client state lives in a flat vector
/// indexed by key, so the per-dispatch [`DenseStride::pick`] costs two
/// array loads per runnable candidate instead of tree walks. Semantics
/// are identical to [`StrideScheduler<usize>`]: same pass/stride
/// arithmetic, same first-minimal-in-iteration-order tie-break.
#[derive(Debug, Clone, Default)]
pub struct DenseStride {
    clients: Vec<Option<StrideState>>,
}

impl DenseStride {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        DenseStride {
            clients: Vec::new(),
        }
    }

    /// Registers a client with `tickets` shares. Re-registering resets its
    /// pass to the current minimum so it cannot monopolize after absence.
    ///
    /// # Panics
    ///
    /// Panics if `tickets` is zero.
    pub fn add_client(&mut self, key: usize, tickets: u32) {
        assert!(tickets > 0, "tickets must be positive");
        let min_pass = self
            .clients
            .iter()
            .flatten()
            .map(|c| c.pass)
            .min()
            .unwrap_or(0);
        if key >= self.clients.len() {
            self.clients.resize(key + 1, None);
        }
        self.clients[key] = Some(StrideState {
            stride: STRIDE1 / u64::from(tickets),
            pass: min_pass,
        });
    }

    /// Changes a registered client's ticket count while *preserving* its
    /// pass. Unknown keys are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `tickets` is zero.
    pub fn set_tickets(&mut self, key: usize, tickets: u32) {
        assert!(tickets > 0, "tickets must be positive");
        if let Some(Some(st)) = self.clients.get_mut(key) {
            st.stride = STRIDE1 / u64::from(tickets);
        }
    }

    /// Whether `key` is registered.
    pub fn contains(&self, key: usize) -> bool {
        self.clients.get(key).is_some_and(|c| c.is_some())
    }

    /// Picks the runnable client with the minimum pass and charges it one
    /// quantum; the first minimal client in `runnable` iteration order
    /// wins. Unregistered keys are ignored.
    pub fn pick<I>(&mut self, runnable: I) -> Option<usize>
    where
        I: IntoIterator<Item = usize>,
    {
        let mut best: Option<(usize, u64)> = None;
        for key in runnable {
            if let Some(Some(st)) = self.clients.get(key) {
                match &best {
                    Some((_, pass)) if *pass <= st.pass => {}
                    _ => best = Some((key, st.pass)),
                }
            }
        }
        let (key, _) = best?;
        let st = self.clients[key].as_mut().expect("picked client exists");
        st.pass = st.pass.saturating_add(st.stride);
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_tickets_alternate() {
        let mut s = StrideScheduler::new();
        s.add_client(1, 100);
        s.add_client(2, 100);
        let mut counts = [0u32; 3];
        for _ in 0..100 {
            let k = s.pick([1, 2]).unwrap();
            counts[k as usize] += 1;
        }
        assert_eq!(counts[1], 50);
        assert_eq!(counts[2], 50);
    }

    #[test]
    fn proportional_shares() {
        let mut s = StrideScheduler::new();
        s.add_client("heavy", 300);
        s.add_client("light", 100);
        let mut heavy = 0;
        for _ in 0..400 {
            if s.pick(["heavy", "light"]).unwrap() == "heavy" {
                heavy += 1;
            }
        }
        // 3:1 split within rounding.
        assert!((295..=305).contains(&heavy), "heavy won {heavy}/400");
    }

    #[test]
    fn only_runnable_clients_are_picked() {
        let mut s = StrideScheduler::new();
        s.add_client(1, 100);
        s.add_client(2, 100);
        for _ in 0..10 {
            assert_eq!(s.pick([2]), Some(2));
        }
        // Client 1 did not fall behind forever: it wins immediately once
        // runnable because its pass never advanced.
        assert_eq!(s.pick([1, 2]), Some(1));
    }

    #[test]
    fn rejoining_client_does_not_monopolize() {
        let mut s = StrideScheduler::new();
        s.add_client(1, 100);
        for _ in 0..50 {
            s.pick([1]);
        }
        s.add_client(2, 100);
        // Client 2 starts at client 1's pass, not zero: near-alternation.
        let mut twos = 0;
        for _ in 0..10 {
            if s.pick([1, 2]).unwrap() == 2 {
                twos += 1;
            }
        }
        assert!((4..=6).contains(&twos), "client 2 won {twos}/10");
    }

    #[test]
    fn set_tickets_preserves_pass() {
        let mut s = StrideScheduler::new();
        s.add_client(1, 100);
        s.add_client(2, 100);
        // Client 2 idles while client 1 runs: client 1's pass grows.
        for _ in 0..20 {
            s.pick([1]);
        }
        // Re-weighting client 1 must NOT forgive its accumulated usage:
        // client 2 must win the next picks.
        s.set_tickets(&1, 300);
        for _ in 0..5 {
            assert_eq!(s.pick([1, 2]), Some(2));
        }
    }

    /// Differential: `DenseStride` reproduces the generic scheduler's
    /// pick stream over a mixed add/re-weight/pick sequence.
    #[test]
    fn dense_matches_generic_scheduler() {
        let mut dense = DenseStride::new();
        let mut tree: StrideScheduler<usize> = StrideScheduler::new();
        let keys = [0usize, 1, 2, 3];
        let tickets = [100u32, 300, 50, 100];
        for (k, t) in keys.iter().zip(tickets) {
            dense.add_client(*k, t);
            tree.add_client(*k, t);
        }
        // Deterministic pseudo-random runnable subsets.
        let mut x = 0x1234_5678u64;
        for step in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mask = (x >> 32) as usize & 0xf;
            let runnable: Vec<usize> = keys
                .iter()
                .copied()
                .filter(|k| mask & (1 << k) != 0)
                .collect();
            assert_eq!(
                dense.pick(runnable.iter().copied()),
                tree.pick(runnable.iter().copied()),
                "diverged at step {step}"
            );
            if step == 700 {
                dense.set_tickets(1, 10);
                tree.set_tickets(&1, 10);
            }
            if step == 1_200 {
                dense.add_client(2, 400); // re-register resets pass
                tree.add_client(2, 400);
            }
        }
    }

    #[test]
    fn empty_and_unknown_runnable() {
        let mut s: StrideScheduler<u32> = StrideScheduler::new();
        assert_eq!(s.pick([]), None);
        assert_eq!(s.pick([9]), None);
        assert!(s.is_empty());
        s.add_client(1, 1);
        assert_eq!(s.len(), 1);
        s.remove_client(&1);
        assert!(s.is_empty());
    }
}
